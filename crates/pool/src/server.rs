//! The nonblocking, event-driven HTTP front end.
//!
//! One thread, one [`Epoll`] instance, no per-connection threads: the
//! readiness loop multiplexes every connection through nonblocking
//! accept/read/write state machines and hands parsed `/infer` bodies
//! to the [`ReplicaPool`] router. In-flight replies come back through
//! [`snn_serve::Ticket::try_wait`] polling — while any request is in
//! flight the loop ticks at 1ms; fully idle it sleeps in `epoll_wait`
//! until the kernel has something to say.
//!
//! Protocol behavior is *defined* to match the thread-per-connection
//! [`snn_serve::Server`]: the head parser, body framing limits, route
//! table, response builders, and status mapping are all the same
//! functions (`snn_serve::{parse_head, infer_success_body,
//! format_response, …}`), so a response that differs byte-for-byte
//! between the two front ends is a bug by construction, and the
//! identity is pinned by an integration test.
//!
//! Connection lifecycle:
//!
//! ```text
//!          accept (nonblocking, level-triggered)
//!            │
//!            ▼
//!   ┌─> [Head] ──head complete──> [Body] ──body complete──┐
//!   │     │  > MAX_HEAD → 400, close                      │
//!   │     │  bad head   → 400, close                      ▼
//!   │     │  > MAX_BODY → 413, close (body never read) dispatch
//!   │     │                                               │
//!   │     │                            GET/POST non-infer │ /infer
//!   │     │                               (immediate)     │ (queued)
//!   │     ▼                                   │           ▼
//!   │   idle > IDLE_TIMEOUT → close           │      [InFlight]
//!   │                                         │   ticket.try_wait()
//!   │                                         │   each tick; engine
//!   │                                         │   timeout → 503
//!   │                                         ▼           │
//!   └───────────keep-alive────────────── [respond] <──────┘
//!                                 (write, EPOLLOUT if blocked)
//! ```
//!
//! A slow or hostile peer (byte-at-a-time headers, mid-body
//! disconnect, thousands of idle keep-alives) costs one map entry and
//! one fd — never a thread, and never a wedged loop: all socket I/O
//! is nonblocking and bounded by `MAX_HEAD`/`MAX_BODY`.

use std::collections::{HashMap, HashSet};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use serde::{Serialize, Value};
use snn_obs::{tracectx, Gauge, SloConfig, StageTiming, TraceContext, TraceRecord, TraceRing};
use snn_serve::{
    apply_reload, content_type_error, error_body, find_head_end, format_response, healthz_body,
    infer_success_body, parse_head, parse_infer_body, rejection_status, trace_get_response,
    traces_list_response, BatcherConfig, Metrics, ModelRegistry, Rejection, RequestHead,
    ServeError, Ticket, ENGINE_GRACE, IDLE_TIMEOUT, MAX_BODY, MAX_HEAD,
};

use crate::epoll::{Epoll, Event, Interest};
use crate::pool::{PoolConfig, ReplicaPool};

const LISTENER_TOKEN: u64 = 0;
/// Tick granularity while requests are in flight (ticket polling).
const BUSY_TICK: Duration = Duration::from_millis(1);
/// Tick granularity while fully idle (shutdown flag + idle sweeps).
const IDLE_TICK: Duration = Duration::from_millis(250);
/// How long a drain lets an apparently-idle connection live before
/// dropping it — covers a request whose bytes were written by the peer
/// but not yet surfaced by the kernel when the drain began.
const DRAIN_IDLE_GRACE: Duration = Duration::from_millis(100);

/// Pool server tuning knobs; mirrors [`snn_serve::ServerConfig`] plus
/// the replica count.
#[derive(Debug, Clone)]
pub struct PoolServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Number of engine replicas behind the router (≥ 1).
    pub replicas: usize,
    /// Per-replica batching queue configuration.
    pub batcher: BatcherConfig,
    /// Deadline applied to `/infer` requests without `timeout_ms`.
    pub default_timeout: Option<Duration>,
    /// Completed-request trace ring behind `/debug/traces`.
    pub trace_ring: Option<Arc<TraceRing>>,
    /// SLO objectives for burn-rate tracking (shared front tracker
    /// plus one tracker per replica).
    pub slo: Option<SloConfig>,
    /// Breaker trips before the supervisor quarantines a replica.
    pub quarantine_trips: u32,
    /// How long a graceful drain waits for in-flight requests before
    /// the loop exits anyway.
    pub drain_timeout: Duration,
    /// Install the process `SIGTERM` handler so `kill -TERM` triggers
    /// a graceful drain instead of immediate termination. Off by
    /// default (tests drive drain via [`PoolServer::begin_drain`];
    /// only one component per process should own signal disposition).
    pub handle_sigterm: bool,
}

impl Default for PoolServerConfig {
    fn default() -> Self {
        PoolServerConfig {
            addr: "127.0.0.1:0".into(),
            replicas: 2,
            batcher: BatcherConfig::default(),
            default_timeout: Some(Duration::from_millis(2000)),
            trace_ring: TraceRing::from_env(),
            slo: SloConfig::from_env(),
            quarantine_trips: 3,
            drain_timeout: Duration::from_secs(5),
            handle_sigterm: false,
        }
    }
}

/// The running pool server: N engine replicas behind the epoll front
/// end.
pub struct PoolServer {
    addr: SocketAddr,
    pool: Arc<ReplicaPool>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    drain: Arc<AtomicBool>,
    open_connections: Arc<Gauge>,
    event_loop: Option<thread::JoinHandle<()>>,
}

impl PoolServer {
    /// Binds the listener, starts `cfg.replicas` batch workers and the
    /// readiness loop, and returns immediately.
    ///
    /// # Errors
    ///
    /// [`ServeError`] if the address cannot be bound or an engine
    /// cannot be built.
    pub fn start(registry: Arc<ModelRegistry>, cfg: PoolServerConfig) -> Result<Self, ServeError> {
        let metrics = Arc::new(Metrics::with_slo(cfg.slo));
        let pool_cfg = PoolConfig {
            replicas: cfg.replicas,
            batcher: cfg.batcher,
            slo: cfg.slo,
            quarantine_trips: cfg.quarantine_trips,
        };
        let pool = Arc::new(
            ReplicaPool::start(Arc::clone(&registry), pool_cfg, Arc::clone(&metrics))
                .map_err(ServeError::Snapshot)?,
        );
        let listener = TcpListener::bind(&cfg.addr).map_err(ServeError::Io)?;
        listener.set_nonblocking(true).map_err(ServeError::Io)?;
        let addr = listener.local_addr().map_err(ServeError::Io)?;
        let epoll = Epoll::new().map_err(ServeError::Io)?;
        epoll.add(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ).map_err(ServeError::Io)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let drain = Arc::new(AtomicBool::new(false));
        if cfg.handle_sigterm {
            crate::epoll::install_term_handler();
        }
        let open_connections = pool.labeled_registry().gauge(
            "snn_pool_open_connections",
            "Connections currently registered with the readiness loop",
        );
        snn_obs::log_info!(
            "pool server listening",
            addr = addr.to_string(),
            replicas = pool.len() as u64,
            tracing = cfg.trace_ring.is_some(),
        );
        let event_loop = {
            let ev = EventLoop {
                epoll,
                listener: Some(listener),
                pool: Arc::clone(&pool),
                metrics: Arc::clone(&metrics),
                default_timeout: cfg.default_timeout,
                trace_ring: cfg.trace_ring,
                shutdown: Arc::clone(&shutdown),
                drain: Arc::clone(&drain),
                drain_timeout: cfg.drain_timeout,
                handle_sigterm: cfg.handle_sigterm,
                open_connections: Arc::clone(&open_connections),
                conns: HashMap::new(),
                inflight: HashSet::new(),
                next_token: 1,
            };
            thread::Builder::new()
                .name("snn-pool-loop".into())
                .spawn(move || ev.run())
                .expect("spawning pool event loop")
        };
        Ok(PoolServer {
            addr,
            pool,
            metrics,
            shutdown,
            drain,
            open_connections,
            event_loop: Some(event_loop),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's shared metrics handle.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// The replica pool (for tests and capacity reporting).
    pub fn pool(&self) -> &Arc<ReplicaPool> {
        &self.pool
    }

    /// Connections currently registered with the readiness loop — the
    /// torture tests assert this returns to zero after mass
    /// disconnects (no leaked registrations).
    pub fn open_connections(&self) -> usize {
        self.open_connections.get() as usize
    }

    /// Blocks until the event loop exits.
    pub fn join(&mut self) {
        if let Some(h) = self.event_loop.take() {
            let _ = h.join();
        }
    }

    /// Starts a graceful drain: the listener closes (no new
    /// connections), idle keep-alive connections drop, in-flight and
    /// partially-received requests complete (their responses close the
    /// connection), and the event loop exits once every connection is
    /// gone or [`PoolServerConfig::drain_timeout`] lapses. `SIGTERM`
    /// triggers the same path when
    /// [`PoolServerConfig::handle_sigterm`] is set.
    pub fn begin_drain(&self) {
        self.drain.store(true, Ordering::Release);
    }

    /// Whether a drain has been requested (by [`Self::begin_drain`] or
    /// `SIGTERM`).
    pub fn draining(&self) -> bool {
        self.drain.load(Ordering::Acquire)
    }

    /// Stops the readiness loop, drops every connection, and drains
    /// the replica queues with [`Rejection::ShuttingDown`]. Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        self.pool.request_shutdown();
        // Unblock a fully idle epoll_wait with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.join();
    }
}

impl Drop for PoolServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-connection read/parse/write state.
struct Conn {
    stream: TcpStream,
    token: u64,
    /// Accumulated unread input (may hold pipelined requests).
    buf: Vec<u8>,
    /// Pending response bytes not yet accepted by the socket.
    out: Vec<u8>,
    out_pos: usize,
    state: ConnState,
    /// First byte of the *current* request — start of `parse` timing.
    /// `None` while idle between requests.
    received: Option<Instant>,
    /// When this connection last went idle (created or finished a
    /// request); drives the keep-alive timeout.
    idle_since: Instant,
    /// Close once `out` fully flushes.
    close_after: bool,
    /// Whether the epoll registration currently includes EPOLLOUT.
    want_write: bool,
    /// Marked for teardown at the end of the pass.
    dead: bool,
}

enum ConnState {
    /// Accumulating the request head.
    Head,
    /// Head parsed; accumulating `content_length` body bytes.
    Body { head: RequestHead, body_start: usize },
    /// An `/infer` request submitted to a replica; polling its ticket.
    InFlight(Box<InFlightReq>),
}

/// Everything needed to finish an `/infer` once its ticket resolves.
struct InFlightReq {
    ticket: Ticket,
    replica: usize,
    ctx: TraceContext,
    received: Instant,
    submitted: Instant,
    /// Absolute instant to abandon the engine (`budget + grace`);
    /// `None` waits indefinitely (no deadline configured).
    give_up: Option<Instant>,
    /// The budget+grace span, for the timeout error message.
    give_up_after: Duration,
    close: bool,
}

/// Outcome details captured for the trace record of a finished
/// request (mirror of the classic front end's `TraceCapture`).
#[derive(Default)]
struct Finish {
    outcome: &'static str,
    engine: String,
    batch_size: u64,
    model_version: u64,
    queue_us: u64,
    batch_form_us: u64,
    submitted: Option<Instant>,
    replied: Option<Instant>,
}

struct EventLoop {
    epoll: Epoll,
    /// `None` once a drain closed it (new connects are refused).
    listener: Option<TcpListener>,
    pool: Arc<ReplicaPool>,
    metrics: Arc<Metrics>,
    default_timeout: Option<Duration>,
    trace_ring: Option<Arc<TraceRing>>,
    shutdown: Arc<AtomicBool>,
    drain: Arc<AtomicBool>,
    drain_timeout: Duration,
    handle_sigterm: bool,
    open_connections: Arc<Gauge>,
    conns: HashMap<u64, Conn>,
    /// Tokens whose connection is in [`ConnState::InFlight`].
    inflight: HashSet<u64>,
    next_token: u64,
}

impl EventLoop {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut last_sweep = Instant::now();
        let mut drain_deadline: Option<Instant> = None;
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            if drain_deadline.is_none()
                && (self.drain.load(Ordering::Acquire)
                    || (self.handle_sigterm && crate::epoll::term_requested()))
            {
                self.drain.store(true, Ordering::Release);
                drain_deadline = Some(Instant::now() + self.drain_timeout);
                self.enter_drain();
            }
            if let Some(deadline) = drain_deadline {
                self.drain_sweep();
                self.reap_dead();
                if self.conns.is_empty() || Instant::now() >= deadline {
                    break;
                }
            }
            // While draining, tick fast regardless of in-flight state:
            // the exit condition (last connection gone) is polled, not
            // event-driven.
            let tick = if drain_deadline.is_some() || !self.inflight.is_empty() {
                BUSY_TICK
            } else {
                IDLE_TICK
            };
            if let Err(e) = self.epoll.wait(&mut events, Some(tick)) {
                snn_obs::log_warn!("epoll_wait failed", error = e.to_string());
                break;
            }
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            for ev in std::mem::take(&mut events) {
                if ev.token == LISTENER_TOKEN {
                    self.accept_ready();
                } else {
                    self.drive(ev);
                }
            }
            self.poll_inflight();
            self.pool.supervise();
            if last_sweep.elapsed() >= Duration::from_secs(1) {
                self.sweep_idle();
                last_sweep = Instant::now();
            }
            self.reap_dead();
        }
        // Teardown: deregister and drop every connection, then drain
        // the replica queues.
        for (_, conn) in self.conns.drain() {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
        }
        self.open_connections.set(0.0);
        self.pool.request_shutdown();
        if drain_deadline.is_some() {
            // `inflight` still holds tokens of requests that never
            // resolved before the deadline — the drain's casualty count.
            snn_obs::log_info!("drain complete", abandoned = self.inflight.len() as u64);
        }
    }

    /// Flips the loop into drain mode: the listener closes (connects
    /// are refused from here on) and every connection is marked
    /// close-after-response, so in-flight and partially-received
    /// requests finish exactly once and then go away. Idle keep-alive
    /// connections are dropped by [`Self::drain_sweep`] after a short
    /// grace (a request's bytes may still be in the kernel buffer).
    fn enter_drain(&mut self) {
        // Accept whatever already completed its handshake: those
        // clients connected before the drain and deserve an answer.
        // Closing the listener would RST them out of the backlog.
        self.accept_ready();
        if let Some(listener) = self.listener.take() {
            let _ = self.epoll.delete(listener.as_raw_fd());
            // Dropping closes the fd; the kernel refuses new connects.
        }
        for conn in self.conns.values_mut() {
            conn.close_after = true;
        }
        snn_obs::log_info!(
            "drain started",
            connections = self.conns.len() as u64,
            in_flight = self.inflight.len() as u64,
            timeout_ms = self.drain_timeout.as_millis() as u64,
        );
    }

    /// One drain-mode pass: drops connections that are idle (no
    /// partial frame, no pending output, nothing in flight) and have
    /// stayed so past [`DRAIN_IDLE_GRACE`].
    fn drain_sweep(&mut self) {
        for conn in self.conns.values_mut() {
            if matches!(conn.state, ConnState::Head)
                && conn.buf.is_empty()
                && conn.out.is_empty()
                && conn.received.is_none()
                && conn.idle_since.elapsed() >= DRAIN_IDLE_GRACE
            {
                conn.dead = true;
            }
        }
    }

    fn accept_ready(&mut self) {
        let Some(listener) = &self.listener else { return };
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self.epoll.add(stream.as_raw_fd(), token, Interest::READ).is_err() {
                        continue;
                    }
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            token,
                            buf: Vec::new(),
                            out: Vec::new(),
                            out_pos: 0,
                            state: ConnState::Head,
                            received: None,
                            idle_since: Instant::now(),
                            close_after: false,
                            want_write: false,
                            dead: false,
                        },
                    );
                    self.open_connections.set(self.conns.len() as f64);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Handles one readiness event for a connection. The connection is
    /// taken out of the map for the duration so handler methods can
    /// borrow `self` freely.
    fn drive(&mut self, ev: Event) {
        let Some(mut conn) = self.conns.remove(&ev.token) else { return };
        if ev.readable || ev.hangup {
            self.on_readable(&mut conn);
        }
        if ev.writable && !conn.dead {
            self.flush_out(&mut conn);
            // A flushed response may unblock parsing of pipelined
            // requests.
            if !conn.dead && conn.out.is_empty() && !matches!(conn.state, ConnState::InFlight(_))
            {
                self.process_buf(&mut conn);
            }
        }
        self.park(conn);
    }

    /// Puts a connection back in the map (keeping the inflight index
    /// coherent) — or marks it reaped if dead.
    fn park(&mut self, conn: Conn) {
        if matches!(conn.state, ConnState::InFlight(_)) && !conn.dead {
            self.inflight.insert(conn.token);
        } else {
            self.inflight.remove(&conn.token);
        }
        self.conns.insert(conn.token, conn);
    }

    fn on_readable(&mut self, conn: &mut Conn) {
        let mut chunk = [0u8; 4096];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    // Peer closed. Mid-request (partial frame or a
                    // reply still owed) there is nobody to answer;
                    // between requests it is a clean keep-alive close.
                    conn.dead = true;
                    return;
                }
                Ok(n) => {
                    if conn.received.is_none() {
                        conn.received = Some(Instant::now());
                    }
                    conn.buf.extend_from_slice(&chunk[..n]);
                    // Cap unprocessed input while a request is in
                    // flight or a response is draining: pipelined
                    // bytes park in `buf`, but a peer blasting more
                    // than one full frame ahead of MAX_HEAD+MAX_BODY
                    // is out of contract.
                    if conn.buf.len() > MAX_HEAD + MAX_BODY + 4 {
                        conn.dead = true;
                        return;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
        if !matches!(conn.state, ConnState::InFlight(_)) {
            self.process_buf(conn);
        }
    }

    /// Advances the parse state machine as far as the buffered bytes
    /// allow, dispatching every complete request (stopping if one goes
    /// in flight).
    fn process_buf(&mut self, conn: &mut Conn) {
        loop {
            if conn.dead || matches!(conn.state, ConnState::InFlight(_)) {
                return;
            }
            match &conn.state {
                ConnState::Head => {
                    if conn.received.is_none() && !conn.buf.is_empty() {
                        // Pipelined leftovers count as "already
                        // arrived" for the next request's clock.
                        conn.received = Some(Instant::now());
                    }
                    let Some(pos) = find_head_end(&conn.buf) else {
                        if conn.buf.len() > MAX_HEAD {
                            self.metrics.bad_requests.inc();
                            self.respond_error(conn, 400, "malformed HTTP request");
                        }
                        return;
                    };
                    let head = match parse_head(&conn.buf[..pos]) {
                        Ok(h) => h,
                        Err(_) => {
                            self.metrics.bad_requests.inc();
                            self.respond_error(conn, 400, "malformed HTTP request");
                            return;
                        }
                    };
                    if head.content_length > MAX_BODY {
                        // Refuse before reading a byte of the payload,
                        // exactly like the classic front end.
                        self.metrics.bad_requests.inc();
                        self.respond_error(
                            conn,
                            413,
                            &format!("request body too large (limit {MAX_BODY} bytes)"),
                        );
                        return;
                    }
                    conn.state = ConnState::Body { head, body_start: pos + 4 };
                }
                ConnState::Body { head, body_start } => {
                    let (body_start, need) = (*body_start, body_start + head.content_length);
                    if conn.buf.len() < need {
                        return;
                    }
                    let head = match std::mem::replace(&mut conn.state, ConnState::Head) {
                        ConnState::Body { head, .. } => head,
                        _ => unreachable!("matched Body above"),
                    };
                    let body: Vec<u8> = conn.buf[body_start..need].to_vec();
                    conn.buf.drain(..need);
                    self.dispatch(conn, head, body);
                }
                ConnState::InFlight(_) => return,
            }
        }
    }

    /// Routes one complete request. Non-`/infer` routes answer
    /// immediately; `/infer` submits to the replica pool and parks the
    /// connection in flight.
    fn dispatch(&mut self, conn: &mut Conn, head: RequestHead, body: Vec<u8>) {
        let received = conn.received.take().unwrap_or_else(Instant::now);
        let ctx = TraceContext::new_root();
        let _scope = tracectx::set_scope(ctx);
        let close = head.close;
        if head.method == "POST" && head.path == "/infer" {
            self.dispatch_infer(conn, &head, &body, received, ctx, close);
            return;
        }
        let mut content_type = "application/json";
        let (status, response_body) = match (head.method.as_str(), head.path.as_str()) {
            ("GET", "/healthz") => healthz_body(
                self.pool.registry().info(),
                &self.pool.circuit_states(),
                self.metrics.slo_fast_burn(),
                self.metrics.brownout_active(),
            ),
            ("GET", "/metrics") => {
                content_type = "text/plain; version=0.0.4";
                self.pool.refresh_gauges();
                (200, self.metrics.render_prometheus_with(self.pool.labeled_registry()))
            }
            ("GET", "/metrics.json") => {
                self.pool.refresh_gauges();
                let snap = self.metrics.snapshot(self.pool.registry().info());
                let body = Value::Object(vec![
                    ("summary".into(), snap.to_value()),
                    (
                        "instruments".into(),
                        self.metrics.snapshot_instruments_with(self.pool.labeled_registry()),
                    ),
                ]);
                (200, serde_json::to_string(&body).expect("Value serializes infallibly"))
            }
            ("GET", "/debug/traces") => traces_list_response(self.trace_ring.as_deref()),
            ("GET", path) if path.starts_with("/debug/traces/") => {
                trace_get_response(&path["/debug/traces/".len()..], self.trace_ring.as_deref())
            }
            ("POST", "/reload") => {
                if let Some(msg) = content_type_error(head.content_type.as_deref()) {
                    self.metrics.bad_requests.inc();
                    (400, error_body(&msg))
                } else {
                    let (status, body) = apply_reload(self.pool.registry(), &body);
                    if status == 400 {
                        self.metrics.bad_requests.inc();
                    }
                    (status, body)
                }
            }
            ("GET" | "POST", _) => (404, error_body("no such route")),
            _ => (405, error_body("method not allowed")),
        };
        self.respond(conn, status, content_type, &response_body, close, Some(&ctx.trace_hex()));
        if head.method == "POST" && head.path == "/reload" {
            self.finish(&head.path, &ctx, status, received, &Finish::default(), None);
        }
        conn.idle_since = Instant::now();
    }

    fn dispatch_infer(
        &mut self,
        conn: &mut Conn,
        head: &RequestHead,
        body: &[u8],
        received: Instant,
        ctx: TraceContext,
        close: bool,
    ) {
        let trace_hex = ctx.trace_hex();
        let bad_input = |this: &mut Self, conn: &mut Conn, msg: &str| {
            this.metrics.bad_requests.inc();
            this.respond(conn, 400, "application/json", &error_body(msg), close, Some(&trace_hex));
            let fin = Finish { outcome: "bad_input", ..Finish::default() };
            this.finish("/infer", &ctx, 400, received, &fin, None);
            conn.idle_since = Instant::now();
        };
        if let Some(msg) = content_type_error(head.content_type.as_deref()) {
            bad_input(self, conn, &msg);
            return;
        }
        let parsed = std::str::from_utf8(body)
            .map_err(|_| "body is not UTF-8".to_string())
            .and_then(|text| parse_infer_body(text, self.pool.input_len()));
        let (input, timeout) = match parsed {
            Ok(p) => p,
            Err(msg) => {
                bad_input(self, conn, &msg);
                return;
            }
        };
        let budget = timeout.or(self.default_timeout);
        let submitted = Instant::now();
        let deadline = budget.map(|d| submitted + d);
        let (replica, routed) = self.pool.route(&input, deadline, Some(ctx));
        match routed {
            Ok(ticket) => {
                conn.state = ConnState::InFlight(Box::new(InFlightReq {
                    ticket,
                    replica,
                    ctx,
                    received,
                    submitted,
                    give_up: budget.map(|d| submitted + d + ENGINE_GRACE),
                    give_up_after: budget.unwrap_or_default() + ENGINE_GRACE,
                    close,
                }));
            }
            Err(rejection) => {
                if matches!(rejection, Rejection::BadInput { .. }) {
                    self.metrics.bad_requests.inc();
                }
                let (status, outcome) = rejection_status(&rejection);
                self.respond(
                    conn,
                    status,
                    "application/json",
                    &error_body(&rejection.to_string()),
                    close,
                    Some(&trace_hex),
                );
                let fin = Finish {
                    outcome,
                    submitted: Some(submitted),
                    replied: Some(Instant::now()),
                    ..Finish::default()
                };
                self.finish("/infer", &ctx, status, received, &fin, Some(replica));
                conn.idle_since = Instant::now();
            }
        }
    }

    /// Polls every in-flight ticket; finished or timed-out requests
    /// get their response queued and the connection returns to
    /// request parsing.
    fn poll_inflight(&mut self) {
        let tokens: Vec<u64> = self.inflight.iter().copied().collect();
        for token in tokens {
            let Some(mut conn) = self.conns.remove(&token) else {
                self.inflight.remove(&token);
                continue;
            };
            if let ConnState::InFlight(req) = &mut conn.state {
                let waited = match req.ticket.try_wait() {
                    Some(w) => Some(w),
                    None => match req.give_up {
                        Some(t) if Instant::now() >= t => None,
                        // Still in flight (and within budget): leave
                        // parked.
                        _ => {
                            self.park(conn);
                            continue;
                        }
                    },
                };
                let req = match std::mem::replace(&mut conn.state, ConnState::Head) {
                    ConnState::InFlight(r) => r,
                    _ => unreachable!("matched InFlight above"),
                };
                self.complete_infer(&mut conn, *req, waited);
                if !conn.dead && conn.out.is_empty() {
                    // Response flushed synchronously; pipelined bytes
                    // may already hold the next request.
                    self.process_buf(&mut conn);
                }
            }
            self.park(conn);
        }
    }

    /// Builds and queues the `/infer` response once its ticket
    /// resolved (`None` = engine timeout), with the same status
    /// mapping, SLO accounting, and trace stages as the classic front
    /// end.
    fn complete_infer(
        &mut self,
        conn: &mut Conn,
        req: InFlightReq,
        waited: Option<Result<snn_serve::InferReply, Rejection>>,
    ) {
        let replied = Instant::now();
        let mut fin = Finish {
            submitted: Some(req.submitted),
            replied: Some(replied),
            ..Finish::default()
        };
        let (status, body) = match waited {
            Some(Ok(reply)) => {
                fin.outcome = "ok";
                fin.engine = reply.output.engine.clone();
                fin.batch_size = reply.batch_size as u64;
                fin.model_version = reply.model_version;
                fin.queue_us = reply.queue_us;
                fin.batch_form_us = reply.batch_form_us;
                self.pool.record_reply(req.replica, &reply);
                (200, infer_success_body(&reply))
            }
            Some(Err(rejection)) => {
                if matches!(rejection, Rejection::BadInput { .. }) {
                    self.metrics.bad_requests.inc();
                }
                let (status, outcome) = rejection_status(&rejection);
                fin.outcome = outcome;
                (status, error_body(&rejection.to_string()))
            }
            None => {
                fin.outcome = "engine_timeout";
                (
                    503,
                    error_body(&format!(
                        "engine timed out after {}ms; request abandoned",
                        req.give_up_after.as_millis()
                    )),
                )
            }
        };
        self.respond(
            conn,
            status,
            "application/json",
            &body,
            req.close,
            Some(&req.ctx.trace_hex()),
        );
        self.finish("/infer", &req.ctx, status, req.received, &fin, Some(req.replica));
        conn.idle_since = Instant::now();
    }

    /// Mirrors the classic front end's `finish_request`: SLO
    /// accounting (availability excludes client errors), the HTTP-side
    /// stage histograms, and the tail-sampled trace record.
    fn finish(
        &self,
        path: &str,
        ctx: &TraceContext,
        status: u16,
        received: Instant,
        fin: &Finish,
        replica: Option<usize>,
    ) {
        let finished = Instant::now();
        let total_us = (finished - received).as_micros() as u64;
        if path == "/infer" {
            if status != 400 {
                let ok = !matches!(status, 429 | 503 | 504);
                self.metrics.slo_record(ok, total_us);
                if let Some(r) = replica {
                    self.pool.slo_record(r, ok, total_us);
                }
            }
            if status >= 500 || status == 429 {
                snn_obs::log_warn!(
                    "infer failed",
                    status = status,
                    outcome = fin.outcome,
                    total_us = total_us,
                );
            }
        }
        let submitted = fin.submitted.unwrap_or(finished);
        let replied = fin.replied.unwrap_or(submitted);
        let parse_us = (submitted - received).as_micros() as u64;
        let in_flight_us = (replied - submitted).as_micros() as u64;
        let forward_us = in_flight_us.saturating_sub(fin.queue_us + fin.batch_form_us);
        let respond_us = (finished - replied).as_micros() as u64;
        if path == "/infer" {
            self.metrics.stage_parse.record(parse_us as f64 * 1e-6);
            self.metrics.stage_respond.record(respond_us as f64 * 1e-6);
        }
        let Some(ring) = &self.trace_ring else { return };
        let outcome = if fin.outcome.is_empty() {
            match status {
                200 => "ok",
                400 | 413 => "bad_input",
                409 => "incompatible",
                429 => "queue_full",
                504 => "deadline",
                _ => "error",
            }
        } else {
            fin.outcome
        };
        let stages = vec![
            StageTiming { stage: "parse".into(), micros: parse_us },
            StageTiming { stage: "queue_wait".into(), micros: fin.queue_us },
            StageTiming { stage: "batch_form".into(), micros: fin.batch_form_us },
            StageTiming { stage: "forward".into(), micros: forward_us },
            StageTiming { stage: "respond".into(), micros: respond_us },
        ];
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        ring.offer(TraceRecord {
            trace_id: ctx.trace_hex(),
            span_id: ctx.span_hex(),
            unix_ms,
            route: path.to_string(),
            engine: fin.engine.clone(),
            status,
            outcome: outcome.to_string(),
            batch_size: fin.batch_size,
            model_version: fin.model_version,
            total_us,
            stages,
        });
    }

    /// Queues a response and flushes as much as the socket accepts.
    fn respond(
        &mut self,
        conn: &mut Conn,
        status: u16,
        content_type: &str,
        body: &str,
        close: bool,
        trace_id: Option<&str>,
    ) {
        let response = format_response(status, content_type, body, close, trace_id);
        conn.out.extend_from_slice(response.as_bytes());
        conn.close_after |= close;
        self.flush_out(conn);
    }

    /// An error response that always closes the connection (framing is
    /// unrecoverable).
    fn respond_error(&mut self, conn: &mut Conn, status: u16, message: &str) {
        snn_obs::log_debug!("unframeable request", status = status, error = message.to_string());
        self.respond(conn, status, "application/json", &error_body(message), true, None);
    }

    fn flush_out(&mut self, conn: &mut Conn) {
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    conn.dead = true;
                    return;
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if !conn.want_write {
                        conn.want_write = true;
                        let _ = self.epoll.modify(
                            conn.stream.as_raw_fd(),
                            conn.token,
                            Interest::READ_WRITE,
                        );
                    }
                    return;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
        conn.out.clear();
        conn.out_pos = 0;
        if conn.want_write {
            conn.want_write = false;
            let _ =
                self.epoll.modify(conn.stream.as_raw_fd(), conn.token, Interest::READ);
        }
        if conn.close_after {
            conn.dead = true;
        }
    }

    /// Closes keep-alive connections idle past [`IDLE_TIMEOUT`]. A
    /// connection mid-request (partial head/body, in-flight ticket, or
    /// a draining response) is exempt — matching the classic front
    /// end, which only times out between requests.
    fn sweep_idle(&mut self) {
        for conn in self.conns.values_mut() {
            if matches!(conn.state, ConnState::Head)
                && conn.buf.is_empty()
                && conn.out.is_empty()
                && conn.idle_since.elapsed() > IDLE_TIMEOUT
            {
                conn.dead = true;
            }
        }
    }

    /// Deregisters and drops every connection marked dead this pass.
    fn reap_dead(&mut self) {
        let dead: Vec<u64> =
            self.conns.iter().filter(|(_, c)| c.dead).map(|(t, _)| *t).collect();
        if dead.is_empty() {
            return;
        }
        for token in dead {
            if let Some(conn) = self.conns.remove(&token) {
                let _ = self.epoll.delete(conn.stream.as_raw_fd());
            }
            self.inflight.remove(&token);
        }
        self.open_connections.set(self.conns.len() as f64);
    }
}
