//! End-to-end tests for the epoll front end: route parity with the
//! classic thread-per-connection server (bitwise-identical responses),
//! per-replica health reporting, atomic multi-replica reload, and the
//! per-replica metric expositions.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use serde::Value;
use snn_core::{LifConfig, NetworkSnapshot, SpikingNetwork};
use snn_pool::{PoolServer, PoolServerConfig};
use snn_serve::{BatcherConfig, ModelRegistry, Server, ServerConfig};
use snn_tensor::Shape;

fn snapshot(seed: u64) -> NetworkSnapshot {
    let lif = LifConfig { theta: 0.5, ..LifConfig::paper_default() };
    let net = SpikingNetwork::builder(Shape::d3(1, 8, 8), seed)
        .conv(4, 3, 1, 1, lif)
        .unwrap()
        .maxpool(2)
        .unwrap()
        .flatten()
        .unwrap()
        .dense(4, lif)
        .unwrap()
        .build()
        .unwrap();
    NetworkSnapshot::from_network(&net)
}

fn start_pool(replicas: usize, seed: u64) -> PoolServer {
    let registry = Arc::new(ModelRegistry::new(snapshot(seed), "demo").unwrap());
    let cfg = PoolServerConfig {
        replicas,
        batcher: BatcherConfig { timesteps: 2, ..BatcherConfig::default() },
        ..PoolServerConfig::default()
    };
    PoolServer::start(registry, cfg).unwrap()
}

fn start_classic(seed: u64) -> Server {
    let registry = Arc::new(ModelRegistry::new(snapshot(seed), "demo").unwrap());
    let cfg = ServerConfig {
        batcher: BatcherConfig { timesteps: 2, ..BatcherConfig::default() },
        ..ServerConfig::default()
    };
    Server::start(registry, cfg).unwrap()
}

/// One-shot raw HTTP client: returns (status, head, body).
fn request_full(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    let text = String::from_utf8(response).unwrap();
    let (head, body) = text.split_once("\r\n\r\n").expect("complete response");
    let status: u16 = head.split_whitespace().nth(1).expect("status").parse().expect("numeric");
    (status, head.to_string(), body.to_string())
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let (status, _, body) = request_full(addr, method, path, body);
    (status, body)
}

fn infer_body() -> String {
    let input: Vec<String> = (0..64).map(|i| format!("{}", (i % 7) as f32 / 7.0)).collect();
    format!("{{\"input\":[{}]}}", input.join(","))
}

/// Serializes a JSON object with the per-request volatile fields
/// (batching accidents and stage timings) removed, preserving field
/// order otherwise.
fn stable_fields(body: &str) -> String {
    const VOLATILE: [&str; 4] = ["batch_size", "queue_us", "batch_form_us", "infer_us"];
    let Value::Object(entries) = serde_json::parse(body).expect("JSON object body") else {
        panic!("expected object body: {body}");
    };
    let kept: Vec<(String, Value)> =
        entries.into_iter().filter(|(k, _)| !VOLATILE.contains(&k.as_str())).collect();
    serde_json::to_string(&Value::Object(kept)).unwrap()
}

#[test]
fn pool_infer_matches_classic_server_bitwise() {
    let pool = start_pool(2, 11);
    let classic = start_classic(11);
    let body = infer_body();
    let (pool_status, pool_reply) = request(pool.addr(), "POST", "/infer", &body);
    let (classic_status, classic_reply) = request(classic.addr(), "POST", "/infer", &body);
    assert_eq!(pool_status, 200, "pool reply: {pool_reply}");
    assert_eq!(classic_status, 200, "classic reply: {classic_reply}");
    // Identical snapshot + identical input ⇒ identical prediction,
    // counts, per-layer rates, and model_version. Only batching
    // accidents and stage timings may differ.
    assert_eq!(stable_fields(&pool_reply), stable_fields(&classic_reply));
}

#[test]
fn pool_error_responses_match_classic_bytes() {
    let pool = start_pool(2, 11);
    let classic = start_classic(11);
    // (method, path, body) → error paths share the exact bytes.
    let cases = [
        ("POST", "/infer", "not json at all"),
        ("POST", "/infer", "[1,2,3]"),
        ("POST", "/infer", "{\"input\":\"nope\"}"),
        ("POST", "/infer", "{\"input\":[1,2]}"),
        ("GET", "/nope", ""),
        ("PUT", "/infer", ""),
        ("POST", "/reload", "{\"bad\":1}"),
    ];
    for (method, path, body) in cases {
        let (ps, pb) = request(pool.addr(), method, path, body);
        let (cs, cb) = request(classic.addr(), method, path, body);
        assert_eq!((ps, pb), (cs, cb), "diverged on {method} {path} {body}");
    }
}

#[test]
fn healthz_reports_every_replica() {
    let pool = start_pool(3, 11);
    let (status, body) = request(pool.addr(), "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "body: {body}");
    for i in 0..3 {
        assert!(
            body.contains(&format!("{{\"replica\":{i},\"circuit\":\"closed\"}}")),
            "missing replica {i} in {body}"
        );
    }
    // Classic server reports the same shape with a single replica.
    let classic = start_classic(11);
    let (_, classic_body) = request(classic.addr(), "GET", "/healthz", "");
    assert!(
        classic_body.contains("\"replicas\":[{\"replica\":0,\"circuit\":\"closed\"}]"),
        "classic body: {classic_body}"
    );
}

#[test]
fn reload_swaps_every_replica_atomically() {
    let pool = start_pool(2, 11);
    let body = infer_body();
    let (_, before) = request(pool.addr(), "POST", "/infer", &body);
    assert!(before.contains("\"model_version\":1"), "before: {before}");

    let good = serde_json::to_string(&snapshot(77)).unwrap();
    let (status, receipt) = request(pool.addr(), "POST", "/reload", &good);
    assert_eq!(status, 200, "receipt: {receipt}");
    for field in ["\"ok\":true", "\"old_version\":1", "\"new_version\":2", "\"model_hash\":"] {
        assert!(receipt.contains(field), "missing {field} in {receipt}");
    }

    // Every replica polls the same registry version at its next batch
    // boundary: all subsequent responses (across many routed requests,
    // hence both replicas) carry the new version — never a torn batch.
    for _ in 0..12 {
        let (status, reply) = request(pool.addr(), "POST", "/infer", &body);
        assert_eq!(status, 200, "reply: {reply}");
        assert!(reply.contains("\"model_version\":2"), "stale replica reply: {reply}");
    }
    // With >12 routed requests, p2c has touched both replicas with
    // overwhelming probability.
    let routed = pool.pool().routed_counts();
    assert!(routed.iter().all(|&c| c > 0), "router starved a replica: {routed:?}");
}

#[test]
fn metrics_expose_per_replica_labeled_series() {
    let pool = start_pool(2, 11);
    let body = infer_body();
    for _ in 0..4 {
        let (status, _) = request(pool.addr(), "POST", "/infer", &body);
        assert_eq!(status, 200);
    }
    let (status, text) = request(pool.addr(), "GET", "/metrics", "");
    assert_eq!(status, 200);
    for series in [
        "snn_pool_replica_queue_depth{replica=\"0\"}",
        "snn_pool_replica_queue_depth{replica=\"1\"}",
        "snn_pool_replica_circuit_state{replica=\"0\"}",
        "snn_pool_replica_routed_total{replica=\"1\"}",
        "snn_pool_replica_infer_seconds_bucket{replica=\"0\",le=",
        "snn_pool_router_p2c_total",
        "snn_pool_router_fallback_total",
        "snn_pool_router_rerouted_total",
        "snn_pool_open_connections",
        // The shared serve-side instruments still render.
        "snn_serve_requests_received_total",
    ] {
        assert!(text.contains(series), "missing {series} in exposition");
    }
    // HELP/TYPE are declared once per family, not once per labeled
    // series.
    let declarations =
        text.matches("# TYPE snn_pool_replica_queue_depth gauge").count();
    assert_eq!(declarations, 1, "family declared {declarations} times");

    // The JSON exposition carries the same labeled instruments.
    let (status, json) = request(pool.addr(), "GET", "/metrics.json", "");
    assert_eq!(status, 200);
    assert!(json.contains("snn_pool_replica_routed_total{replica=\\\"0\\\"}")
        || json.contains("snn_pool_replica_routed_total{replica=\"0\"}"),
        "labeled series missing from metrics.json");
}

#[test]
fn keep_alive_pipelines_requests_in_order() {
    let pool = start_pool(2, 11);
    let body = infer_body();
    let mut stream = TcpStream::connect(pool.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    // Two /infer requests and a /healthz, written back-to-back before
    // reading anything.
    let mut batch = String::new();
    for _ in 0..2 {
        batch.push_str(&format!(
            "POST /infer HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ));
    }
    batch.push_str("GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    stream.write_all(batch.as_bytes()).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    let text = String::from_utf8(response).unwrap();
    let statuses: Vec<&str> =
        text.matches("HTTP/1.1 200 OK").collect();
    assert_eq!(statuses.len(), 3, "three pipelined responses: {text}");
    let healthz_pos = text.find("\"status\":\"ok\"").expect("healthz body last");
    let infer_pos = text.rfind("\"model_version\"").expect("infer bodies first");
    assert!(infer_pos < healthz_pos, "responses out of order");
}

#[test]
fn single_replica_pool_still_serves() {
    let pool = start_pool(1, 11);
    let (status, reply) = request(pool.addr(), "POST", "/infer", &infer_body());
    assert_eq!(status, 200, "reply: {reply}");
    let (status, body) = request(pool.addr(), "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"replicas\":[{\"replica\":0,\"circuit\":\"closed\"}]"));
}

#[test]
fn oversized_declared_body_rejected_without_reading() {
    let pool = start_pool(2, 11);
    let mut stream = TcpStream::connect(pool.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Declare 9 MiB but send none of it: the 413 must come back
    // immediately.
    stream
        .write_all(b"POST /infer HTTP/1.1\r\nHost: t\r\nContent-Length: 9437184\r\n\r\n")
        .unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    let text = String::from_utf8(response).unwrap();
    assert!(text.starts_with("HTTP/1.1 413 "), "got: {text}");
    assert!(text.contains("request body too large"), "got: {text}");
}
