//! Adversarial-client torture tests for the epoll front end: slow
//! writers, mid-body disconnects, and large idle connection herds must
//! neither wedge the single event-loop thread nor leak epoll
//! registrations.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use snn_core::{LifConfig, NetworkSnapshot, SpikingNetwork};
use snn_pool::{PoolServer, PoolServerConfig};
use snn_serve::{BatcherConfig, ModelRegistry};
use snn_tensor::Shape;

fn snapshot(seed: u64) -> NetworkSnapshot {
    let lif = LifConfig { theta: 0.5, ..LifConfig::paper_default() };
    let net = SpikingNetwork::builder(Shape::d3(1, 8, 8), seed)
        .conv(4, 3, 1, 1, lif)
        .unwrap()
        .maxpool(2)
        .unwrap()
        .flatten()
        .unwrap()
        .dense(4, lif)
        .unwrap()
        .build()
        .unwrap();
    NetworkSnapshot::from_network(&net)
}

fn start_pool(replicas: usize) -> PoolServer {
    let registry = Arc::new(ModelRegistry::new(snapshot(11), "demo").unwrap());
    let cfg = PoolServerConfig {
        replicas,
        batcher: BatcherConfig { timesteps: 2, ..BatcherConfig::default() },
        ..PoolServerConfig::default()
    };
    PoolServer::start(registry, cfg).unwrap()
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    let text = String::from_utf8(response).unwrap();
    let status: u16 = text.split_whitespace().nth(1).unwrap().parse().unwrap();
    (status, text)
}

fn infer_body() -> String {
    let input: Vec<String> = (0..64).map(|i| format!("{}", (i % 7) as f32 / 7.0)).collect();
    format!("{{\"input\":[{}]}}", input.join(","))
}

/// Waits for the server's open-connection gauge to drain to
/// `at_most`, failing after ~5s.
fn await_drain(server: &PoolServer, at_most: usize) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let open = server.open_connections();
        if open <= at_most {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "open_connections stuck at {open} (wanted <= {at_most}) — leaked registrations"
        );
        thread::sleep(Duration::from_millis(20));
    }
}

/// Graceful drain under load: every request already written before
/// the drain begins still gets its 200, idle keep-alives are dropped,
/// the listener refuses new connections, and the event loop exits on
/// its own — well before the drain deadline.
#[test]
fn graceful_drain_completes_inflight_and_refuses_new_connections() {
    let registry = Arc::new(ModelRegistry::new(snapshot(11), "demo").unwrap());
    let cfg = PoolServerConfig {
        replicas: 2,
        batcher: BatcherConfig {
            timesteps: 2,
            // A long linger keeps requests visibly in flight while the
            // drain starts underneath them.
            max_wait: Duration::from_millis(30),
            max_batch: 16,
            ..BatcherConfig::default()
        },
        drain_timeout: Duration::from_secs(5),
        ..PoolServerConfig::default()
    };
    let mut server = PoolServer::start(registry, cfg).unwrap();
    let addr = server.addr();
    let body = infer_body();

    // One parked keep-alive connection: the drain must shed it.
    let idle = TcpStream::connect(addr).unwrap();

    // Write eight full requests, then drain while they are in flight.
    let mut streams = Vec::new();
    for _ in 0..8 {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let req = format!(
            "POST /infer HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        s.write_all(req.as_bytes()).unwrap();
        streams.push(s);
    }
    server.begin_drain();
    assert!(server.draining());

    for mut s in streams {
        let mut response = Vec::new();
        s.read_to_end(&mut response).unwrap();
        let text = String::from_utf8(response).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 200 OK"),
            "in-flight request dropped during drain: {text}"
        );
    }

    // Every connection (including the idle one) goes away and the
    // listener closes, so new connects are refused.
    await_drain(&server, 0);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match TcpStream::connect(addr) {
            Err(_) => break,
            Ok(_) => {
                assert!(Instant::now() < deadline, "listener still accepting during drain");
                thread::sleep(Duration::from_millis(20));
            }
        }
    }
    drop(idle);

    // The loop exits by itself once drained — join must return fast.
    let joiner = thread::spawn(move || {
        server.join();
        server
    });
    let mut waited = Duration::ZERO;
    while !joiner.is_finished() && waited < Duration::from_secs(5) {
        thread::sleep(Duration::from_millis(20));
        waited += Duration::from_millis(20);
    }
    assert!(joiner.is_finished(), "event loop did not exit after drain");
    drop(joiner.join().unwrap());
}

/// A client trickling its request one byte at a time must not stall
/// anyone else: a level-triggered loop only sees the slow socket when
/// bytes actually arrive, so fast clients keep completing, and the
/// slow request itself still succeeds once its head is whole.
#[test]
fn slowloris_header_trickle_does_not_wedge_the_loop() {
    let server = start_pool(2);
    let addr = server.addr();

    let mut slow = TcpStream::connect(addr).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    slow.set_nodelay(true).unwrap();
    let head = b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";

    // Trickle all but the final byte while a fast client hammers
    // /infer on the same loop thread.
    let body = infer_body();
    for &byte in &head[..head.len() - 1] {
        slow.write_all(&[byte]).unwrap();
        let (status, text) = request(addr, "POST", "/infer", &body);
        assert_eq!(status, 200, "fast client starved by slowloris: {text}");
    }

    // Completing the head completes the slow request too.
    slow.write_all(&head[head.len() - 1..]).unwrap();
    let mut response = Vec::new();
    slow.read_to_end(&mut response).unwrap();
    let text = String::from_utf8(response).unwrap();
    assert!(text.starts_with("HTTP/1.1 200 OK"), "slow request failed: {text}");
    assert!(text.contains("\"status\":\"ok\""), "slow request body: {text}");

    drop(slow);
    await_drain(&server, 0);
}

/// A client that declares a body, sends half of it, and vanishes must
/// be reaped — not held forever as a half-read state machine — and the
/// server keeps answering.
#[test]
fn mid_body_disconnect_is_reaped_and_service_continues() {
    let server = start_pool(2);
    let addr = server.addr();
    let body = infer_body();

    for _ in 0..8 {
        let mut rude = TcpStream::connect(addr).unwrap();
        let head = format!(
            "POST /infer HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        rude.write_all(head.as_bytes()).unwrap();
        rude.write_all(&body.as_bytes()[..body.len() / 2]).unwrap();
        // Abort without finishing the body — both the polite FIN and
        // the abortive variant must unwind cleanly.
        rude.shutdown(Shutdown::Both).ok();
        drop(rude);
    }

    for _ in 0..4 {
        let (status, text) = request(addr, "POST", "/infer", &body);
        assert_eq!(status, 200, "service wedged after disconnects: {text}");
    }
    await_drain(&server, 0);
}

/// A herd of idle keep-alive connections costs one epoll registration
/// each — not a thread each. The loop must stay responsive with 1000
/// parked sockets and release every registration when they leave.
#[test]
fn thousand_idle_keepalive_connections_do_not_leak() {
    let server = start_pool(2);
    let addr = server.addr();

    let mut herd = Vec::with_capacity(1000);
    for i in 0..1000 {
        match TcpStream::connect(addr) {
            Ok(s) => herd.push(s),
            Err(e) => panic!("connect {i} failed: {e}"),
        }
    }
    // Let the accept loop register the stragglers.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.open_connections() < 1000 {
        assert!(Instant::now() < deadline, "only {} registered", server.open_connections());
        thread::sleep(Duration::from_millis(20));
    }

    // Still responsive with the herd parked.
    let body = infer_body();
    let (status, text) = request(addr, "POST", "/infer", &body);
    assert_eq!(status, 200, "loop unresponsive under idle herd: {text}");

    // A member of the herd can still transact.
    let member = herd.last_mut().unwrap();
    member.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    member
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut response = Vec::new();
    member.read_to_end(&mut response).unwrap();
    assert!(String::from_utf8(response).unwrap().contains("\"status\":\"ok\""));

    drop(herd);
    await_drain(&server, 0);
}
