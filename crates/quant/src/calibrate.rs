//! Activation-range calibration over a dataset split.
//!
//! Post-training quantization needs two measured ranges the weights
//! alone cannot provide: the input magnitude (to pick the input
//! quantization step) and each spiking stage's peak synaptic current
//! (to pick that stage's membrane Q-format with headroom). This
//! module runs the *f32* reference forward — the same kernels the
//! trained network used — over a calibration split and records both.

use snn_core::neuron::{lif_step, LifState};
use snn_core::{LayerSnapshot, NetworkSnapshot};
use snn_tensor::conv::conv2d_forward;
use snn_tensor::linalg::{add_bias_rows, matmul_nt};
use snn_tensor::pool::maxpool2d_forward;
use snn_tensor::{Shape, Tensor};

use crate::error::QuantError;

/// Measured activation ranges from one calibration run.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Largest input magnitude observed (floored at a small epsilon
    /// so an all-zero split cannot produce a zero quantization step).
    pub input_max: f32,
    /// Per-snapshot-layer peak `|synaptic current|` (conv/dense
    /// pre-activation after bias); non-spiking layers hold 0.0.
    pub stage_current_max: Vec<f32>,
    /// Number of calibration items observed.
    pub samples: usize,
    /// Timesteps each item was run for.
    pub timesteps: usize,
}

/// Largest batch calibrated at once; bounds scratch memory while
/// keeping the conv kernels batched enough to amortize dispatch.
const CALIBRATION_CHUNK: usize = 32;

/// Runs the f32 forward over `items` and records activation ranges.
///
/// Items are flat input vectors matching the snapshot's
/// `input_item_dims` product, direct-coded for `timesteps` steps —
/// the same presentation the serve engine uses.
///
/// # Errors
///
/// Returns [`QuantError::Calibration`] for an empty split, length
/// mismatches, non-finite inputs, or zero timesteps, and passes
/// through snapshot validation failures as [`QuantError::Structure`].
pub fn calibrate(
    snap: &NetworkSnapshot,
    items: &[Vec<f32>],
    timesteps: usize,
) -> Result<Calibration, QuantError> {
    snap.validate().map_err(|e| QuantError::Structure(format!("calibration snapshot: {e}")))?;
    if items.is_empty() {
        return Err(QuantError::Calibration("empty calibration split".into()));
    }
    if timesteps == 0 {
        return Err(QuantError::Calibration("zero timesteps".into()));
    }
    let item_len: usize = snap.input_item_dims.iter().product();
    let mut input_max = 0f32;
    for (i, item) in items.iter().enumerate() {
        if item.len() != item_len {
            return Err(QuantError::Calibration(format!(
                "item {i} has {} values, the network expects {item_len}",
                item.len()
            )));
        }
        for &v in item {
            if !v.is_finite() {
                return Err(QuantError::Calibration(format!("item {i} contains non-finite value {v}")));
            }
            input_max = input_max.max(v.abs());
        }
    }
    let mut stage_current_max = vec![0f32; snap.layers.len()];
    for chunk in items.chunks(CALIBRATION_CHUNK) {
        observe_chunk(snap, chunk, timesteps, &mut stage_current_max)?;
    }
    Ok(Calibration {
        input_max: input_max.max(1e-6),
        stage_current_max,
        samples: items.len(),
        timesteps,
    })
}

/// Forward one batch of items for the full sequence, folding each
/// spiking stage's `|current|` maximum into `current_max`.
fn observe_chunk(
    snap: &NetworkSnapshot,
    chunk: &[Vec<f32>],
    timesteps: usize,
    current_max: &mut [f32],
) -> Result<(), QuantError> {
    let n = chunk.len();
    let item_len: usize = snap.input_item_dims.iter().product();
    let mut flat = Vec::with_capacity(n * item_len);
    for item in chunk {
        flat.extend_from_slice(item);
    }
    let mut input_dims = vec![n];
    input_dims.extend_from_slice(&snap.input_item_dims);
    let input = Tensor::from_vec(Shape::from_dims(&input_dims), flat)
        .map_err(|e| QuantError::Calibration(format!("building input batch: {e}")))?;

    let mut states: Vec<Option<LifState>> = vec![None; snap.layers.len()];
    for _t in 0..timesteps {
        let mut x = input.clone();
        for (idx, layer) in snap.layers.iter().enumerate() {
            x = match layer {
                LayerSnapshot::Conv { geom, lif, weight, bias, name } => {
                    let current = conv2d_forward(geom, &x, weight, bias)
                        .map_err(|e| QuantError::Calibration(format!("conv {name}: {e}")))?;
                    fold_max(&current, &mut current_max[idx]);
                    let state = states[idx]
                        .get_or_insert_with(|| LifState::new(current.shape()));
                    let (u, s) = lif_step(lif, state, &current);
                    state.membrane = u;
                    state.prev_spikes = s.clone();
                    s
                }
                LayerSnapshot::Dense { lif, weight, bias, name } => {
                    let mut current = matmul_nt(&x, weight)
                        .map_err(|e| QuantError::Calibration(format!("dense {name}: {e}")))?;
                    add_bias_rows(&mut current, bias)
                        .map_err(|e| QuantError::Calibration(format!("dense {name} bias: {e}")))?;
                    fold_max(&current, &mut current_max[idx]);
                    let state = states[idx]
                        .get_or_insert_with(|| LifState::new(current.shape()));
                    let (u, s) = lif_step(lif, state, &current);
                    state.membrane = u;
                    state.prev_spikes = s.clone();
                    s
                }
                LayerSnapshot::Pool { geom, name } => maxpool2d_forward(geom, &x)
                    .map_err(|e| QuantError::Calibration(format!("pool {name}: {e}")))?
                    .output,
                LayerSnapshot::Flatten { .. } => {
                    let len = x.len() / n;
                    x.reshape(Shape::d2(n, len))
                        .map_err(|e| QuantError::Calibration(format!("flatten: {e}")))?
                }
            };
        }
    }
    Ok(())
}

fn fold_max(t: &Tensor, acc: &mut f32) {
    for &v in t.as_slice() {
        *acc = acc.max(v.abs());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_core::{LifConfig, SpikingNetwork};

    fn tiny_snapshot() -> NetworkSnapshot {
        let net = SpikingNetwork::builder(Shape::d3(1, 6, 6), 7)
            .conv(2, 3, 1, 1, LifConfig::paper_default())
            .unwrap()
            .maxpool(2)
            .unwrap()
            .flatten()
            .unwrap()
            .dense(3, LifConfig::paper_default())
            .unwrap()
            .build()
            .expect("tiny network");
        NetworkSnapshot::from_network(&net)
    }

    #[test]
    fn records_ranges_per_spiking_stage() {
        let snap = tiny_snapshot();
        let items: Vec<Vec<f32>> = (0..5)
            .map(|i| (0..36).map(|j| ((i * 36 + j) % 7) as f32 / 6.0).collect())
            .collect();
        let cal = calibrate(&snap, &items, 3).unwrap();
        assert_eq!(cal.samples, 5);
        assert_eq!(cal.stage_current_max.len(), snap.layers.len());
        assert!(cal.input_max > 0.9 && cal.input_max <= 1.0);
        // Conv (idx 0) and dense (idx 3) see current; pool/flatten do not.
        assert!(cal.stage_current_max[0] > 0.0, "conv stage saw current");
        assert_eq!(cal.stage_current_max[1], 0.0, "pool stage records nothing");
        assert_eq!(cal.stage_current_max[2], 0.0, "flatten stage records nothing");
    }

    #[test]
    fn rejects_bad_split() {
        let snap = tiny_snapshot();
        assert!(matches!(calibrate(&snap, &[], 2), Err(QuantError::Calibration(_))));
        let short = vec![vec![0.5f32; 10]];
        assert!(matches!(calibrate(&snap, &short, 2), Err(QuantError::Calibration(_))));
        let bad = vec![vec![f32::NAN; 36]];
        assert!(matches!(calibrate(&snap, &bad, 2), Err(QuantError::Calibration(_))));
        let ok = vec![vec![0.5f32; 36]];
        assert!(matches!(calibrate(&snap, &ok, 0), Err(QuantError::Calibration(_))));
    }

    #[test]
    fn all_zero_split_floors_input_max() {
        let snap = tiny_snapshot();
        let items = vec![vec![0.0f32; 36]];
        let cal = calibrate(&snap, &items, 1).unwrap();
        assert!(cal.input_max > 0.0);
    }
}
