//! Typed failure modes for quantization, calibration, and the
//! integer inference runtime.

use std::fmt;

/// Everything that can go wrong between an f32 snapshot and a running
/// integer network.
///
/// Mirrors the shape of [`snn_core::SnapshotError`] so serve-side
/// adapters can map variants one-to-one; the distinction that matters
/// operationally is that *none* of these are panics — a malformed or
/// out-of-range artifact always surfaces as a value.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantError {
    /// The artifact text is not a valid quantized snapshot (bad JSON,
    /// missing fields, wrong `format` tag).
    Malformed(String),
    /// A structurally valid artifact asks for something this build
    /// does not implement (e.g. a bit width outside 2..=8).
    Unsupported(String),
    /// One stage is internally inconsistent (weight/scale/rescale
    /// length mismatches, invalid geometry, non-finite scales).
    Stage {
        /// Index and name of the offending stage, e.g. `"2 (conv1)"`.
        stage: String,
        /// What is wrong with it.
        message: String,
    },
    /// The stages do not compose into a network matching the declared
    /// input dims / class count.
    Structure(String),
    /// The calibrated dynamic range cannot be represented: no Q-format
    /// with acceptable headroom exists for a stage, or a rescale
    /// multiplier falls outside `i32`.
    Overflow {
        /// Index and name of the offending stage.
        stage: String,
        /// The range that failed to fit.
        message: String,
    },
    /// Calibration input was unusable (empty split, wrong item length,
    /// non-finite values).
    Calibration(String),
    /// Reading or writing an artifact file failed.
    Io {
        /// Path involved.
        path: String,
        /// OS error text.
        message: String,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::Malformed(m) => write!(f, "malformed quantized artifact: {m}"),
            QuantError::Unsupported(m) => write!(f, "unsupported quantization request: {m}"),
            QuantError::Stage { stage, message } => {
                write!(f, "quantized stage {stage}: {message}")
            }
            QuantError::Structure(m) => write!(f, "quantized network structure: {m}"),
            QuantError::Overflow { stage, message } => {
                write!(f, "quantization overflow at stage {stage}: {message}")
            }
            QuantError::Calibration(m) => write!(f, "calibration failed: {m}"),
            QuantError::Io { path, message } => write!(f, "quant artifact I/O on {path}: {message}"),
        }
    }
}

impl std::error::Error for QuantError {}
