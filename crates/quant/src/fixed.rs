//! Fixed-point arithmetic for the integer LIF datapath.
//!
//! Two pieces: [`Rescale`], the multiply+shift requantizer that turns
//! raw `i32` accumulator sums into Q-format membrane current, and
//! [`FixedLif`], the LIF step parameters with `beta` as an integer
//! multiply + shift. Neither touches f32 at inference time: all f32 →
//! fixed conversion happens once, at quantization time.

use serde::{Deserialize, Serialize};
use snn_core::{LifConfig, ResetMode};

use crate::error::QuantError;
use crate::qtensor::saturate_i32;

/// Fractional bits of the `beta` multiplier (Q15: `beta ≈
/// beta_mult / 2^15`). One fixed choice for every artifact keeps leak
/// precision uniform and the artifact simpler; with `beta ∈ [0, 1]`
/// the multiplier always fits 16 bits.
pub const BETA_FRAC_BITS: u32 = 15;

/// A positive real factor `r` encoded as `mult / 2^shift`, applied to
/// `i32` accumulators with rounding and a single saturating cast.
///
/// `mult` is normalized into `[2^22, 2^23)` whenever `shift > 0`
/// allows it, giving ~7 significant decimal digits — far below the
/// error introduced by 8-bit weights themselves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rescale {
    /// Fixed-point multiplier, `0 <= mult <= i32::MAX`.
    pub mult: i32,
    /// Right shift applied after the widening multiply, `<= 62`.
    pub shift: u32,
}

impl Rescale {
    /// Encodes a nonnegative finite real factor.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::Malformed`] for negative or non-finite
    /// input and [`QuantError::Overflow`]-shaped messages (via
    /// `Malformed`) when `r` exceeds what a 31-bit multiplier with
    /// zero shift can express (`r > i32::MAX`).
    pub fn from_real(r: f64) -> Result<Self, QuantError> {
        if !r.is_finite() || r < 0.0 {
            return Err(QuantError::Malformed(format!("rescale factor {r} must be finite and >= 0")));
        }
        if r == 0.0 {
            return Ok(Rescale { mult: 0, shift: 0 });
        }
        // Find the shift that lands round(r * 2^shift) in [2^22, 2^23).
        let mut shift: i64 = 22 - r.log2().ceil() as i64;
        shift = shift.clamp(0, 62);
        let mut mult = (r * (1u64 << shift) as f64).round();
        // log2 rounding can leave us one octave off; renormalize.
        while mult >= (1 << 23) as f64 && shift > 0 {
            shift -= 1;
            mult = (r * (1u64 << shift) as f64).round();
        }
        while mult < (1 << 22) as f64 && shift < 62 {
            shift += 1;
            mult = (r * (1u64 << shift) as f64).round();
        }
        if mult > i32::MAX as f64 {
            return Err(QuantError::Malformed(format!(
                "rescale factor {r} exceeds the i32 multiplier range"
            )));
        }
        Ok(Rescale { mult: mult as i32, shift: shift as u32 })
    }

    /// Applies the factor: `sat_i32(round(acc * mult / 2^shift))`.
    ///
    /// The widening product of two `i32`s plus the rounding term fits
    /// `i64` exactly, so the only lossy operation is the final
    /// saturating narrow.
    pub fn apply(&self, acc: i32) -> i32 {
        let wide = acc as i64 * self.mult as i64;
        let rounded = if self.shift == 0 {
            wide
        } else {
            // Round half away from zero so +x and -x rescale to
            // mirrored values; plain `+ half` would bias negatives
            // toward +inf by one ulp.
            let half = 1i64 << (self.shift - 1);
            if wide >= 0 { (wide + half) >> self.shift } else { -((-wide + half) >> self.shift) }
        };
        saturate_i32(rounded)
    }

    /// The real factor this encodes (for diagnostics and tests).
    pub fn real(&self) -> f64 {
        self.mult as f64 / (1u64 << self.shift) as f64
    }

    /// Validation for untrusted artifacts.
    ///
    /// # Errors
    ///
    /// Returns a message if `mult` is negative or `shift > 62`.
    pub fn validate(&self) -> Result<(), String> {
        if self.mult < 0 {
            return Err(format!("negative rescale multiplier {}", self.mult));
        }
        if self.shift > 62 {
            return Err(format!("rescale shift {} exceeds 62", self.shift));
        }
        Ok(())
    }
}

/// LIF parameters in fixed point: membrane potential and threshold in
/// Q`frac_bits`, leak as a Q15 multiply + shift.
///
/// The step mirrors [`snn_core::neuron::lif_step`] exactly in
/// structure:
///
/// * `Subtract`: `u = leak(u_prev) + I - s_prev * theta_q`
/// * `Zero`:     `u = (s_prev ? 0 : leak(u_prev)) + I`
/// * spike iff `u > theta_q`
///
/// with `leak(m) = round(m * beta_mult / 2^beta_shift)` and every sum
/// taken in `i64` before one saturating narrow to `i32`. All
/// operations are elementwise integer arithmetic — no ordering or
/// thread-count sensitivity exists.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FixedLif {
    /// Fractional bits of the membrane potential and threshold
    /// (Q-format `Q(31-frac_bits).frac_bits`).
    pub frac_bits: u32,
    /// Leak multiplier, `round(beta * 2^beta_shift)`.
    pub beta_mult: i32,
    /// Leak shift; always [`BETA_FRAC_BITS`] for artifacts written by
    /// this crate, carried explicitly for forward compatibility.
    pub beta_shift: u32,
    /// Threshold in Q`frac_bits`.
    pub theta_q: i32,
    /// Reset semantics, shared with the f32 configuration.
    pub reset: ResetMode,
}

impl FixedLif {
    /// Converts a validated f32 LIF configuration at a chosen
    /// Q-format.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::Malformed`] if the configuration fails
    /// its own validation, or if `theta` does not fit Q`frac_bits`.
    pub fn from_config(cfg: &LifConfig, frac_bits: u32) -> Result<Self, QuantError> {
        cfg.validate().map_err(QuantError::Malformed)?;
        if frac_bits > 30 {
            return Err(QuantError::Malformed(format!("frac_bits {frac_bits} exceeds 30")));
        }
        let theta_q = (cfg.theta as f64 * (1u64 << frac_bits) as f64).round();
        if theta_q > i32::MAX as f64 || theta_q < 1.0 {
            return Err(QuantError::Malformed(format!(
                "theta {} does not fit Q{frac_bits}",
                cfg.theta
            )));
        }
        Ok(FixedLif {
            frac_bits,
            beta_mult: (cfg.beta as f64 * (1u64 << BETA_FRAC_BITS) as f64).round() as i32,
            beta_shift: BETA_FRAC_BITS,
            theta_q: theta_q as i32,
            reset: cfg.reset,
        })
    }

    /// The leak `round(m * beta / 1)` in pure integer arithmetic.
    ///
    /// Rounds half away from zero (matching [`Rescale::apply`]) so
    /// decay is symmetric around zero.
    pub fn leak(&self, m: i32) -> i32 {
        let wide = m as i64 * self.beta_mult as i64;
        let r = if self.beta_shift == 0 {
            wide
        } else {
            let half = 1i64 << (self.beta_shift - 1);
            if wide >= 0 { (wide + half) >> self.beta_shift } else { -((-wide + half) >> self.beta_shift) }
        };
        saturate_i32(r)
    }

    /// One membrane update: previous potential, previous output
    /// spike, and the Q`frac_bits` input current (already including
    /// any bias). Returns `(new_potential, spike)`.
    pub fn step(&self, m_prev: i32, spiked_prev: bool, current_q: i64) -> (i32, bool) {
        let decayed = match self.reset {
            ResetMode::Subtract => {
                let reset = if spiked_prev { self.theta_q as i64 } else { 0 };
                self.leak(m_prev) as i64 + current_q - reset
            }
            ResetMode::Zero => {
                let kept = if spiked_prev { 0 } else { self.leak(m_prev) as i64 };
                kept + current_q
            }
        };
        let u = saturate_i32(decayed);
        (u, u > self.theta_q)
    }

    /// Validation for untrusted artifacts.
    ///
    /// # Errors
    ///
    /// Returns a message for out-of-range fields: `frac_bits > 30`,
    /// `beta_shift > 30`, a leak multiplier outside `[0, 2^beta_shift]`
    /// (beta must stay in `[0, 1]`), or a non-positive threshold.
    pub fn validate(&self) -> Result<(), String> {
        if self.frac_bits > 30 {
            return Err(format!("frac_bits {} exceeds 30", self.frac_bits));
        }
        if self.beta_shift > 30 {
            return Err(format!("beta_shift {} exceeds 30", self.beta_shift));
        }
        if self.beta_mult < 0 || self.beta_mult as i64 > 1i64 << self.beta_shift {
            return Err(format!(
                "beta multiplier {} outside [0, 2^{}]",
                self.beta_mult, self.beta_shift
            ));
        }
        if self.theta_q <= 0 {
            return Err(format!("threshold {} must be positive", self.theta_q));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rescale_encodes_and_applies() {
        for &r in &[1.0, 0.5, 3.25, 1e-6, 0.001953125, 123456.0] {
            let rs = Rescale::from_real(r).unwrap();
            rs.validate().unwrap();
            let rel = (rs.real() - r).abs() / r;
            assert!(rel < 1e-6, "factor {r}: encoded {} off by {rel}", rs.real());
            let got = rs.apply(1000);
            let want = (1000.0 * r).round();
            assert!(
                (got as f64 - want).abs() <= 1.0,
                "apply(1000) * {r}: {got} vs {want}"
            );
            // Symmetric rounding: negating the accumulator negates
            // the result.
            assert_eq!(rs.apply(-1000), -got);
        }
        assert_eq!(Rescale::from_real(0.0).unwrap().apply(12345), 0);
        assert!(Rescale::from_real(f64::NAN).is_err());
        assert!(Rescale::from_real(-1.0).is_err());
        assert!(Rescale::from_real(3e9).is_err(), "beyond i32 multiplier range");
    }

    #[test]
    fn rescale_saturates_near_overflow() {
        let rs = Rescale::from_real(1024.0).unwrap();
        assert_eq!(rs.apply(i32::MAX), i32::MAX, "large positive saturates, not wraps");
        assert_eq!(rs.apply(i32::MIN), i32::MIN, "large negative saturates, not wraps");
    }

    #[test]
    fn fixed_step_matches_f32_reference_one_step() {
        let cfg = LifConfig::paper_default();
        let f = 16u32;
        let fx = FixedLif::from_config(&cfg, f).unwrap();
        fx.validate().unwrap();
        let scale = (1u64 << f) as f32;
        let u0 = 0.8f32;
        let current = 0.6f32;
        let (uq, sq) = fx.step((u0 * scale).round() as i32, false, (current * scale).round() as i64);
        let uf = cfg.beta * u0 + current;
        assert!((uq as f32 / scale - uf).abs() < 1e-3);
        assert_eq!(sq, uf > cfg.theta);
        // Subtract reset after a spike.
        let (uq2, _) = fx.step(uq, true, (current * scale).round() as i64);
        let uf2 = cfg.beta * uf + current - cfg.theta;
        assert!((uq2 as f32 / scale - uf2).abs() < 1e-3);
    }

    #[test]
    fn zero_reset_zeroes_membrane() {
        let cfg = LifConfig { reset: ResetMode::Zero, ..LifConfig::paper_default() };
        let fx = FixedLif::from_config(&cfg, 16).unwrap();
        let (u, _) = fx.step(1 << 20, true, 0);
        assert_eq!(u, 0, "hard reset discards the leaked membrane entirely");
    }
}
