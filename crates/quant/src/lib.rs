//! # snn-quant — post-training quantization and integer inference
//!
//! Turns a trained f32 [`snn_core::NetworkSnapshot`] into a
//! [`QuantizedSnapshot`] artifact (per-output-channel symmetric i8
//! weights, Q-format fixed-point LIF parameters, per-channel integer
//! rescales) and executes it with [`QuantNetwork`], an integer-only
//! runtime built on the quantized kernels in [`snn_tensor::qmat`].
//!
//! ## Pipeline
//!
//! 1. [`calibrate`] runs the f32 reference forward over a calibration
//!    split, recording the input range and each spiking stage's peak
//!    synaptic current.
//! 2. [`quantize_snapshot`] picks per-stage membrane Q-formats with
//!    headroom from those ranges, quantizes weights per output
//!    channel, and folds `s_w·s_x·2^F` into integer multiply+shift
//!    [`Rescale`]s.
//! 3. [`QuantNetwork::from_snapshot`] builds the runtime; after the
//!    one-time input quantization, inference never touches f32.
//!
//! Outputs are bit-identical across thread counts and across the
//! dense/event dispatch routes: every accumulator is an exact integer
//! sum, and saturation happens only at the final narrowing casts.
//!
//! ```
//! use snn_core::{LifConfig, NetworkSnapshot, SpikingNetwork};
//! use snn_quant::{calibrate, quantize_snapshot, QuantNetwork};
//!
//! let net = SpikingNetwork::builder(snn_tensor::Shape::d3(1, 6, 6), 3)
//!     .conv(2, 3, 1, 1, LifConfig::paper_default())
//!     .unwrap()
//!     .flatten()
//!     .unwrap()
//!     .dense(3, LifConfig::paper_default())
//!     .unwrap()
//!     .build()
//!     .unwrap();
//! let snap = NetworkSnapshot::from_network(&net);
//! let split: Vec<Vec<f32>> = (0..4)
//!     .map(|i| (0..36).map(|j| ((i + j) % 5) as f32 / 4.0).collect())
//!     .collect();
//! let cal = calibrate(&snap, &split, 4).unwrap();
//! let artifact = quantize_snapshot(&snap, &cal, 8).unwrap();
//! let mut runtime = QuantNetwork::from_snapshot(&artifact).unwrap();
//! let counts = runtime.infer_batch(&split, 4).unwrap();
//! assert_eq!(counts.len(), split.len() * 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calibrate;
mod error;
mod fixed;
mod network;
mod qtensor;
mod snapshot;

pub use calibrate::{calibrate, Calibration};
pub use error::QuantError;
pub use fixed::{FixedLif, Rescale, BETA_FRAC_BITS};
pub use network::{classify_counts, QuantNetwork, StageMeta};
pub use qtensor::{saturate_i32, saturate_i8, weight_qmax, QuantizedTensor, QMAX_I8};
pub use snapshot::{quantize_snapshot, QuantStage, QuantizedSnapshot, QUANT_FORMAT};
