//! The integer-only inference runtime for quantized artifacts.
//!
//! [`QuantNetwork`] executes a validated [`QuantizedSnapshot`]:
//! activations are `u8` (level-coded input on the first layer, binary
//! spikes after), weights `i8`, accumulators `i32`, membranes
//! Q-format `i32`. The input is quantized **once per request**; after
//! that the hot loop performs no f32 arithmetic at all — the multiply
//! path is integer end-to-end, so there is no silent f32 fallback to
//! mask quantization error or break cross-platform determinism.
//!
//! Every kernel in the loop is exact integer arithmetic with
//! order-independent sums, so outputs are bit-identical across thread
//! counts and across the dense/event convolution routes.

use snn_tensor::conv::Conv2dGeometry;
use snn_tensor::par;
use snn_tensor::pool::Pool2dGeometry;
use snn_tensor::qmat::{qconv2d_forward_routed, qlinear_into, transpose_i8, QConvScratch};

use crate::error::QuantError;
use crate::fixed::{FixedLif, Rescale};
use crate::snapshot::{QuantStage, QuantizedSnapshot};

/// Static description of one runtime stage (for engines that report
/// per-layer firing statistics).
#[derive(Debug, Clone, PartialEq)]
pub struct StageMeta {
    /// Layer name from the artifact.
    pub name: String,
    /// Activation values per batch item at this stage's output.
    pub item_len: usize,
    /// Whether the stage emits spikes (conv/dense).
    pub spiking: bool,
}

/// One executable stage: quantized parameters plus reusable batch
/// state.
enum RunStage {
    Conv {
        geom: Conv2dGeometry,
        w: Vec<i8>,
        wt: Vec<i8>,
        bias_q: Vec<i32>,
        rescale: Vec<Rescale>,
        lif: FixedLif,
        scratch: QConvScratch,
        acc: Vec<i32>,
        mem: Vec<i32>,
    },
    Dense {
        wt: Vec<i8>,
        in_len: usize,
        out_n: usize,
        bias_q: Vec<i32>,
        rescale: Vec<Rescale>,
        lif: FixedLif,
        acc: Vec<i32>,
        mem: Vec<i32>,
    },
    Pool {
        geom: Pool2dGeometry,
    },
    Flatten,
}

/// An executable quantized network.
///
/// Owns all scratch and state buffers; like the f32 serve engine it
/// is intended for single-owner use (one engine per worker), not
/// shared access.
pub struct QuantNetwork {
    input_item_dims: Vec<usize>,
    classes: usize,
    input_max: f32,
    input_levels: i32,
    bits: u32,
    stages: Vec<RunStage>,
    meta: Vec<StageMeta>,
    /// Per-stage output activations, `[n, item_len]` each; kept
    /// outside [`RunStage`] so stage `i` can read stage `i-1`'s
    /// output while writing its own. The previous timestep's content
    /// doubles as the LIF reset's "previous spikes".
    outs: Vec<Vec<u8>>,
    qinput: Vec<u8>,
}

impl QuantNetwork {
    /// Builds the runtime from a validated artifact.
    ///
    /// # Errors
    ///
    /// Returns whatever [`QuantizedSnapshot::validate`] finds.
    pub fn from_snapshot(snap: &QuantizedSnapshot) -> Result<Self, QuantError> {
        snap.validate()?;
        let mut stages = Vec::with_capacity(snap.stages.len());
        let mut meta = Vec::with_capacity(snap.stages.len());
        for stage in &snap.stages {
            match stage {
                QuantStage::Conv { name, geom, weight, bias_q, rescale, lif } => {
                    let wt = transpose_i8(&weight.values, weight.channels, weight.per_channel);
                    meta.push(StageMeta {
                        name: name.clone(),
                        item_len: geom.out_channels * geom.out_h() * geom.out_w(),
                        spiking: true,
                    });
                    stages.push(RunStage::Conv {
                        geom: *geom,
                        w: weight.values.clone(),
                        wt,
                        bias_q: bias_q.clone(),
                        rescale: rescale.clone(),
                        lif: *lif,
                        scratch: QConvScratch::new(),
                        acc: Vec::new(),
                        mem: Vec::new(),
                    });
                }
                QuantStage::Dense { name, weight, bias_q, rescale, lif } => {
                    let wt = transpose_i8(&weight.values, weight.channels, weight.per_channel);
                    meta.push(StageMeta {
                        name: name.clone(),
                        item_len: weight.channels,
                        spiking: true,
                    });
                    stages.push(RunStage::Dense {
                        wt,
                        in_len: weight.per_channel,
                        out_n: weight.channels,
                        bias_q: bias_q.clone(),
                        rescale: rescale.clone(),
                        lif: *lif,
                        acc: Vec::new(),
                        mem: Vec::new(),
                    });
                }
                QuantStage::Pool { name, geom } => {
                    meta.push(StageMeta {
                        name: name.clone(),
                        item_len: geom.channels * geom.out_h() * geom.out_w(),
                        spiking: false,
                    });
                    stages.push(RunStage::Pool { geom: *geom });
                }
                QuantStage::Flatten { name, len } => {
                    meta.push(StageMeta { name: name.clone(), item_len: *len, spiking: false });
                    stages.push(RunStage::Flatten);
                }
            }
        }
        let outs = vec![Vec::new(); stages.len()];
        Ok(QuantNetwork {
            input_item_dims: snap.input_item_dims.clone(),
            classes: snap.classes,
            input_max: snap.input_max,
            input_levels: snap.input_levels,
            bits: snap.bits,
            stages,
            meta,
            outs,
            qinput: Vec::new(),
        })
    }

    /// Flat input length per item.
    pub fn input_len(&self) -> usize {
        self.input_item_dims.iter().product()
    }

    /// Output class count.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Weight bit width of the underlying artifact.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Static stage descriptions, in execution order.
    pub fn stage_meta(&self) -> &[StageMeta] {
        &self.meta
    }

    /// Runs `items` for `timesteps` and returns per-item spike counts
    /// `[n, classes]`, invoking `observer(stage_index, name,
    /// activations, n)` after every stage of every timestep (the
    /// activation slice is `[n, item_len]`).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::Calibration`]-style input errors for
    /// wrong item lengths or non-finite values; inference itself
    /// cannot fail.
    pub fn infer_batch_observed(
        &mut self,
        items: &[Vec<f32>],
        timesteps: usize,
        mut observer: impl FnMut(usize, &str, &[u8], usize),
    ) -> Result<Vec<u32>, QuantError> {
        let n = items.len();
        let item_len = self.input_len();
        if timesteps == 0 {
            return Err(QuantError::Calibration("zero timesteps".into()));
        }
        self.quantize_input(items, item_len)?;
        // Reset batch state: membranes to zero, previous spikes (the
        // stage output buffers) to zero.
        for (stage, (out, meta)) in
            self.stages.iter_mut().zip(self.outs.iter_mut().zip(self.meta.iter()))
        {
            out.clear();
            out.resize(n * meta.item_len, 0);
            match stage {
                RunStage::Conv { mem, acc, .. } | RunStage::Dense { mem, acc, .. } => {
                    mem.clear();
                    mem.resize(n * meta.item_len, 0);
                    acc.clear();
                    acc.resize(n * meta.item_len, 0);
                }
                _ => {}
            }
        }
        let mut counts = vec![0u32; n * self.classes];
        let last = self.stages.len() - 1;
        for _t in 0..timesteps {
            for i in 0..self.stages.len() {
                let (done, rest) = self.outs.split_at_mut(i);
                let x: &[u8] = if i == 0 { &self.qinput } else { &done[i - 1] };
                let out = &mut rest[0];
                match &mut self.stages[i] {
                    RunStage::Conv { geom, w, wt, bias_q, rescale, lif, scratch, acc, mem } => {
                        qconv2d_forward_routed(geom, x, n, w, wt, acc, scratch);
                        let plane = geom.out_h() * geom.out_w();
                        lif_pass(acc, mem, out, bias_q, rescale, lif, plane);
                    }
                    RunStage::Dense { wt, in_len, out_n, bias_q, rescale, lif, acc, mem } => {
                        qlinear_into(x, wt, acc, n, *in_len, *out_n);
                        lif_pass(acc, mem, out, bias_q, rescale, lif, 1);
                    }
                    RunStage::Pool { geom } => pool_pass(geom, x, out, n),
                    RunStage::Flatten => out.copy_from_slice(x),
                }
                observer(i, &self.meta[i].name, out, n);
                if i == last {
                    for (c, &s) in counts.iter_mut().zip(out.iter()) {
                        *c += s as u32;
                    }
                }
            }
        }
        Ok(counts)
    }

    /// [`QuantNetwork::infer_batch_observed`] without the observer.
    ///
    /// # Errors
    ///
    /// As [`QuantNetwork::infer_batch_observed`].
    pub fn infer_batch(
        &mut self,
        items: &[Vec<f32>],
        timesteps: usize,
    ) -> Result<Vec<u32>, QuantError> {
        self.infer_batch_observed(items, timesteps, |_, _, _, _| {})
    }

    /// Classification accuracy over a labeled set, batched
    /// internally.
    ///
    /// # Errors
    ///
    /// Input errors as [`QuantNetwork::infer_batch_observed`], plus a
    /// labels/items length mismatch.
    pub fn evaluate_accuracy(
        &mut self,
        items: &[Vec<f32>],
        labels: &[usize],
        timesteps: usize,
    ) -> Result<f64, QuantError> {
        if items.len() != labels.len() {
            return Err(QuantError::Calibration(format!(
                "{} items but {} labels",
                items.len(),
                labels.len()
            )));
        }
        if items.is_empty() {
            return Err(QuantError::Calibration("empty evaluation set".into()));
        }
        let classes = self.classes;
        let mut correct = 0usize;
        for (chunk, lchunk) in items.chunks(32).zip(labels.chunks(32)) {
            let counts = self.infer_batch(chunk, timesteps)?;
            for (row, &label) in lchunk.iter().enumerate() {
                if classify_counts(&counts[row * classes..(row + 1) * classes]) == label {
                    correct += 1;
                }
            }
        }
        Ok(correct as f64 / items.len() as f64)
    }

    /// Quantizes the f32 input batch to `[0, input_levels]` u8 with
    /// the calibrated step (values clamp into `[0, input_max]` — the
    /// documented input saturation semantics).
    fn quantize_input(&mut self, items: &[Vec<f32>], item_len: usize) -> Result<(), QuantError> {
        self.qinput.clear();
        self.qinput.reserve(items.len() * item_len);
        let inv_step = self.input_levels as f32 / self.input_max;
        for (i, item) in items.iter().enumerate() {
            if item.len() != item_len {
                return Err(QuantError::Calibration(format!(
                    "item {i} has {} values, the network expects {item_len}",
                    item.len()
                )));
            }
            for &v in item {
                if !v.is_finite() {
                    return Err(QuantError::Calibration(format!(
                        "item {i} contains non-finite value {v}"
                    )));
                }
                let q = (v * inv_step).round();
                self.qinput.push(q.clamp(0.0, self.input_levels as f32) as u8);
            }
        }
        Ok(())
    }
}

/// Argmax with lowest-index tie-breaking (matches the f32 engine's
/// `Tensor::argmax_row` semantics).
pub fn classify_counts(counts: &[u32]) -> usize {
    let mut best = 0usize;
    for (i, &c) in counts.iter().enumerate() {
        if c > counts[best] {
            best = i;
        }
    }
    best
}

/// Rescale + bias + fixed-point LIF over one stage's accumulators.
///
/// Elementwise (each neuron touches only its own accumulator,
/// membrane, and previous spike), so parallel chunking is bit-exact
/// with the serial loop. `out` enters holding the previous timestep's
/// spikes and leaves holding this timestep's.
fn lif_pass(
    acc: &[i32],
    mem: &mut [i32],
    out: &mut [u8],
    bias_q: &[i32],
    rescale: &[Rescale],
    lif: &FixedLif,
    plane: usize,
) {
    let item_len = bias_q.len() * plane;
    par::for_each_block2(mem, 1, out, 1, par::min_granules_for(12), |i0, mblock, oblock| {
        for (j, (m, s)) in mblock.iter_mut().zip(oblock.iter_mut()).enumerate() {
            let idx = i0 + j;
            let oc = (idx % item_len) / plane;
            let current = rescale[oc].apply(acc[idx]) as i64 + bias_q[oc] as i64;
            let (m_new, spike) = lif.step(*m, *s != 0, current);
            *m = m_new;
            *s = spike as u8;
        }
    });
}

/// Integer max pooling over `[n, C, H, W]` u8 activations: an OR for
/// binary spikes, an exact max for level-coded values — identical to
/// f32 max pooling in either case.
fn pool_pass(g: &Pool2dGeometry, x: &[u8], out: &mut [u8], n: usize) {
    let (oh, ow) = (g.out_h(), g.out_w());
    let item_in = g.channels * g.in_h * g.in_w;
    let item_out = g.channels * oh * ow;
    for item in 0..n {
        let xi = &x[item * item_in..(item + 1) * item_in];
        let oi = &mut out[item * item_out..(item + 1) * item_out];
        for c in 0..g.channels {
            let chan = &xi[c * g.in_h * g.in_w..(c + 1) * g.in_h * g.in_w];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = 0u8;
                    for ky in 0..g.kernel {
                        let iy = oy * g.stride + ky;
                        for kx in 0..g.kernel {
                            let v = chan[iy * g.in_w + ox * g.stride + kx];
                            best = best.max(v);
                        }
                    }
                    oi[(c * oh + oy) * ow + ox] = best;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::calibrate;
    use crate::snapshot::quantize_snapshot;
    use snn_core::{LifConfig, NetworkSnapshot, SpikingNetwork};
    use snn_tensor::dispatch::with_event_density_threshold;

    fn build() -> (QuantNetwork, Vec<Vec<f32>>) {
        let net = SpikingNetwork::builder(snn_tensor::Shape::d3(1, 8, 8), 5)
            .conv(3, 3, 1, 1, LifConfig::paper_default())
            .unwrap()
            .maxpool(2)
            .unwrap()
            .flatten()
            .unwrap()
            .dense(4, LifConfig::paper_default())
            .unwrap()
            .build()
            .expect("network");
        let snap = NetworkSnapshot::from_network(&net);
        let items: Vec<Vec<f32>> = (0..6)
            .map(|i| (0..64).map(|j| ((i * 64 + j) % 9) as f32 / 8.0).collect())
            .collect();
        let cal = calibrate(&snap, &items, 4).unwrap();
        let q = quantize_snapshot(&snap, &cal, 8).unwrap();
        (QuantNetwork::from_snapshot(&q).unwrap(), items)
    }

    #[test]
    fn routes_agree_bitwise() {
        let (mut net, items) = build();
        let dense = with_event_density_threshold(-1.0, || {
            net.infer_batch(&items, 4).unwrap()
        });
        let event = with_event_density_threshold(1.0, || {
            net.infer_batch(&items, 4).unwrap()
        });
        assert_eq!(dense, event, "dense and event routes must be bit-identical");
    }

    #[test]
    fn thread_counts_agree_bitwise() {
        let (mut net, items) = build();
        let one = par::with_num_threads(1, || net.infer_batch(&items, 4).unwrap());
        let four = par::with_num_threads(4, || net.infer_batch(&items, 4).unwrap());
        assert_eq!(one, four, "outputs must not depend on the worker count");
    }

    #[test]
    fn batch_equals_serial() {
        let (mut net, items) = build();
        let batched = net.infer_batch(&items, 3).unwrap();
        for (i, item) in items.iter().enumerate() {
            let single = net.infer_batch(std::slice::from_ref(item), 3).unwrap();
            assert_eq!(&batched[i * 4..(i + 1) * 4], &single[..], "item {i}");
        }
    }

    #[test]
    fn observer_sees_every_stage_and_spikes_stay_binary() {
        let (mut net, items) = build();
        let mut seen = Vec::new();
        net.infer_batch_observed(&items[..2], 2, |i, name, acts, n| {
            seen.push((i, name.to_string()));
            assert_eq!(acts.len() % n, 0);
            assert!(acts.iter().all(|&v| v <= 1), "post-conv activations must be binary spikes");
        })
        .unwrap();
        assert_eq!(seen.len(), 2 * net.stage_meta().len());
    }

    #[test]
    fn input_errors_are_typed() {
        let (mut net, _) = build();
        let short = vec![vec![0.0f32; 3]];
        assert!(matches!(net.infer_batch(&short, 2), Err(QuantError::Calibration(_))));
        let nan = vec![vec![f32::NAN; 64]];
        assert!(matches!(net.infer_batch(&nan, 2), Err(QuantError::Calibration(_))));
        let ok = vec![vec![0.4f32; 64]];
        assert!(matches!(net.infer_batch(&ok, 0), Err(QuantError::Calibration(_))));
    }

    #[test]
    fn classify_ties_break_low() {
        assert_eq!(classify_counts(&[3, 5, 5, 1]), 1);
        assert_eq!(classify_counts(&[0, 0, 0]), 0);
    }
}
