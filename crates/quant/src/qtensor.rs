//! Per-output-channel symmetric integer tensors.
//!
//! Weights quantize to `i8` with one positive scale per output
//! channel; values are clamped to `[-QMAX, +QMAX]` (never
//! `i8::MIN`), so negation and absolute value can never overflow and
//! the representable range is symmetric — the i8::MIN asymmetry is
//! excluded by construction, not by runtime checks. Zero points are
//! carried explicitly in the artifact (all zero under the symmetric
//! scheme) so the format does not need to change if an asymmetric
//! activation scheme is added later.

use serde::{Deserialize, Serialize};

use crate::error::QuantError;

/// Largest magnitude a quantized weight may take. `i8` spans
/// `[-128, 127]`; restricting to `±127` keeps the code symmetric.
pub const QMAX_I8: i32 = 127;

/// Saturating cast to the symmetric i8 range `[-127, 127]`.
///
/// Deliberately never produces `i8::MIN`: the quantized datapath
/// assumes `-q` is always representable.
pub fn saturate_i8(v: i32) -> i8 {
    v.clamp(-QMAX_I8, QMAX_I8) as i8
}

/// Saturating cast from a 64-bit intermediate to `i32`.
///
/// This is the *only* place wide accumulator values narrow: products
/// and sums are computed exactly (or with defined wrapping) in wide
/// integers, and saturation happens once, at the final cast.
pub fn saturate_i32(v: i64) -> i32 {
    v.clamp(i32::MIN as i64, i32::MAX as i64) as i32
}

/// An integer tensor with per-output-channel quantization parameters.
///
/// Layout is row-major `[channels, per_channel]`: channel `c` owns
/// `values[c*per_channel .. (c+1)*per_channel]`, quantized as
/// `real ≈ values[i] as f32 * scales[c]` (symmetric scheme, so
/// `zero_points[c] == 0` for every channel today).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTensor {
    /// Number of output channels (rows); one scale per channel.
    pub channels: usize,
    /// Values per channel (row length).
    pub per_channel: usize,
    /// Quantized values, `channels * per_channel` of them, each in
    /// `[-127, 127]`.
    pub values: Vec<i8>,
    /// Positive, finite scale per channel.
    pub scales: Vec<f32>,
    /// Zero point per channel; always 0 under the symmetric scheme,
    /// stored explicitly so readers can reject asymmetric artifacts
    /// from a future writer instead of mis-decoding them.
    pub zero_points: Vec<i8>,
}

impl QuantizedTensor {
    /// Quantizes an f32 matrix `[channels, per_channel]` with one
    /// symmetric scale per channel.
    ///
    /// `bits` selects the effective weight range
    /// `±(2^(bits-1) - 1)`; values are still *stored* as `i8`, so
    /// `bits` may be at most 8. An all-zero channel gets scale 1.0
    /// (any positive scale represents it exactly).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::Unsupported`] for `bits` outside
    /// `2..=8`, [`QuantError::Stage`]-shaped messages via
    /// [`QuantError::Structure`] for length mismatches, and
    /// [`QuantError::Structure`] for non-finite inputs.
    pub fn quantize(
        values: &[f32],
        channels: usize,
        per_channel: usize,
        bits: u32,
    ) -> Result<Self, QuantError> {
        let qmax = weight_qmax(bits)?;
        if values.len() != channels * per_channel {
            return Err(QuantError::Structure(format!(
                "quantize: {} values cannot form [{channels}, {per_channel}]",
                values.len()
            )));
        }
        let mut out = Vec::with_capacity(values.len());
        let mut scales = Vec::with_capacity(channels);
        for c in 0..channels {
            let row = &values[c * per_channel..(c + 1) * per_channel];
            let mut max_abs = 0f32;
            for &v in row {
                if !v.is_finite() {
                    return Err(QuantError::Structure(format!(
                        "quantize: non-finite weight {v} in channel {c}"
                    )));
                }
                max_abs = max_abs.max(v.abs());
            }
            let scale = if max_abs > 0.0 { max_abs / qmax as f32 } else { 1.0 };
            for &v in row {
                // Round-to-nearest then saturate; the clamp also
                // covers rounding edge cases like max_abs/scale
                // landing on qmax + 0.5.
                let q = (v / scale).round() as i32;
                out.push(q.clamp(-qmax, qmax) as i8);
            }
            scales.push(scale);
        }
        Ok(QuantizedTensor {
            channels,
            per_channel,
            values: out,
            scales,
            zero_points: vec![0i8; channels],
        })
    }

    /// Reconstructs the f32 values (`values[i] * scales[c]`).
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.values.len());
        for c in 0..self.channels {
            let s = self.scales[c];
            for &q in self.channel(c) {
                out.push(q as f32 * s);
            }
        }
        out
    }

    /// The quantized row for output channel `c`.
    pub fn channel(&self, c: usize) -> &[i8] {
        &self.values[c * self.per_channel..(c + 1) * self.per_channel]
    }

    /// Structural validation for untrusted (deserialized) tensors.
    ///
    /// # Errors
    ///
    /// Returns a message naming the defect: length mismatches,
    /// non-positive/non-finite scales, values outside `±127`, or a
    /// nonzero zero point (asymmetric artifacts are not supported).
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 || self.per_channel == 0 {
            return Err(format!(
                "empty quantized tensor [{}, {}]",
                self.channels, self.per_channel
            ));
        }
        let expect = self
            .channels
            .checked_mul(self.per_channel)
            .ok_or_else(|| "tensor size overflows usize".to_string())?;
        if self.values.len() != expect {
            return Err(format!("{} values for [{}, {}]", self.values.len(), self.channels, self.per_channel));
        }
        if self.scales.len() != self.channels {
            return Err(format!("{} scales for {} channels", self.scales.len(), self.channels));
        }
        if self.zero_points.len() != self.channels {
            return Err(format!(
                "{} zero points for {} channels",
                self.zero_points.len(),
                self.channels
            ));
        }
        for (c, &s) in self.scales.iter().enumerate() {
            if !s.is_finite() || s <= 0.0 {
                return Err(format!("channel {c} scale {s} is not a positive finite number"));
            }
        }
        if let Some(&z) = self.zero_points.iter().find(|&&z| z != 0) {
            return Err(format!("nonzero zero point {z}: only symmetric artifacts are supported"));
        }
        if self.values.iter().any(|&q| (q as i32).abs() > QMAX_I8) {
            return Err("quantized value outside the symmetric range [-127, 127]".into());
        }
        Ok(())
    }
}

/// The largest quantized magnitude for a weight bit width.
///
/// # Errors
///
/// Returns [`QuantError::Unsupported`] outside `2..=8` (1-bit has no
/// nonzero symmetric range; more than 8 does not fit the `i8`
/// container).
pub fn weight_qmax(bits: u32) -> Result<i32, QuantError> {
    if !(2..=8).contains(&bits) {
        return Err(QuantError::Unsupported(format!(
            "bit width {bits} outside the supported range 2..=8"
        )));
    }
    Ok((1i32 << (bits - 1)) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_casts_are_symmetric() {
        assert_eq!(saturate_i8(i32::MIN), -127);
        assert_eq!(saturate_i8(i32::MAX), 127);
        assert_eq!(saturate_i8(-128), -127, "i8::MIN is never produced");
        assert_eq!(saturate_i8(-127), -127);
        assert_eq!(saturate_i8(42), 42);
        assert_eq!(saturate_i32(i64::MIN), i32::MIN);
        assert_eq!(saturate_i32(i64::MAX), i32::MAX);
        assert_eq!(saturate_i32(-5), -5);
    }

    #[test]
    fn quantize_roundtrip_bound() {
        let vals: Vec<f32> = (0..12).map(|i| (i as f32 - 6.0) * 0.37).collect();
        let q = QuantizedTensor::quantize(&vals, 3, 4, 8).unwrap();
        q.validate().unwrap();
        let back = q.dequantize();
        for c in 0..3 {
            let half_step = q.scales[c] * 0.5;
            for j in 0..4 {
                let i = c * 4 + j;
                assert!(
                    (vals[i] - back[i]).abs() <= half_step + 1e-6,
                    "channel {c}: {} vs {} exceeds half a step {half_step}",
                    vals[i],
                    back[i]
                );
            }
        }
    }

    #[test]
    fn all_zero_channel_gets_unit_scale() {
        let q = QuantizedTensor::quantize(&[0.0; 8], 2, 4, 8).unwrap();
        assert_eq!(q.scales, vec![1.0, 1.0]);
        assert!(q.values.iter().all(|&v| v == 0));
    }

    #[test]
    fn bits_gate_is_typed() {
        assert!(matches!(weight_qmax(1), Err(QuantError::Unsupported(_))));
        assert!(matches!(weight_qmax(9), Err(QuantError::Unsupported(_))));
        assert_eq!(weight_qmax(8).unwrap(), 127);
        assert_eq!(weight_qmax(4).unwrap(), 7);
        let vals = [1.0f32, -1.0, 0.5, 0.25];
        let q4 = QuantizedTensor::quantize(&vals, 1, 4, 4).unwrap();
        assert!(q4.values.iter().all(|&v| (v as i32).abs() <= 7));
    }

    #[test]
    fn validate_rejects_asymmetric_and_mismatched() {
        let mut q = QuantizedTensor::quantize(&[1.0, -2.0], 1, 2, 8).unwrap();
        q.zero_points[0] = 3;
        assert!(q.validate().unwrap_err().contains("zero point"));
        let mut q = QuantizedTensor::quantize(&[1.0, -2.0], 1, 2, 8).unwrap();
        q.scales[0] = f32::NAN;
        assert!(q.validate().is_err());
        let mut q = QuantizedTensor::quantize(&[1.0, -2.0], 1, 2, 8).unwrap();
        q.values.pop();
        assert!(q.validate().is_err());
    }
}
