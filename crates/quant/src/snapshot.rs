//! The versioned quantized-artifact format and the post-training
//! quantizer that produces it.
//!
//! A [`QuantizedSnapshot`] is the integer sibling of
//! [`snn_core::NetworkSnapshot`]: same layer sequence, but weights as
//! per-output-channel i8, biases and thresholds in the stage's
//! membrane Q-format, and per-channel [`Rescale`] factors folding
//! `s_w[oc] · s_x · 2^F` into one integer multiply + shift.
//!
//! The top level deliberately does **not** share field names with the
//! f32 snapshot: stages live under `stages` (not `layers`) next to a
//! `format` tag, so a pre-quantization reader decoding the JSON as
//! `NetworkSnapshot` fails with a typed missing-field error — old
//! readers reject new artifacts cleanly rather than misreading them.

use std::path::Path;

use serde::{Deserialize, Serialize};
use snn_core::{LayerSnapshot, NetworkSnapshot};
use snn_tensor::conv::Conv2dGeometry;
use snn_tensor::pool::Pool2dGeometry;

use crate::calibrate::Calibration;
use crate::error::QuantError;
use crate::fixed::{FixedLif, Rescale};
use crate::qtensor::{weight_qmax, QuantizedTensor};

/// Format tag every quantized artifact carries; readers reject
/// anything else.
pub const QUANT_FORMAT: &str = "snn-quant/1";

/// Ceiling on membrane magnitude in Q-format, `2^30`: one bit of
/// slack under `i32` so a single step's sum cannot saturate when the
/// calibration bound holds.
const Q_MAGNITUDE_BUDGET: f64 = (1u64 << 30) as f64;

/// Multiplier applied to the calibrated peak current when sizing a
/// stage's Q-format — room for inputs somewhat outside the
/// calibration split before saturation engages.
const HEADROOM: f64 = 8.0;

/// Membrane fractional bits are clamped to this range; below the
/// floor the datapath would quantize currents too coarsely to track
/// the f32 reference, and quantization fails with a typed overflow
/// error instead.
const FRAC_BITS_MIN: u32 = 4;
/// Upper clamp on membrane fractional bits (resolution beyond Q24 is
/// far below the 8-bit weight error).
const FRAC_BITS_MAX: u32 = 24;

/// One quantized stage; mirrors [`LayerSnapshot`] variants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QuantStage {
    /// Quantized spiking convolution.
    Conv {
        /// Layer name (carried over from the f32 snapshot).
        name: String,
        /// Convolution geometry, identical to the f32 layer.
        geom: Conv2dGeometry,
        /// Filter bank, `[out_channels, in_channels·k²]`.
        weight: QuantizedTensor,
        /// Per-filter bias in the stage's membrane Q-format.
        bias_q: Vec<i32>,
        /// Per-filter accumulator→Q-format rescale.
        rescale: Vec<Rescale>,
        /// Fixed-point neuron parameters.
        lif: FixedLif,
    },
    /// Quantized spiking fully-connected layer.
    Dense {
        /// Layer name.
        name: String,
        /// Weights, `[out, in]`.
        weight: QuantizedTensor,
        /// Per-neuron bias in the stage's membrane Q-format.
        bias_q: Vec<i32>,
        /// Per-neuron accumulator→Q-format rescale.
        rescale: Vec<Rescale>,
        /// Fixed-point neuron parameters.
        lif: FixedLif,
    },
    /// Max pooling; on binary spikes this is an OR over the window
    /// and on quantized integers an exact max — no parameters.
    Pool {
        /// Layer name.
        name: String,
        /// Pooling geometry.
        geom: Pool2dGeometry,
    },
    /// Shape adapter.
    Flatten {
        /// Layer name.
        name: String,
        /// Flattened item length.
        len: usize,
    },
}

impl QuantStage {
    /// The stage's display name.
    pub fn name(&self) -> &str {
        match self {
            QuantStage::Conv { name, .. }
            | QuantStage::Dense { name, .. }
            | QuantStage::Pool { name, .. }
            | QuantStage::Flatten { name, .. } => name,
        }
    }

    /// Whether the stage holds neurons (conv/dense).
    pub fn is_spiking(&self) -> bool {
        matches!(self, QuantStage::Conv { .. } | QuantStage::Dense { .. })
    }
}

/// A complete quantized network artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedSnapshot {
    /// Format tag; must equal [`QUANT_FORMAT`].
    pub format: String,
    /// Weight bit width this artifact was quantized at (2..=8).
    pub bits: u32,
    /// Input item dimensions (e.g. `[1, 8, 8]`).
    pub input_item_dims: Vec<usize>,
    /// Output class count.
    pub classes: usize,
    /// Calibrated input ceiling: inputs clamp to `[0, input_max]`.
    pub input_max: f32,
    /// Input quantization levels; the input step is
    /// `input_max / input_levels`.
    pub input_levels: i32,
    /// The quantized layer sequence.
    pub stages: Vec<QuantStage>,
}

impl QuantizedSnapshot {
    /// Number of quantized weight parameters (excludes biases).
    pub fn weight_params(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| match s {
                QuantStage::Conv { weight, .. } | QuantStage::Dense { weight, .. } => {
                    weight.values.len() as u64
                }
                _ => 0,
            })
            .sum()
    }

    /// Total parameter count (weights + biases), comparable to the
    /// f32 network's `param_count`.
    pub fn param_count(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| match s {
                QuantStage::Conv { weight, bias_q, .. }
                | QuantStage::Dense { weight, bias_q, .. } => {
                    weight.values.len() as u64 + bias_q.len() as u64
                }
                _ => 0,
            })
            .sum()
    }

    /// Membrane fractional bits per spiking stage, in layer order
    /// (summarized into registry metadata).
    pub fn frac_bits(&self) -> Vec<u32> {
        self.stages
            .iter()
            .filter_map(|s| match s {
                QuantStage::Conv { lif, .. } | QuantStage::Dense { lif, .. } => {
                    Some(lif.frac_bits)
                }
                _ => None,
            })
            .collect()
    }

    /// Full structural validation of an untrusted artifact: format
    /// tag, per-stage internal consistency, and shape composition
    /// from `input_item_dims` through every stage to `classes`.
    ///
    /// # Errors
    ///
    /// Returns the typed [`QuantError`] naming the first defect.
    pub fn validate(&self) -> Result<(), QuantError> {
        if self.format != QUANT_FORMAT {
            return Err(QuantError::Malformed(format!(
                "format tag {:?} (this reader supports {QUANT_FORMAT:?})",
                self.format
            )));
        }
        let input_qmax = weight_qmax(self.bits)?; // also gates bits range
        let _ = input_qmax;
        if !(1..=255).contains(&self.input_levels) {
            return Err(QuantError::Malformed(format!(
                "input_levels {} outside 1..=255",
                self.input_levels
            )));
        }
        if !self.input_max.is_finite() || self.input_max <= 0.0 {
            return Err(QuantError::Malformed(format!(
                "input_max {} must be positive and finite",
                self.input_max
            )));
        }
        if self.classes == 0 {
            return Err(QuantError::Structure("zero classes".into()));
        }
        if self.input_item_dims.is_empty()
            || self.input_item_dims.len() > 4
            || self.input_item_dims.contains(&0)
        {
            return Err(QuantError::Structure(format!(
                "input_item_dims {:?} must be rank 1..=4 with no zero axis",
                self.input_item_dims
            )));
        }
        if self.stages.is_empty() {
            return Err(QuantError::Structure("no stages".into()));
        }
        let mut dims = self.input_item_dims.clone();
        for (idx, stage) in self.stages.iter().enumerate() {
            let tag = |msg: String| QuantError::Stage {
                stage: format!("{idx} ({})", stage.name()),
                message: msg,
            };
            match stage {
                QuantStage::Conv { geom, weight, bias_q, rescale, lif, .. } => {
                    let g = Conv2dGeometry::new(
                        geom.in_channels,
                        geom.out_channels,
                        geom.kernel,
                        geom.stride,
                        geom.padding,
                        geom.in_h,
                        geom.in_w,
                    )
                    .map_err(|e| tag(format!("invalid geometry: {e}")))?;
                    if dims != [g.in_channels, g.in_h, g.in_w] {
                        return Err(tag(format!(
                            "expects input [{}, {}, {}] but receives {:?}",
                            g.in_channels, g.in_h, g.in_w, dims
                        )));
                    }
                    weight.validate().map_err(&tag)?;
                    if weight.channels != g.out_channels || weight.per_channel != g.col_rows() {
                        return Err(tag(format!(
                            "weight [{}, {}] does not match geometry [{}, {}]",
                            weight.channels,
                            weight.per_channel,
                            g.out_channels,
                            g.col_rows()
                        )));
                    }
                    check_stage_params(g.out_channels, bias_q, rescale, lif).map_err(&tag)?;
                    dims = vec![g.out_channels, g.out_h(), g.out_w()];
                }
                QuantStage::Dense { weight, bias_q, rescale, lif, .. } => {
                    weight.validate().map_err(&tag)?;
                    let in_len: usize = dims.iter().product();
                    if weight.per_channel != in_len {
                        return Err(tag(format!(
                            "weight expects {} inputs but receives {:?} ({} values)",
                            weight.per_channel, dims, in_len
                        )));
                    }
                    check_stage_params(weight.channels, bias_q, rescale, lif).map_err(&tag)?;
                    dims = vec![weight.channels];
                }
                QuantStage::Pool { geom, .. } => {
                    let g = Pool2dGeometry::new(
                        geom.channels,
                        geom.kernel,
                        geom.stride,
                        geom.in_h,
                        geom.in_w,
                    )
                    .map_err(|e| tag(format!("invalid geometry: {e}")))?;
                    if dims != [g.channels, g.in_h, g.in_w] {
                        return Err(tag(format!(
                            "expects input [{}, {}, {}] but receives {:?}",
                            g.channels, g.in_h, g.in_w, dims
                        )));
                    }
                    dims = vec![g.channels, g.out_h(), g.out_w()];
                }
                QuantStage::Flatten { len, .. } => {
                    let have: usize = dims.iter().product();
                    if *len != have {
                        return Err(tag(format!("declares {len} values but receives {have}")));
                    }
                    dims = vec![*len];
                }
            }
        }
        if dims != [self.classes] {
            return Err(QuantError::Structure(format!(
                "final stage emits {dims:?}, expected [{}] classes",
                self.classes
            )));
        }
        Ok(())
    }

    /// Serializes to JSON and writes atomically (tmp + rename via
    /// `snn-store`).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::Io`] on filesystem failure.
    pub fn save_json(&self, path: impl AsRef<Path>) -> Result<(), QuantError> {
        let path = path.as_ref();
        let json = serde_json::to_string(self)
            .map_err(|e| QuantError::Malformed(format!("serializing artifact: {e}")))?;
        snn_store::write_bytes_atomic(path, json.as_bytes()).map_err(|e| QuantError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    }

    /// Reads and fully validates an artifact file.
    ///
    /// # Errors
    ///
    /// [`QuantError::Io`] on read failure, otherwise as
    /// [`QuantizedSnapshot::from_json`].
    pub fn load_json(path: impl AsRef<Path>) -> Result<Self, QuantError> {
        let path = path.as_ref();
        let json = std::fs::read_to_string(path).map_err(|e| QuantError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Self::from_json(&json)
    }

    /// Decodes and fully validates an artifact from JSON text.
    ///
    /// # Errors
    ///
    /// [`QuantError::Malformed`] for undecodable text (including f32
    /// snapshots, which lack the `format`/`stages` fields), otherwise
    /// whatever [`QuantizedSnapshot::validate`] finds.
    pub fn from_json(json: &str) -> Result<Self, QuantError> {
        let snap: QuantizedSnapshot =
            serde_json::from_str(json).map_err(|e| QuantError::Malformed(e.to_string()))?;
        snap.validate()?;
        Ok(snap)
    }
}

/// Shared per-stage parameter checks (bias/rescale/lif lengths and
/// ranges) for conv and dense stages.
fn check_stage_params(
    out: usize,
    bias_q: &[i32],
    rescale: &[Rescale],
    lif: &FixedLif,
) -> Result<(), String> {
    if bias_q.len() != out {
        return Err(format!("{} biases for {out} output channels", bias_q.len()));
    }
    if rescale.len() != out {
        return Err(format!("{} rescales for {out} output channels", rescale.len()));
    }
    for (c, r) in rescale.iter().enumerate() {
        r.validate().map_err(|e| format!("rescale channel {c}: {e}"))?;
    }
    lif.validate().map_err(|e| format!("lif: {e}"))?;
    Ok(())
}

/// Chooses membrane fractional bits for a stage from its calibrated
/// peak current: the largest `F` with
/// `(current_max + theta) · HEADROOM · 2^F ≤ 2^30`, clamped to
/// `[FRAC_BITS_MIN, FRAC_BITS_MAX]`.
fn choose_frac_bits(stage: &str, current_max: f32, theta: f32) -> Result<u32, QuantError> {
    let bound = ((current_max as f64 + theta as f64) * HEADROOM).max(1.0);
    let f = (Q_MAGNITUDE_BUDGET / bound).log2().floor();
    if f < FRAC_BITS_MIN as f64 {
        return Err(QuantError::Overflow {
            stage: stage.to_string(),
            message: format!(
                "calibrated current range {current_max} (theta {theta}) needs more than \
                 {} integer bits; no usable Q-format remains",
                30 - FRAC_BITS_MIN
            ),
        });
    }
    Ok((f as u32).min(FRAC_BITS_MAX))
}

/// Quantizes a bias vector into Q`frac_bits`.
fn quantize_bias(bias: &[f32], frac_bits: u32) -> Vec<i32> {
    let scale = (1u64 << frac_bits) as f64;
    bias.iter()
        .map(|&b| crate::qtensor::saturate_i32((b as f64 * scale).round() as i64))
        .collect()
}

/// Post-training quantization: turns a validated f32 snapshot plus a
/// [`Calibration`] into a [`QuantizedSnapshot`].
///
/// Scheme (documented in DESIGN.md §13):
///
/// * inputs quantize once per request to `[0, input_levels]` with
///   step `input_max / input_levels`; later stages consume binary
///   spikes (scale exactly 1);
/// * weights are per-output-channel symmetric i8
///   (`scale = max|w| / qmax`);
/// * each spiking stage's accumulator rescales to its membrane
///   Q-format through one per-channel integer multiply + shift
///   encoding `s_w[oc] · s_x · 2^F`;
/// * `F` comes from the calibrated peak current with [`HEADROOM`].
///
/// # Errors
///
/// Structure errors from snapshot validation, [`QuantError::Overflow`]
/// when a stage's range fits no Q-format or its accumulator could
/// exceed `i32`, and [`QuantError::Calibration`] if the calibration
/// does not cover this snapshot's layers.
pub fn quantize_snapshot(
    snap: &NetworkSnapshot,
    calib: &Calibration,
    bits: u32,
) -> Result<QuantizedSnapshot, QuantError> {
    snap.validate().map_err(|e| QuantError::Structure(format!("source snapshot: {e}")))?;
    let qmax = weight_qmax(bits)?;
    if calib.stage_current_max.len() != snap.layers.len() {
        return Err(QuantError::Calibration(format!(
            "calibration covers {} layers, snapshot has {}",
            calib.stage_current_max.len(),
            snap.layers.len()
        )));
    }
    let input_levels = (1i32 << bits) - 1;
    let input_max = calib.input_max.max(1e-6);
    // Activation scale entering the next stage: the input step until
    // the first spiking stage consumes it, exactly 1 (binary spikes)
    // afterwards. Pool and flatten preserve values, hence scale.
    let mut act_scale = input_max as f64 / input_levels as f64;
    let mut act_qmax = input_levels as i64;
    let mut stages = Vec::with_capacity(snap.layers.len());
    for (idx, layer) in snap.layers.iter().enumerate() {
        match layer {
            LayerSnapshot::Conv { name, geom, lif, weight, bias } => {
                let q = quantize_spiking(
                    &format!("{idx} ({name})"),
                    weight.as_slice(),
                    geom.out_channels,
                    geom.col_rows(),
                    bias.as_slice(),
                    lif,
                    calib.stage_current_max[idx],
                    bits,
                    qmax,
                    act_scale,
                    act_qmax,
                )?;
                stages.push(QuantStage::Conv {
                    name: name.clone(),
                    geom: *geom,
                    weight: q.weight,
                    bias_q: q.bias_q,
                    rescale: q.rescale,
                    lif: q.lif,
                });
                act_scale = 1.0;
                act_qmax = 1;
            }
            LayerSnapshot::Dense { name, lif, weight, bias } => {
                let out = weight.shape().dim(0);
                let in_len = weight.shape().dim(1);
                let q = quantize_spiking(
                    &format!("{idx} ({name})"),
                    weight.as_slice(),
                    out,
                    in_len,
                    bias.as_slice(),
                    lif,
                    calib.stage_current_max[idx],
                    bits,
                    qmax,
                    act_scale,
                    act_qmax,
                )?;
                stages.push(QuantStage::Dense {
                    name: name.clone(),
                    weight: q.weight,
                    bias_q: q.bias_q,
                    rescale: q.rescale,
                    lif: q.lif,
                });
                act_scale = 1.0;
                act_qmax = 1;
            }
            LayerSnapshot::Pool { name, geom } => {
                stages.push(QuantStage::Pool { name: name.clone(), geom: *geom });
            }
            LayerSnapshot::Flatten { name, input_item_dims } => {
                stages.push(QuantStage::Flatten {
                    name: name.clone(),
                    len: input_item_dims.iter().product(),
                });
            }
        }
    }
    let out = QuantizedSnapshot {
        format: QUANT_FORMAT.to_string(),
        bits,
        input_item_dims: snap.input_item_dims.clone(),
        classes: snap.classes,
        input_max,
        input_levels,
        stages,
    };
    out.validate()?;
    Ok(out)
}

/// Quantized parameters of one spiking stage.
struct SpikingQuant {
    weight: QuantizedTensor,
    bias_q: Vec<i32>,
    rescale: Vec<Rescale>,
    lif: FixedLif,
}

#[allow(clippy::too_many_arguments)]
fn quantize_spiking(
    stage: &str,
    weight: &[f32],
    out: usize,
    per_channel: usize,
    bias: &[f32],
    lif: &snn_core::LifConfig,
    current_max: f32,
    bits: u32,
    qmax: i32,
    act_scale: f64,
    act_qmax: i64,
) -> Result<SpikingQuant, QuantError> {
    // Worst-case raw accumulator: every tap at full magnitude. The
    // event and dense kernels sum in wrapping i32 for determinism, so
    // the artifact must guarantee the exact sum fits.
    let acc_bound = per_channel as i64 * qmax as i64 * act_qmax;
    if acc_bound > i32::MAX as i64 {
        return Err(QuantError::Overflow {
            stage: stage.to_string(),
            message: format!(
                "{per_channel} taps x qmax {qmax} x input magnitude {act_qmax} \
                 may exceed the i32 accumulator"
            ),
        });
    }
    let qw = QuantizedTensor::quantize(weight, out, per_channel, bits)
        .map_err(|e| match e {
            QuantError::Structure(m) => {
                QuantError::Stage { stage: stage.to_string(), message: m }
            }
            other => other,
        })?;
    let frac_bits = choose_frac_bits(stage, current_max, lif.theta)?;
    let fixed = FixedLif::from_config(lif, frac_bits)?;
    let q_scale = (1u64 << frac_bits) as f64;
    let mut rescale = Vec::with_capacity(out);
    for &sw in &qw.scales {
        let r = sw as f64 * act_scale * q_scale;
        rescale.push(Rescale::from_real(r).map_err(|e| QuantError::Overflow {
            stage: stage.to_string(),
            message: format!("rescale factor {r}: {e}"),
        })?);
    }
    Ok(SpikingQuant { weight: qw, bias_q: quantize_bias(bias, frac_bits), rescale, lif: fixed })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::calibrate;
    use snn_core::{LifConfig, SpikingNetwork};

    fn tiny() -> (NetworkSnapshot, Vec<Vec<f32>>) {
        let net = SpikingNetwork::builder(snn_tensor::Shape::d3(1, 6, 6), 11)
            .conv(2, 3, 1, 1, LifConfig::paper_default())
            .unwrap()
            .maxpool(2)
            .unwrap()
            .flatten()
            .unwrap()
            .dense(3, LifConfig::paper_default())
            .unwrap()
            .build()
            .expect("tiny network");
        let items: Vec<Vec<f32>> = (0..4)
            .map(|i| (0..36).map(|j| ((i + j) % 5) as f32 / 4.0).collect())
            .collect();
        (NetworkSnapshot::from_network(&net), items)
    }

    #[test]
    fn quantize_roundtrips_through_json() {
        let (snap, items) = tiny();
        let cal = calibrate(&snap, &items, 3).unwrap();
        let q = quantize_snapshot(&snap, &cal, 8).unwrap();
        q.validate().unwrap();
        assert_eq!(q.bits, 8);
        assert_eq!(q.classes, 3);
        assert_eq!(q.stages.len(), snap.layers.len());
        assert_eq!(q.frac_bits().len(), 2, "two spiking stages");
        assert!(q.param_count() > 0);
        let json = serde_json::to_string(&q).unwrap();
        let back = QuantizedSnapshot::from_json(&json).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn f32_reader_rejects_quant_artifact_and_vice_versa() {
        let (snap, items) = tiny();
        let cal = calibrate(&snap, &items, 2).unwrap();
        let q = quantize_snapshot(&snap, &cal, 8).unwrap();
        let qjson = serde_json::to_string(&q).unwrap();
        // Old reader (f32 snapshot decoder) sees a typed error.
        let err = NetworkSnapshot::from_json(&qjson).unwrap_err();
        assert!(
            matches!(err, snn_core::SnapshotError::Malformed(_)),
            "expected Malformed, got {err:?}"
        );
        // And this reader rejects f32 snapshots the same way.
        let fjson = serde_json::to_string(&snap).unwrap();
        assert!(matches!(
            QuantizedSnapshot::from_json(&fjson),
            Err(QuantError::Malformed(_))
        ));
    }

    #[test]
    fn wrong_format_tag_is_rejected() {
        let (snap, items) = tiny();
        let cal = calibrate(&snap, &items, 2).unwrap();
        let mut q = quantize_snapshot(&snap, &cal, 8).unwrap();
        q.format = "snn-quant/99".into();
        assert!(matches!(q.validate(), Err(QuantError::Malformed(_))));
    }

    #[test]
    fn tampered_stage_yields_stage_error() {
        let (snap, items) = tiny();
        let cal = calibrate(&snap, &items, 2).unwrap();
        let mut q = quantize_snapshot(&snap, &cal, 8).unwrap();
        if let QuantStage::Conv { bias_q, .. } = &mut q.stages[0] {
            bias_q.pop();
        }
        assert!(matches!(q.validate(), Err(QuantError::Stage { .. })));
    }

    #[test]
    fn low_bit_quantization_works() {
        let (snap, items) = tiny();
        let cal = calibrate(&snap, &items, 2).unwrap();
        for bits in [2u32, 4, 6] {
            let q = quantize_snapshot(&snap, &cal, bits).unwrap();
            assert_eq!(q.bits, bits);
            q.validate().unwrap();
        }
        assert!(matches!(
            quantize_snapshot(&snap, &cal, 9),
            Err(QuantError::Unsupported(_))
        ));
    }

    #[test]
    fn frac_bits_shrink_with_range() {
        let small = choose_frac_bits("s", 1.0, 1.0).unwrap();
        let large = choose_frac_bits("s", 4000.0, 1.0).unwrap();
        assert!(small > large, "larger range leaves fewer fractional bits");
        assert!(choose_frac_bits("s", 1e9, 1.0).is_err(), "absurd range is a typed overflow");
    }
}
