//! Property suite for the quantization numeric core.
//!
//! Pins the three contracts DESIGN.md §13 states:
//!
//! 1. **Round trip** — per-channel quantize→dequantize error is
//!    bounded by half a quantization step per value.
//! 2. **Saturation** — casts clamp (never wrap, never produce
//!    `i8::MIN`), including i32 accumulators near overflow.
//! 3. **Fixed-point LIF** — the integer membrane trajectory tracks
//!    the f32 reference within a stated, derived tolerance, and the
//!    full quantized forward is bit-identical across thread counts
//!    and dispatch routes.

use proptest::prelude::*;

use snn_core::{LifConfig, NetworkSnapshot, ResetMode, SpikingNetwork};
use snn_quant::{
    calibrate, quantize_snapshot, saturate_i8, FixedLif, QuantNetwork, QuantizedTensor, Rescale,
};
use snn_tensor::dispatch::with_event_density_threshold;
use snn_tensor::{par, Shape};

fn lcg(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *seed >> 33
}

fn values(len: usize, seed: u64, scale: f32) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(7);
    (0..len)
        .map(|_| ((lcg(&mut s) as f32 / u32::MAX as f32) - 0.5) * 2.0 * scale)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Quantize→dequantize reconstructs every value within half a
    /// step of that value's channel scale.
    #[test]
    fn roundtrip_error_bounded_by_half_step(
        channels in 1usize..6, per in 1usize..40,
        seed in 0u64..1000, scale in 1u32..500, bits in 2u32..9,
    ) {
        let scale = scale as f32 / 100.0;
        let vals = values(channels * per, seed, scale);
        let q = QuantizedTensor::quantize(&vals, channels, per, bits).unwrap();
        prop_assert!(q.validate().is_ok());
        let back = q.dequantize();
        for c in 0..channels {
            let bound = q.scales[c] * 0.5 + 1e-6;
            for j in 0..per {
                let i = c * per + j;
                prop_assert!(
                    (vals[i] - back[i]).abs() <= bound,
                    "channel {} value {}: {} vs {} exceeds half-step {}",
                    c, j, vals[i], back[i], bound
                );
            }
        }
    }

    /// `saturate_i8` clamps symmetrically: the full i32 domain maps
    /// into `[-127, 127]` and `i8::MIN` is unreachable.
    #[test]
    fn i8_saturation_excludes_min(v in any::<i32>()) {
        let s = saturate_i8(v) as i32;
        prop_assert!((-127..=127).contains(&s));
        prop_assert!(s != i8::MIN as i32 || s == -127);
        if (-127..=127).contains(&v) {
            prop_assert_eq!(s, v, "in-range values pass through");
        }
    }

    /// `Rescale::apply` equals the exact real computation, saturated
    /// — including accumulators at the i32 extremes.
    #[test]
    fn rescale_matches_real_arithmetic(
        acc in any::<i32>(), mult_scale in 1u32..2_000_000, shift_down in 0u32..20,
    ) {
        let r = mult_scale as f64 / (1u64 << shift_down) as f64;
        let rs = Rescale::from_real(r).unwrap();
        let got = rs.apply(acc) as f64;
        // Exact value under the *encoded* factor (mult/2^shift), which
        // is within 2^-22 relative of r.
        let exact = acc as f64 * rs.real();
        let clamped = exact.clamp(i32::MIN as f64, i32::MAX as f64);
        prop_assert!(
            (got - clamped).abs() <= 1.0,
            "acc {} * {} -> {} vs {}",
            acc, r, got, clamped
        );
    }

    /// Pure fixed-point decay tracks the f32 membrane within the
    /// stated bound: per step the Q15 beta encoding contributes at
    /// most `|u|·2^-16` and the Q`F` shift at most one ulp (`2^-F`),
    /// so `N` steps stay within `N·(|u0|·2^-15 + 2·2^-F)`.
    #[test]
    fn fixed_beta_decay_tracks_f32(
        beta_pct in 0u32..=100, u0_mil in -8000i32..8000, steps in 1usize..33,
    ) {
        let beta = beta_pct as f32 / 100.0;
        let u0 = u0_mil as f32 / 1000.0;
        let cfg = LifConfig { beta, ..LifConfig::paper_default() };
        const F: u32 = 16;
        let fx = FixedLif::from_config(&cfg, F).unwrap();
        let q_one = (1u64 << F) as f32;
        let mut uq = (u0 * q_one).round() as i32;
        let mut uf = u0;
        let tol_per_step = u0.abs() * (2f32).powi(-15) + 2.0 * (2f32).powi(-(F as i32));
        for step in 1..=steps {
            // No input, no spikes: pure leak through both paths.
            let (next, _) = fx.step(uq, false, 0);
            uq = next;
            uf *= beta;
            let got = uq as f32 / q_one;
            let tol = step as f32 * tol_per_step + 1.0 / q_one;
            prop_assert!(
                (got - uf).abs() <= tol,
                "step {}: fixed {} vs f32 {} exceeds tolerance {}",
                step, got, uf, tol
            );
        }
    }
}

proptest! {
    // End-to-end cases are heavier; fewer, bigger.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The whole quantized forward — input quantization, conv, pool,
    /// LIF, dense — is bit-identical across {1, 4} threads × {dense,
    /// event} routes, for random topologies, seeds, and reset modes.
    #[test]
    fn quantized_forward_bit_identical_across_threads_and_routes(
        filters in 2usize..5, classes in 2usize..6, seed in 0u64..200,
        timesteps in 1usize..5, zero_reset in any::<bool>(),
    ) {
        let lif = LifConfig {
            reset: if zero_reset { ResetMode::Zero } else { ResetMode::Subtract },
            ..LifConfig::paper_default()
        };
        let net = SpikingNetwork::builder(Shape::d3(1, 8, 8), seed)
            .conv(filters, 3, 1, 1, lif).unwrap()
            .maxpool(2).unwrap()
            .flatten().unwrap()
            .dense(classes, lif).unwrap()
            .build().unwrap();
        let snap = NetworkSnapshot::from_network(&net);
        let items: Vec<Vec<f32>> = (0..5)
            .map(|i| values(64, seed ^ (i as u64) << 8, 1.0).iter().map(|v| v.abs()).collect())
            .collect();
        let cal = calibrate(&snap, &items, timesteps).unwrap();
        let q = quantize_snapshot(&snap, &cal, 8).unwrap();
        let mut runtime = QuantNetwork::from_snapshot(&q).unwrap();
        let mut outputs = Vec::new();
        for &threads in &[1usize, 4] {
            for &thr in &[-1.0f32, 1.0] {
                let counts = with_event_density_threshold(thr, || {
                    par::with_num_threads(threads, || {
                        runtime.infer_batch(&items, timesteps).unwrap()
                    })
                });
                outputs.push(counts);
            }
        }
        for other in &outputs[1..] {
            prop_assert_eq!(&outputs[0], other,
                "thread/route combination changed the quantized output");
        }
    }
}
