//! Closed-loop overload controls: AIMD admission and INT8 brownout.
//!
//! The queue bound (`capacity`) protects memory, not latency: a full
//! 64-deep queue in front of a slow model means every admitted request
//! waits out the whole backlog before being shed `Retry-After`-less at
//! dispatch. The [`AimdController`] closes that loop — it watches the
//! ratio of `queue_wait` to `forward` time per batch (the PR-8 stage
//! timelines) and adapts a queue-depth limit the way TCP adapts a
//! congestion window: additive increase while queue waits stay
//! proportionate to compute, multiplicative decrease the moment they
//! do not. Submissions beyond the limit shed *at admission* with
//! [`crate::Rejection::AdmissionShed`] (HTTP 429 + `Retry-After`),
//! before they cost anyone queue time.
//!
//! [`Brownout`] is the second loop: when the SLO fast-burn signal
//! fires and the registry holds a published INT8 artifact, batch
//! workers switch new batches to the quantized engine — trading a
//! little accuracy for capacity so overload raises throughput instead
//! of error rate. Exit is hysteretic: the burn must stay clear for a
//! hold period before workers switch back, so a flapping burn signal
//! cannot thrash engine rebuilds.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tuning for the AIMD admission limit.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionConfig {
    /// Master switch; `false` leaves only the fixed queue bound.
    pub enabled: bool,
    /// Added to the limit per uncongested batch (additive increase).
    pub increase: f64,
    /// Limit multiplier on congestion evidence (multiplicative
    /// decrease); clamped to `(0, 1)`.
    pub decrease: f64,
    /// A batch counts as congested when its oldest rider's queue wait
    /// exceeds `congestion_ratio ×` the forward pass it then got.
    pub congestion_ratio: f64,
    /// Queue waits below this floor never count as congestion, so
    /// the deliberate micro-batching linger (`max_wait`) is not
    /// punished as queueing delay.
    pub queue_floor: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            enabled: true,
            increase: 1.0,
            decrease: 0.5,
            congestion_ratio: 4.0,
            // Default batcher linger is 2ms; anything under 5ms of
            // queueing is batching policy, not overload.
            queue_floor: Duration::from_millis(5),
        }
    }
}

/// Additive-increase / multiplicative-decrease queue-depth limit.
///
/// Invariants (pinned by proptest below):
/// * the limit never drops below 1 — one request is always admissible;
/// * the limit never exceeds the queue capacity it guards;
/// * the limit only *decreases* on congestion evidence (an
///   [`AimdController::observe`] call that reports congestion).
#[derive(Debug)]
pub struct AimdController {
    cfg: AdmissionConfig,
    max_limit: f64,
    limit: Mutex<f64>,
}

impl AimdController {
    /// Starts wide open: the limit begins at `max_limit` (the queue
    /// capacity), so an uncongested server behaves exactly as if the
    /// controller were absent.
    pub fn new(cfg: AdmissionConfig, max_limit: usize) -> Self {
        let max = (max_limit as f64).max(1.0);
        AimdController { cfg, max_limit: max, limit: Mutex::new(max) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, f64> {
        self.limit.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The current queue-depth limit.
    pub fn limit(&self) -> f64 {
        *self.lock()
    }

    /// Whether a submission finding `queued` requests already waiting
    /// may enter. Disabled controllers admit everything (the fixed
    /// capacity bound still applies upstream).
    pub fn admit(&self, queued: usize) -> bool {
        if !self.cfg.enabled {
            return true;
        }
        (queued as f64) < self.lock().floor().max(1.0)
    }

    /// Feeds one batch's stage timeline into the controller:
    /// `queue_wait` is the oldest rider's time in queue, `forward` the
    /// pass that then served it (zero for a deadline shed — waiting
    /// with nothing to show for it is the strongest congestion
    /// evidence). Returns `true` when the batch counted as congested
    /// (and the limit was multiplicatively decreased).
    pub fn observe(&self, queue_wait: Duration, forward: Duration) -> bool {
        if !self.cfg.enabled {
            return false;
        }
        let congested = queue_wait > self.cfg.queue_floor
            && queue_wait.as_secs_f64()
                > forward.as_secs_f64() * self.cfg.congestion_ratio.max(0.0);
        let mut limit = self.lock();
        if congested {
            let factor = self.cfg.decrease.clamp(f64::EPSILON, 1.0);
            *limit = (*limit * factor).max(1.0);
        } else {
            *limit = (*limit + self.cfg.increase.max(0.0)).min(self.max_limit);
        }
        congested
    }
}

/// Hysteretic brownout switch over the SLO fast-burn signal.
///
/// `observe(fast_burn)` enters brownout immediately on a burning
/// signal; leaving requires the signal to stay clear for the full
/// `hold` period. Batch workers poll this at every batch boundary and
/// build their engine from the registry's published INT8 artifact
/// while active.
#[derive(Debug)]
pub struct Brownout {
    hold: Duration,
    /// Cheap read for `/healthz` and per-request checks.
    active: AtomicBool,
    clear_since: Mutex<Option<Instant>>,
}

impl Brownout {
    /// A switch that exits brownout only after `hold` of burn-free
    /// observations.
    pub fn new(hold: Duration) -> Self {
        Brownout { hold, active: AtomicBool::new(false), clear_since: Mutex::new(None) }
    }

    /// Hold period from `SNN_BROWNOUT_HOLD_MS` (default 10s).
    pub fn from_env() -> Self {
        let hold = std::env::var("SNN_BROWNOUT_HOLD_MS")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or(Duration::from_secs(10));
        Brownout::new(hold)
    }

    /// Feeds the current fast-burn reading through the hysteresis and
    /// returns whether brownout is (now) active.
    pub fn observe(&self, fast_burn: bool) -> bool {
        let mut clear_since = self.clear_since.lock().unwrap_or_else(|p| p.into_inner());
        if fast_burn {
            *clear_since = None;
            self.active.store(true, Ordering::Release);
            return true;
        }
        if !self.active.load(Ordering::Acquire) {
            return false;
        }
        let since = clear_since.get_or_insert_with(Instant::now);
        if since.elapsed() >= self.hold {
            self.active.store(false, Ordering::Release);
            *clear_since = None;
            false
        } else {
            true
        }
    }

    /// Whether brownout is active right now (no state transition).
    pub fn active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ctl(capacity: usize) -> AimdController {
        AimdController::new(AdmissionConfig::default(), capacity)
    }

    #[test]
    fn starts_wide_open_and_admits_up_to_capacity() {
        let c = ctl(8);
        assert_eq!(c.limit(), 8.0);
        assert!(c.admit(0));
        assert!(c.admit(7));
        assert!(!c.admit(8), "at the limit, sheds");
    }

    #[test]
    fn congestion_halves_and_recovery_is_additive() {
        let c = ctl(64);
        let congested = c.observe(Duration::from_millis(100), Duration::from_millis(2));
        assert!(congested, "100ms wait for a 2ms pass is congestion");
        assert_eq!(c.limit(), 32.0);
        let again = c.observe(Duration::from_millis(1), Duration::from_millis(2));
        assert!(!again, "sub-floor queue wait is never congestion");
        assert_eq!(c.limit(), 33.0, "additive recovery");
    }

    #[test]
    fn linger_window_waits_are_not_congestion() {
        let c = ctl(64);
        // 2ms of queueing (the batching linger) over a fast pass.
        assert!(!c.observe(Duration::from_millis(2), Duration::from_micros(200)));
        assert_eq!(c.limit(), 64.0, "capped at capacity");
    }

    #[test]
    fn deadline_shed_counts_as_congestion() {
        let c = ctl(64);
        assert!(c.observe(Duration::from_millis(50), Duration::ZERO));
        assert_eq!(c.limit(), 32.0);
    }

    #[test]
    fn disabled_controller_admits_everything() {
        let c = AimdController::new(
            AdmissionConfig { enabled: false, ..AdmissionConfig::default() },
            4,
        );
        assert!(c.admit(1_000_000));
        assert!(!c.observe(Duration::from_secs(10), Duration::ZERO));
        assert_eq!(c.limit(), 4.0);
    }

    #[test]
    fn brownout_enters_immediately_and_exits_after_hold() {
        let b = Brownout::new(Duration::from_millis(40));
        assert!(!b.active());
        assert!(b.observe(true), "enters on the first burning reading");
        assert!(b.active());
        // Clear reading starts the hold clock but does not exit yet.
        assert!(b.observe(false));
        assert!(b.active());
        std::thread::sleep(Duration::from_millis(50));
        assert!(!b.observe(false), "hold elapsed burn-free: exits");
        assert!(!b.active());
    }

    #[test]
    fn burn_during_hold_resets_the_clock() {
        let b = Brownout::new(Duration::from_millis(40));
        assert!(b.observe(true));
        assert!(b.observe(false), "hold starts");
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.observe(true), "re-burn mid-hold");
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.observe(false), "25ms since the re-burn: still held");
        std::thread::sleep(Duration::from_millis(50));
        assert!(!b.observe(false));
    }

    // Scalar-strategy proptest (the vendored proptest lacks
    // collection::vec): each u64 unpacks into a sequence of
    // observations — bit i set means observation i presents
    // congestion-shaped evidence.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn aimd_limit_invariants(
            capacity in 1usize..256,
            pattern in any::<u64>(),
            steps in 1usize..64,
        ) {
            let c = ctl(capacity);
            for i in 0..steps {
                let before = c.limit();
                let congest_shaped = (pattern >> (i % 64)) & 1 == 1;
                let (wait, forward) = if congest_shaped {
                    (Duration::from_millis(200), Duration::from_millis(1))
                } else {
                    (Duration::from_millis(1), Duration::from_millis(1))
                };
                let congested = c.observe(wait, forward);
                let after = c.limit();
                prop_assert!(after >= 1.0, "limit {after} fell below 1");
                prop_assert!(
                    after <= capacity as f64,
                    "limit {after} exceeded capacity {capacity}"
                );
                // Multiplicative decrease only on congestion evidence.
                if !congested {
                    prop_assert!(
                        after >= before,
                        "limit shrank {before} -> {after} without congestion"
                    );
                }
                prop_assert_eq!(congested, congest_shaped);
            }
            // Whatever happened, one request is always admissible.
            prop_assert!(c.admit(0));
        }
    }
}
