//! Circuit breaker over the batch worker.
//!
//! Worker panics are caught and the worker restarts, but a model (or
//! an injected fault plan) that panics on *every* batch would turn the
//! server into a crash loop that burns a rebuild per request. The
//! [`CircuitBreaker`] bounds that: after `threshold` consecutive
//! failures the circuit opens and submissions are shed immediately
//! with [`crate::Rejection::CircuitOpen`]; after `cooldown` one probe
//! request is admitted (half-open), and its outcome decides whether
//! the circuit closes again or re-opens for another cooldown.
//!
//! The state machine is deliberately classic:
//!
//! ```text
//!            failure × threshold                cooldown elapses
//! Closed ───────────────────────▶ Open ───────────────────────▶ HalfOpen
//!   ▲                              ▲                               │
//!   │            probe succeeds    │        probe fails            │
//!   └──────────────────────────────┴───────────────────────────────┘
//! ```
//!
//! `/healthz` reports `degraded` whenever the circuit is not closed,
//! and the `snn_serve_circuit_state` gauge exposes the state as
//! 0 (closed) / 1 (half-open) / 2 (open).

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Observable state of the breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Healthy: everything is admitted.
    Closed,
    /// Cooling down after a probe was admitted; its outcome is pending.
    HalfOpen,
    /// Shedding: recent consecutive failures exceeded the threshold.
    Open,
}

impl CircuitState {
    /// The `snn_serve_circuit_state` gauge encoding.
    pub fn as_gauge(self) -> f64 {
        match self {
            CircuitState::Closed => 0.0,
            CircuitState::HalfOpen => 1.0,
            CircuitState::Open => 2.0,
        }
    }
}

#[derive(Debug)]
enum Inner {
    Closed { fails: u32 },
    Open { since: Instant },
    HalfOpen,
}

/// Consecutive-failure circuit breaker (see module docs).
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// Builds a closed breaker that opens after `threshold`
    /// consecutive failures and probes every `cooldown` thereafter.
    /// A `threshold` of 0 is coerced to 1.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            inner: Mutex::new(Inner::Closed { fails: 0 }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic between lock and unlock leaves consistent data (every
        // transition is a single assignment), so poisoning is noise.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Whether a new request may enter. While open, returns `false`
    /// until `cooldown` has elapsed; the first call after that flips
    /// the circuit to half-open and is admitted as the probe — callers
    /// racing behind it keep getting `false` until the probe resolves.
    pub fn admit(&self) -> bool {
        let mut inner = self.lock();
        match *inner {
            Inner::Closed { .. } => true,
            Inner::HalfOpen => false,
            Inner::Open { since } => {
                if since.elapsed() >= self.cooldown {
                    *inner = Inner::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful batch: closes the circuit and clears the
    /// failure streak.
    pub fn on_success(&self) {
        *self.lock() = Inner::Closed { fails: 0 };
    }

    /// Records a failed batch: extends the failure streak, opening the
    /// circuit at `threshold`; a failed half-open probe re-opens
    /// immediately.
    pub fn on_failure(&self) {
        let mut inner = self.lock();
        *inner = match *inner {
            Inner::Closed { fails } if fails + 1 < self.threshold => {
                Inner::Closed { fails: fails + 1 }
            }
            _ => Inner::Open { since: Instant::now() },
        };
    }

    /// The current state (transition-free: an elapsed cooldown still
    /// reads `Open` until an [`CircuitBreaker::admit`] call probes it).
    pub fn state(&self) -> CircuitState {
        match *self.lock() {
            Inner::Closed { .. } => CircuitState::Closed,
            Inner::HalfOpen => CircuitState::HalfOpen,
            Inner::Open { .. } => CircuitState::Open,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(3, Duration::from_secs(60));
        assert!(b.admit());
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), CircuitState::Closed, "2 of 3 failures");
        b.on_failure();
        assert_eq!(b.state(), CircuitState::Open);
        assert!(!b.admit(), "open circuit sheds before cooldown");
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = CircuitBreaker::new(2, Duration::from_secs(60));
        b.on_failure();
        b.on_success();
        b.on_failure();
        assert_eq!(b.state(), CircuitState::Closed, "streak was reset");
    }

    #[test]
    fn half_open_admits_exactly_one_probe() {
        let b = CircuitBreaker::new(1, Duration::from_millis(0));
        b.on_failure();
        assert_eq!(b.state(), CircuitState::Open);
        // Zero cooldown: the next admit is the probe.
        assert!(b.admit(), "probe after cooldown");
        assert_eq!(b.state(), CircuitState::HalfOpen);
        assert!(!b.admit(), "only one probe in flight");
        b.on_success();
        assert_eq!(b.state(), CircuitState::Closed);
        assert!(b.admit());
    }

    #[test]
    fn failed_probe_reopens() {
        let b = CircuitBreaker::new(1, Duration::from_millis(0));
        b.on_failure();
        assert!(b.admit());
        b.on_failure();
        assert_eq!(b.state(), CircuitState::Open);
    }

    #[test]
    fn gauge_encoding_is_stable() {
        assert_eq!(CircuitState::Closed.as_gauge(), 0.0);
        assert_eq!(CircuitState::HalfOpen.as_gauge(), 1.0);
        assert_eq!(CircuitState::Open.as_gauge(), 2.0);
    }
}
