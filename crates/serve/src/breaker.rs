//! Circuit breaker over the batch worker.
//!
//! Worker panics are caught and the worker restarts, but a model (or
//! an injected fault plan) that panics on *every* batch would turn the
//! server into a crash loop that burns a rebuild per request. The
//! [`CircuitBreaker`] bounds that: after `threshold` consecutive
//! failures the circuit opens and submissions are shed immediately
//! with [`crate::Rejection::CircuitOpen`]; after `cooldown` one probe
//! request is admitted (half-open), and its outcome decides whether
//! the circuit closes again or re-opens for another cooldown.
//!
//! The state machine is deliberately classic:
//!
//! ```text
//!            failure × threshold                cooldown elapses
//! Closed ───────────────────────▶ Open ───────────────────────▶ HalfOpen
//!   ▲                              ▲                               │
//!   │            probe succeeds    │        probe fails            │
//!   └──────────────────────────────┴───────────────────────────────┘
//! ```
//!
//! Consecutive failed probes escalate the cooldown on a bounded
//! exponential ladder ([`snn_fault::Backoff`]: `cooldown * 2^k`,
//! capped at 32× the base), so a persistently broken engine is probed
//! ever less often instead of at a fixed cadence; the first success
//! resets the ladder.
//!
//! `/healthz` reports `degraded` whenever the circuit is not closed,
//! and the `snn_serve_circuit_state` gauge exposes the state as
//! 0 (closed) / 1 (half-open) / 2 (open).

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Observable state of the breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Healthy: everything is admitted.
    Closed,
    /// Cooling down after a probe was admitted; its outcome is pending.
    HalfOpen,
    /// Shedding: recent consecutive failures exceeded the threshold.
    Open,
}

impl CircuitState {
    /// The `snn_serve_circuit_state` gauge encoding.
    pub fn as_gauge(self) -> f64 {
        match self {
            CircuitState::Closed => 0.0,
            CircuitState::HalfOpen => 1.0,
            CircuitState::Open => 2.0,
        }
    }
}

#[derive(Debug)]
enum Inner {
    Closed { fails: u32 },
    /// `reopens` counts consecutive failed half-open probes; it
    /// indexes the probe-cadence backoff ladder.
    Open { since: Instant, reopens: u32 },
    HalfOpen { reopens: u32 },
}

/// Consecutive-failure circuit breaker (see module docs).
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    probe_backoff: snn_fault::Backoff,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// Builds a closed breaker that opens after `threshold`
    /// consecutive failures and probes after `cooldown` — doubling the
    /// wait (capped at 32× `cooldown`) for every consecutive failed
    /// probe. A `threshold` of 0 is coerced to 1.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            probe_backoff: snn_fault::Backoff::new(cooldown, cooldown.saturating_mul(32)),
            inner: Mutex::new(Inner::Closed { fails: 0 }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic between lock and unlock leaves consistent data (every
        // transition is a single assignment), so poisoning is noise.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Whether a new request may enter. While open, returns `false`
    /// until the current cooldown has elapsed; the first call after
    /// that flips the circuit to half-open and is admitted as the
    /// probe — callers racing behind it keep getting `false` until the
    /// probe resolves.
    pub fn admit(&self) -> bool {
        let mut inner = self.lock();
        match *inner {
            Inner::Closed { .. } => true,
            Inner::HalfOpen { .. } => false,
            Inner::Open { since, reopens } => {
                if since.elapsed() >= self.probe_backoff.delay(reopens as usize) {
                    *inner = Inner::HalfOpen { reopens };
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful batch: closes the circuit and clears both
    /// the failure streak and the probe-backoff ladder.
    pub fn on_success(&self) {
        *self.lock() = Inner::Closed { fails: 0 };
    }

    /// Records a failed batch: extends the failure streak, opening the
    /// circuit at `threshold`; a failed half-open probe re-opens
    /// immediately with an escalated cooldown.
    pub fn on_failure(&self) {
        let mut inner = self.lock();
        *inner = match *inner {
            Inner::Closed { fails } if fails + 1 < self.threshold => {
                Inner::Closed { fails: fails + 1 }
            }
            Inner::Closed { .. } => Inner::Open { since: Instant::now(), reopens: 0 },
            Inner::HalfOpen { reopens } => {
                Inner::Open { since: Instant::now(), reopens: reopens.saturating_add(1) }
            }
            Inner::Open { reopens, .. } => Inner::Open { since: Instant::now(), reopens },
        };
    }

    /// The current state (transition-free: an elapsed cooldown still
    /// reads `Open` until an [`CircuitBreaker::admit`] call probes it).
    pub fn state(&self) -> CircuitState {
        match *self.lock() {
            Inner::Closed { .. } => CircuitState::Closed,
            Inner::HalfOpen { .. } => CircuitState::HalfOpen,
            Inner::Open { .. } => CircuitState::Open,
        }
    }

    /// Cooldown the breaker will wait before its next probe if it is
    /// (or next goes) open at the current ladder position.
    pub fn current_cooldown(&self) -> Duration {
        let reopens = match *self.lock() {
            Inner::Closed { .. } => 0,
            Inner::Open { reopens, .. } | Inner::HalfOpen { reopens } => reopens,
        };
        self.probe_backoff.delay(reopens as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(3, Duration::from_secs(60));
        assert!(b.admit());
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), CircuitState::Closed, "2 of 3 failures");
        b.on_failure();
        assert_eq!(b.state(), CircuitState::Open);
        assert!(!b.admit(), "open circuit sheds before cooldown");
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = CircuitBreaker::new(2, Duration::from_secs(60));
        b.on_failure();
        b.on_success();
        b.on_failure();
        assert_eq!(b.state(), CircuitState::Closed, "streak was reset");
    }

    #[test]
    fn half_open_admits_exactly_one_probe() {
        let b = CircuitBreaker::new(1, Duration::from_millis(0));
        b.on_failure();
        assert_eq!(b.state(), CircuitState::Open);
        // Zero cooldown: the next admit is the probe.
        assert!(b.admit(), "probe after cooldown");
        assert_eq!(b.state(), CircuitState::HalfOpen);
        assert!(!b.admit(), "only one probe in flight");
        b.on_success();
        assert_eq!(b.state(), CircuitState::Closed);
        assert!(b.admit());
    }

    #[test]
    fn failed_probe_reopens() {
        let b = CircuitBreaker::new(1, Duration::from_millis(0));
        b.on_failure();
        assert!(b.admit());
        b.on_failure();
        assert_eq!(b.state(), CircuitState::Open);
    }

    #[test]
    fn consecutive_failed_probes_escalate_the_cooldown() {
        let b = CircuitBreaker::new(1, Duration::from_millis(40));
        b.on_failure();
        assert_eq!(b.current_cooldown(), Duration::from_millis(40), "first open: base cooldown");
        // Force the probe and fail it three times; each failed probe
        // doubles the wait before the next one.
        for expected_ms in [80u64, 160, 320] {
            std::thread::sleep(b.current_cooldown() + Duration::from_millis(5));
            assert!(b.admit(), "cooldown elapsed: probe admitted");
            b.on_failure();
            assert_eq!(b.state(), CircuitState::Open);
            assert_eq!(b.current_cooldown(), Duration::from_millis(expected_ms));
        }
        // A successful probe resets the ladder.
        std::thread::sleep(b.current_cooldown() + Duration::from_millis(5));
        assert!(b.admit());
        b.on_success();
        assert_eq!(b.state(), CircuitState::Closed);
        b.on_failure();
        assert_eq!(b.current_cooldown(), Duration::from_millis(40), "ladder reset on success");
    }

    #[test]
    fn escalation_is_capped_at_32x() {
        let b = CircuitBreaker::new(1, Duration::from_millis(1));
        b.on_failure();
        for _ in 0..10 {
            std::thread::sleep(b.current_cooldown() + Duration::from_millis(2));
            assert!(b.admit());
            b.on_failure();
        }
        assert_eq!(b.current_cooldown(), Duration::from_millis(32), "capped at 32x base");
    }

    #[test]
    fn gauge_encoding_is_stable() {
        assert_eq!(CircuitState::Closed.as_gauge(), 0.0);
        assert_eq!(CircuitState::HalfOpen.as_gauge(), 1.0);
        assert_eq!(CircuitState::Open.as_gauge(), 2.0);
    }
}
