//! Forward-only inference over a loaded snapshot.
//!
//! The engine is the training/serving boundary: it owns a
//! [`SpikingNetwork`] reconstructed from a validated
//! [`NetworkSnapshot`], runs it strictly in inference mode (no BPTT
//! activation caches, so memory stays flat at any sequence length),
//! and instruments every forward pass with per-request spike counters
//! — each response reports the sparsity *it* exercised, not a
//! dataset-level average.
//!
//! Batching contract: one batched forward pass over `n` stacked
//! inputs produces bit-for-bit the same outputs and spike counts as
//! `n` serial single-item passes. Every kernel on the forward path
//! (im2col conv, the spike-gather GEMM, LIF, max-pool) treats batch
//! items independently, which is what lets the [`crate::queue`] layer
//! coalesce requests without changing results. The
//! `batch_equivalence` tests pin this.

use serde::Serialize;

use snn_core::{NetworkSnapshot, SnapshotError, SpikingNetwork};
use snn_tensor::{Shape, Tensor};

/// Firing statistics of one layer for a single request.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LayerFiring {
    /// Layer name, e.g. `conv1`.
    pub layer: String,
    /// Output spikes this request produced in the layer, summed over
    /// timesteps.
    pub spikes: f64,
    /// Spike opportunities: `neurons × timesteps`.
    pub neuron_steps: f64,
    /// `spikes / neuron_steps` — the per-request firing rate.
    pub rate: f64,
}

/// Result of one inference request.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RequestOutput {
    /// Predicted class (argmax of output spike counts; ties break to
    /// the lowest index).
    pub class: usize,
    /// Output spike counts per class — the rate-coded logits.
    pub counts: Vec<f32>,
    /// Timesteps the input was presented for.
    pub timesteps: usize,
    /// Per-layer firing statistics for the spiking layers, in forward
    /// order.
    pub layers: Vec<LayerFiring>,
    /// Firing rate across all spiking layers, weighted by
    /// neuron-steps.
    pub mean_rate: f64,
    /// Fraction of nonzero elements in the submitted input — the
    /// density the event-driven conv dispatcher routes on, reported
    /// per request so clients can see how sparse their traffic is.
    pub input_density: f64,
    /// Which numeric engine served the request: `"f32"` or `"int8"`.
    /// An owned `String` (not `&'static str`) because the vendored
    /// serde leaks static strings on serialize.
    pub engine: String,
}

/// Static per-layer bookkeeping captured once at engine build.
struct LayerMeta {
    name: String,
    /// Output elements per batch item.
    item_len: usize,
    /// Whether the layer hosts LIF neurons (conv/dense); only those
    /// appear in per-request firing reports.
    spiking: bool,
}

/// Forward-only executor for one model snapshot.
///
/// Not `Sync`: each worker owns an engine (the batching queue owns
/// exactly one), which keeps the network's internal scratch — im2col
/// buffers, membrane state — preallocated and reused across requests
/// with no locking.
pub struct InferenceEngine {
    net: SpikingNetwork,
    timesteps: usize,
    item_shape: Shape,
    classes: usize,
    layers: Vec<LayerMeta>,
}

impl InferenceEngine {
    /// Validates `snapshot` and builds an engine presenting each
    /// input for `timesteps` steps (direct/constant-current coding —
    /// deterministic, so identical requests get identical answers).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] for snapshots that do not describe a
    /// runnable network, or for a zero `timesteps`.
    pub fn new(snapshot: NetworkSnapshot, timesteps: usize) -> Result<Self, SnapshotError> {
        if timesteps == 0 {
            return Err(SnapshotError::Structure("timesteps must be at least 1".into()));
        }
        let net = snapshot.try_into_network()?;
        let layers = net
            .layers()
            .iter()
            .map(|l| LayerMeta {
                name: l.name().to_string(),
                item_len: l.output_item_shape().len(),
                spiking: l.lif_config().is_some(),
            })
            .collect();
        Ok(InferenceEngine {
            timesteps,
            item_shape: net.input_item_shape(),
            classes: net.classes(),
            net,
            layers,
        })
    }

    /// Elements in one flattened input item.
    pub fn input_len(&self) -> usize {
        self.item_shape.len()
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Timesteps per inference.
    pub fn timesteps(&self) -> usize {
        self.timesteps
    }

    /// Runs one batched forward pass over `items` (each a flattened
    /// input of [`InferenceEngine::input_len`] values), returning one
    /// output per item in order.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or any item has the wrong length —
    /// the queue validates lengths before enqueueing.
    pub fn infer_batch(&mut self, items: &[Vec<f32>]) -> Vec<RequestOutput> {
        let _span = snn_obs::span!("infer_batch");
        let n = items.len();
        assert!(n > 0, "infer_batch requires at least one item");
        let item_len = self.input_len();
        let mut data = Vec::with_capacity(n * item_len);
        let mut densities = Vec::with_capacity(n);
        for item in items {
            assert_eq!(item.len(), item_len, "input length validated at submit");
            let nnz = item.iter().filter(|&&v| v != 0.0).count();
            densities.push(nnz as f64 / item_len as f64);
            data.extend_from_slice(item);
        }
        let mut dims = vec![n];
        dims.extend_from_slice(self.item_shape.dims());
        let batch = Tensor::from_vec(Shape::from_dims(&dims), data)
            .expect("batch dims match data length");

        // Direct coding: the same frame every timestep. Tensor clones
        // are O(1) Arc copies, so this allocates nothing.
        let frames = vec![batch; self.timesteps];

        // spikes[layer][item], accumulated over timesteps.
        let mut spikes: Vec<Vec<f64>> = self
            .layers
            .iter()
            .map(|m| if m.spiking { vec![0.0; n] } else { Vec::new() })
            .collect();
        let out = self.net.run_inference_observed(&frames, |li, _name, y| {
            let acc = &mut spikes[li];
            if acc.is_empty() {
                return;
            }
            let per_item = y.len() / n;
            for (i, chunk) in y.as_slice().chunks_exact(per_item).enumerate() {
                acc[i] += chunk.iter().map(|&v| v as f64).sum::<f64>();
            }
        });

        (0..n)
            .map(|i| {
                let counts: Vec<f32> = out.counts.as_slice()
                    [i * self.classes..(i + 1) * self.classes]
                    .to_vec();
                let layers: Vec<LayerFiring> = self
                    .layers
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| m.spiking)
                    .map(|(li, m)| {
                        let neuron_steps = (m.item_len * self.timesteps) as f64;
                        let s = spikes[li][i];
                        LayerFiring {
                            layer: m.name.clone(),
                            spikes: s,
                            neuron_steps,
                            rate: s / neuron_steps,
                        }
                    })
                    .collect();
                let (total_s, total_ns) = layers
                    .iter()
                    .fold((0.0, 0.0), |(s, ns), l| (s + l.spikes, ns + l.neuron_steps));
                RequestOutput {
                    class: out.counts.argmax_row(i),
                    counts,
                    timesteps: self.timesteps,
                    layers,
                    mean_rate: if total_ns > 0.0 { total_s / total_ns } else { 0.0 },
                    input_density: densities[i],
                    engine: "f32".into(),
                }
            })
            .collect()
    }

    /// Convenience wrapper: a batch of one.
    ///
    /// # Panics
    ///
    /// Panics if `item` has the wrong length.
    pub fn infer_one(&mut self, item: Vec<f32>) -> RequestOutput {
        self.infer_batch(std::slice::from_ref(&item))
            .pop()
            .expect("batch of one yields one output")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_core::{LifConfig, SpikingNetwork};

    fn snapshot() -> NetworkSnapshot {
        let lif = LifConfig { theta: 0.5, ..LifConfig::paper_default() };
        let net = SpikingNetwork::builder(Shape::d3(1, 8, 8), 11)
            .conv(4, 3, 1, 1, lif)
            .unwrap()
            .maxpool(2)
            .unwrap()
            .flatten()
            .unwrap()
            .dense(4, lif)
            .unwrap()
            .build()
            .unwrap();
        NetworkSnapshot::from_network(&net)
    }

    fn input(seed: u64) -> Vec<f32> {
        let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (0..64)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((x >> 33) as f32) / (u32::MAX as f32)
            })
            .collect()
    }

    #[test]
    fn engine_reports_per_request_sparsity() {
        let mut e = InferenceEngine::new(snapshot(), 4).unwrap();
        assert_eq!(e.input_len(), 64);
        assert_eq!(e.classes(), 4);
        let out = e.infer_one(input(1));
        assert_eq!(out.engine, "f32");
        assert!(out.class < 4);
        assert_eq!(out.counts.len(), 4);
        assert_eq!(out.timesteps, 4);
        // conv1 and fc1 are the spiking layers of this topology.
        let names: Vec<&str> = out.layers.iter().map(|l| l.layer.as_str()).collect();
        assert_eq!(names, vec!["conv1", "fc1"]);
        for l in &out.layers {
            assert!(l.rate >= 0.0 && l.rate <= 1.0, "rate {} out of range", l.rate);
            let expected_steps = if l.layer == "conv1" { 4 * 8 * 8 * 4 } else { 4 * 4 };
            assert_eq!(l.neuron_steps, expected_steps as f64);
        }
        assert!(out.mean_rate >= 0.0 && out.mean_rate <= 1.0);
        // The LCG input is dense; a zeroed tail shows up in the
        // reported density exactly.
        assert_eq!(out.input_density, 1.0);
        let mut half = input(1);
        half.iter_mut().skip(32).for_each(|v| *v = 0.0);
        assert_eq!(e.infer_one(half).input_density, 0.5);
    }

    #[test]
    fn engine_is_deterministic_across_calls() {
        let mut e = InferenceEngine::new(snapshot(), 3).unwrap();
        let a = e.infer_one(input(7));
        let b = e.infer_one(input(7));
        assert_eq!(a, b);
    }

    #[test]
    fn batched_equals_serial_bitwise() {
        let mut e = InferenceEngine::new(snapshot(), 4).unwrap();
        let items: Vec<Vec<f32>> = (0..5).map(input).collect();
        let batched = e.infer_batch(&items);
        for (i, item) in items.iter().enumerate() {
            let solo = e.infer_one(item.clone());
            assert_eq!(batched[i], solo, "item {i} diverged between batch and serial");
            for (a, b) in batched[i].counts.iter().zip(&solo.counts) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn rejects_invalid_snapshot_and_zero_timesteps() {
        assert!(InferenceEngine::new(snapshot(), 0).is_err());
        let mut bad = snapshot();
        bad.classes = 99;
        assert!(InferenceEngine::new(bad, 4).is_err());
    }
}
