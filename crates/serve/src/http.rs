//! Minimal hermetic HTTP/1.1 front end over [`std::net::TcpListener`].
//!
//! No async runtime and no HTTP crate: the workspace is offline, and
//! the protocol surface a model server needs — fixed routes, JSON
//! bodies, `Content-Length` framing, keep-alive — fits in a few
//! hundred lines of `std`. Connections get a thread each; the real
//! concurrency control is the bounded [`crate::Batcher`] behind them,
//! which turns overload into typed rejections instead of unbounded
//! queues.
//!
//! Routes:
//!
//! | Route | Method | Purpose |
//! |---|---|---|
//! | `/infer` | POST | `{"input": [...], "timeout_ms": n?}` → prediction + per-layer firing rates |
//! | `/healthz` | GET | liveness + served model name/version |
//! | `/metrics` | GET | Prometheus text exposition (instance + global instruments) |
//! | `/metrics.json` | GET | JSON: [`crate::MetricsSnapshot`] summary + full instrument dump |
//! | `/reload` | POST | snapshot JSON → validated atomic hot-swap |
//! | `/debug/traces` | GET | tail-sampled recent request traces (see below) |
//! | `/debug/traces/<id>` | GET | one trace by its 32-hex id |
//! | `/debug/traces/<id>/chrome` | GET | same trace as a chrome://tracing event array |
//!
//! Rejections map onto status codes: full queue → `429`, lapsed
//! deadline → `504`, malformed input → `400`, shutdown → `503`,
//! incompatible reload → `409`.
//!
//! # Request tracing
//!
//! Every request is minted a [`TraceContext`] at accept; its 32-hex
//! trace id comes back in the `x-snn-trace-id` response header, and
//! the context is installed for the connection thread (and carried by
//! value through the queue into the batch worker), so `span!` events
//! and structured log records anywhere downstream attach to the
//! owning request. `POST` routes additionally record a five-stage
//! timeline (`parse`, `queue_wait`, `batch_form`, `forward`,
//! `respond`) into a tail-sampled [`TraceRing`] served from
//! `/debug/traces`. The stages partition the wall clock exactly:
//! `forward` is the in-flight remainder between submit and reply
//! (engine time plus reply transit), so the five stages always sum to
//! `total_us` up to microsecond truncation.

use std::fmt;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use serde::{Serialize, Value};

use crate::breaker::CircuitState;
use crate::metrics::Metrics;
use crate::queue::{Batcher, BatcherConfig, Rejection};
use crate::registry::{ModelInfo, ModelRegistry, ServedModel, SwapError};
use snn_core::SnapshotError;
use snn_obs::{tracectx, SloConfig, StageTiming, TraceContext, TraceRecord, TraceRing};

/// Largest accepted request head (request line + headers). Shared
/// with the pool front end so both front ends frame identically.
pub const MAX_HEAD: usize = 16 * 1024;
/// Largest accepted request body. Shared with the pool front end.
pub const MAX_BODY: usize = 8 * 1024 * 1024;
/// Poll granularity for reads, so idle connection threads notice
/// shutdown promptly.
const READ_TIMEOUT: Duration = Duration::from_millis(250);
/// Idle keep-alive connections are closed after this long. Shared
/// with the pool front end.
pub const IDLE_TIMEOUT: Duration = Duration::from_secs(30);
/// Slack added on top of an `/infer` request's queue deadline before
/// the connection thread gives up on the engine entirely and answers
/// `503`. The deadline bounds *queue* wait; this grace bounds the
/// forward pass behind it, so a wedged worker can never hang a
/// request forever. Shared with the pool front end.
pub const ENGINE_GRACE: Duration = Duration::from_secs(2);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::addr`]).
    pub addr: String,
    /// Configuration for the batching queue behind `/infer`.
    pub batcher: BatcherConfig,
    /// Deadline applied to `/infer` requests that do not send
    /// `timeout_ms`. `None` means such requests wait indefinitely.
    pub default_timeout: Option<Duration>,
    /// Completed-request trace ring behind `/debug/traces`; `None`
    /// disables per-request stage timelines (ids and the
    /// `x-snn-trace-id` header are minted regardless). The default
    /// honors `SNN_TRACE_RING` / `SNN_TRACE_SLOW_MS` /
    /// `SNN_TRACE_SAMPLE`.
    pub trace_ring: Option<Arc<TraceRing>>,
    /// SLO objectives for burn-rate tracking; `None` disables it. The
    /// default honors `SNN_SLO` (e.g. `p99=25ms,avail=99.9`).
    pub slo: Option<SloConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            batcher: BatcherConfig::default(),
            default_timeout: Some(Duration::from_millis(2000)),
            trace_ring: TraceRing::from_env(),
            slo: SloConfig::from_env(),
        }
    }
}

/// Failure starting the server.
#[derive(Debug)]
pub enum ServeError {
    /// Binding the listener failed.
    Io(io::Error),
    /// The engine could not be built from the registry's snapshot.
    Snapshot(SnapshotError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "cannot bind server: {e}"),
            ServeError::Snapshot(e) => write!(f, "cannot build engine: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Shared state every connection thread sees.
struct ServerShared {
    registry: Arc<ModelRegistry>,
    batcher: Arc<Batcher>,
    metrics: Arc<Metrics>,
    default_timeout: Option<Duration>,
    trace_ring: Option<Arc<TraceRing>>,
    shutdown: AtomicBool,
}

/// The running HTTP server.
pub struct Server {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    accept: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener, starts the batch worker and the accept
    /// loop, and returns immediately.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] if the address cannot be bound or the
    /// engine cannot be built.
    pub fn start(registry: Arc<ModelRegistry>, cfg: ServerConfig) -> Result<Self, ServeError> {
        let metrics = Arc::new(Metrics::with_slo(cfg.slo));
        let batcher = Arc::new(
            Batcher::start(Arc::clone(&registry), cfg.batcher, Arc::clone(&metrics))
                .map_err(ServeError::Snapshot)?,
        );
        let listener = TcpListener::bind(&cfg.addr).map_err(ServeError::Io)?;
        let addr = listener.local_addr().map_err(ServeError::Io)?;
        let shared = Arc::new(ServerShared {
            registry,
            batcher,
            metrics,
            default_timeout: cfg.default_timeout,
            trace_ring: cfg.trace_ring,
            shutdown: AtomicBool::new(false),
        });
        snn_obs::log_info!(
            "server listening",
            addr = addr.to_string(),
            tracing = shared.trace_ring.is_some(),
        );
        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("snn-serve-accept".into())
                .spawn(move || accept_loop(listener, shared))
                .expect("spawning accept loop")
        };
        Ok(Server { shared, addr, accept: Some(accept) })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics handle.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Blocks until the server shuts down. For embedding in a CLI
    /// process that serves until killed.
    pub fn join(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Stops accepting connections, drains the queue with
    /// [`Rejection::ShuttingDown`], and joins the accept loop.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.batcher.request_shutdown();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(&shared);
        // Connection threads are detached; they poll the shutdown
        // flag every READ_TIMEOUT and exit on their own.
        let _ = thread::Builder::new()
            .name("snn-serve-conn".into())
            .spawn(move || handle_connection(stream, shared));
    }
}

/// One parsed HTTP request.
struct Request {
    method: String,
    path: String,
    close: bool,
    content_type: Option<String>,
    body: Vec<u8>,
    /// When the first byte of this request was observed — the start of
    /// the `parse` trace stage (and of `total_us`). Idle keep-alive
    /// time between requests is not charged to anyone.
    received: Instant,
}

impl Request {
    /// `Some(reason)` if a declared `Content-Type` is not JSON. POSTs
    /// without the header are accepted (curl-without-`-H` ergonomics);
    /// a *wrong* declaration is a client bug worth a typed `400`.
    fn content_type_error(&self) -> Option<String> {
        content_type_error(self.content_type.as_deref())
    }
}

/// `Some(reason)` if a declared `Content-Type` is not JSON (`None`
/// when the header is absent or correct). Both front ends run the
/// same policy through this one function.
pub fn content_type_error(content_type: Option<&str>) -> Option<String> {
    let ct = content_type?;
    let essence = ct.split(';').next().unwrap_or(ct).trim();
    if essence.eq_ignore_ascii_case("application/json") {
        None
    } else {
        Some(format!("unsupported content-type `{essence}`; use application/json"))
    }
}

fn handle_connection(mut stream: TcpStream, shared: Arc<ServerShared>) {
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
        return;
    }
    // Responses are small and latency-sensitive; never wait for more
    // payload to coalesce.
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let req = match read_request(&mut stream, &mut buf, &shared.shutdown) {
            Ok(Some(req)) => req,
            Ok(None) => return, // clean close / idle timeout / shutdown
            Err(e) => {
                shared.metrics.bad_requests.inc();
                // An oversized declared body earns its own status; the
                // connection still closes without reading the payload.
                let (status, msg) = if e.kind() == ErrorKind::FileTooLarge {
                    (413, format!("request body too large (limit {MAX_BODY} bytes)"))
                } else {
                    (400, "malformed HTTP request".to_string())
                };
                snn_obs::log_debug!("unframeable request", status = status, error = e.to_string());
                let _ = write_response(
                    &mut stream,
                    status,
                    "application/json",
                    &error_body(&msg),
                    true,
                    None,
                );
                return;
            }
        };
        // Every request gets an identity; downstream spans and log
        // records on this thread (and, by value through the queue, in
        // the batch worker) attach to it.
        let ctx = TraceContext::new_root();
        let trace_hex = ctx.trace_hex();
        let _scope = tracectx::set_scope(ctx);
        let close = req.close;
        let mut cap = TraceCapture::default();
        let (status, body) = route(&req, &shared, &mut cap);
        // The Prometheus exposition is plain text; everything else
        // speaks JSON.
        let content_type = if req.method == "GET" && req.path == "/metrics" {
            "text/plain; version=0.0.4"
        } else {
            "application/json"
        };
        let write_res =
            write_response(&mut stream, status, content_type, &body, close, Some(&trace_hex));
        finish_request(&req, &shared, &ctx, status, &cap);
        if write_res.is_err() || close {
            return;
        }
    }
}

/// What [`handle_infer`] learned about a request's trip through the
/// queue, captured for the trace record built after the response is
/// written.
#[derive(Default)]
struct TraceCapture {
    /// Outcome label; empty means "derive from the status code".
    outcome: &'static str,
    /// Engine that served it (empty if it never reached one).
    engine: String,
    batch_size: u64,
    model_version: u64,
    queue_us: u64,
    batch_form_us: u64,
    /// When the request entered the queue.
    submitted: Option<Instant>,
    /// When the reply (or rejection) came back.
    replied: Option<Instant>,
}

/// Builds and offers the trace record for a finished `POST` request,
/// and feeds `/infer` outcomes into SLO accounting. Runs *after* the
/// response bytes are on the wire so the `respond` stage is real.
fn finish_request(
    req: &Request,
    shared: &ServerShared,
    ctx: &TraceContext,
    status: u16,
    cap: &TraceCapture,
) {
    if req.method != "POST" || (req.path != "/infer" && req.path != "/reload") {
        return;
    }
    let finished = Instant::now();
    let total_us = (finished - req.received).as_micros() as u64;
    if req.path == "/infer" {
        // Availability SLO: server-side failures only. Client errors
        // (400 validation) neither succeed nor count against the
        // error budget.
        if status != 400 {
            shared.metrics.slo_record(!matches!(status, 429 | 503 | 504), total_us);
        }
        if status >= 500 || status == 429 {
            snn_obs::log_warn!(
                "infer failed",
                status = status,
                outcome = outcome_label(status, cap),
                total_us = total_us,
            );
        }
    }
    // The five stages partition [received, finished] exactly:
    // `forward` is the in-flight remainder between submit and reply
    // minus the worker-attributed queue/batch_form time, and
    // `respond` starts when the reply came back (covering
    // serialization and the socket write).
    let submitted = cap.submitted.unwrap_or(finished);
    let replied = cap.replied.unwrap_or(submitted);
    let parse_us = (submitted - req.received).as_micros() as u64;
    let in_flight_us = (replied - submitted).as_micros() as u64;
    let forward_us = in_flight_us.saturating_sub(cap.queue_us + cap.batch_form_us);
    let respond_us = (finished - replied).as_micros() as u64;
    // The worker records queue_wait/batch_form/forward at dispatch;
    // the two HTTP-side stages are only observable here.
    if req.path == "/infer" {
        shared.metrics.stage_parse.record(parse_us as f64 * 1e-6);
        shared.metrics.stage_respond.record(respond_us as f64 * 1e-6);
    }
    let Some(ring) = &shared.trace_ring else { return };
    let stages = vec![
        StageTiming { stage: "parse".into(), micros: parse_us },
        StageTiming { stage: "queue_wait".into(), micros: cap.queue_us },
        StageTiming { stage: "batch_form".into(), micros: cap.batch_form_us },
        StageTiming { stage: "forward".into(), micros: forward_us },
        StageTiming { stage: "respond".into(), micros: respond_us },
    ];
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    ring.offer(TraceRecord {
        trace_id: ctx.trace_hex(),
        span_id: ctx.span_hex(),
        unix_ms,
        route: req.path.clone(),
        engine: cap.engine.clone(),
        status,
        outcome: outcome_label(status, cap).to_string(),
        batch_size: cap.batch_size,
        model_version: cap.model_version,
        total_us,
        stages,
    });
}

/// Outcome label for a trace record: what the handler said, or the
/// status code's default reading.
fn outcome_label(status: u16, cap: &TraceCapture) -> &'static str {
    if !cap.outcome.is_empty() {
        return cap.outcome;
    }
    match status {
        200 => "ok",
        400 | 413 => "bad_input",
        409 => "incompatible",
        429 => "queue_full",
        504 => "deadline",
        _ => "error",
    }
}

/// Reads one request from the stream. `Ok(None)` means the connection
/// should be closed without a response (peer hung up, idle timeout,
/// or server shutdown).
fn read_request(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    shutdown: &AtomicBool,
) -> io::Result<Option<Request>> {
    let idle_since = Instant::now();
    // Pipelined bytes left over from the previous request count as
    // "already arrived".
    let mut received: Option<Instant> = (!buf.is_empty()).then_some(idle_since);
    let mut chunk = [0u8; 4096];
    // Phase 1: accumulate until the blank line ending the head.
    let head_end = loop {
        if let Some(pos) = find_head_end(buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(io::Error::new(ErrorKind::InvalidData, "request head too large"));
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    Ok(None)
                } else {
                    Err(io::Error::new(ErrorKind::UnexpectedEof, "truncated request"))
                };
            }
            Ok(n) => {
                received.get_or_insert_with(Instant::now);
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shutdown.load(Ordering::Acquire)
                    || (buf.is_empty() && idle_since.elapsed() > IDLE_TIMEOUT)
                {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e),
        }
    };

    let RequestHead { method, path, content_length, close, content_type } =
        parse_head(&buf[..head_end])?;
    if content_length > MAX_BODY {
        return Err(io::Error::new(ErrorKind::FileTooLarge, "request body too large"));
    }

    // Phase 2: the body is `content_length` bytes after the head.
    let body_start = head_end + 4;
    while buf.len() < body_start + content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(io::Error::new(ErrorKind::UnexpectedEof, "truncated body")),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shutdown.load(Ordering::Acquire) {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e),
        }
    }
    let body = buf[body_start..body_start + content_length].to_vec();
    // Keep any pipelined bytes for the next request on this
    // connection.
    buf.drain(..body_start + content_length);
    let received = received.unwrap_or(idle_since);
    Ok(Some(Request { method, path, close, content_type, body, received }))
}

/// Byte offset of the `\r\n\r\n` terminating a request head, if it
/// has fully arrived.
pub fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The parts of a parsed request head both front ends care about.
#[derive(Debug, Clone)]
pub struct RequestHead {
    /// HTTP method verbatim (`GET`, `POST`, …).
    pub method: String,
    /// Request path (starts with `/`).
    pub path: String,
    /// Declared `Content-Length` (0 when absent).
    pub content_length: usize,
    /// Whether the client asked for `Connection: close`.
    pub close: bool,
    /// Declared `Content-Type`, verbatim.
    pub content_type: Option<String>,
}

/// Parses a request head (`buf` up to, not including, the blank
/// line). One parser for both front ends, so the thread-per-connection
/// and epoll servers cannot drift on framing policy.
///
/// # Errors
///
/// `InvalidData` on a non-UTF-8 head, a bad request line, or an
/// unparseable `Content-Length`.
pub fn parse_head(head: &[u8]) -> io::Result<RequestHead> {
    let head = std::str::from_utf8(head)
        .map_err(|_| io::Error::new(ErrorKind::InvalidData, "non-UTF-8 request head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    if method.is_empty() || !path.starts_with('/') {
        return Err(io::Error::new(ErrorKind::InvalidData, "bad request line"));
    }
    let mut content_length = 0usize;
    let mut close = false;
    let mut content_type = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| io::Error::new(ErrorKind::InvalidData, "bad content-length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            close = value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("content-type") {
            content_type = Some(value.to_string());
        }
    }
    Ok(RequestHead { method, path, content_length, close, content_type })
}

fn route(req: &Request, shared: &ServerShared, cap: &mut TraceCapture) -> (u16, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let circuit = shared.batcher.circuit_state();
            let fast_burn = shared.metrics.slo_fast_burn();
            let brownout = shared.metrics.brownout_active();
            healthz_body(shared.registry.info(), &[circuit], fast_burn, brownout)
        }
        ("GET", "/metrics") => (200, shared.metrics.render_prometheus()),
        ("GET", "/metrics.json") => {
            let snap = shared.metrics.snapshot(shared.registry.info());
            let summary = snap.to_value();
            let body = Value::Object(vec![
                ("summary".into(), summary),
                ("instruments".into(), shared.metrics.snapshot_instruments()),
            ]);
            (200, render(&body))
        }
        ("GET", "/debug/traces") => handle_traces_list(shared),
        ("GET", path) if path.starts_with("/debug/traces/") => {
            handle_trace_get(&path["/debug/traces/".len()..], shared)
        }
        ("POST", "/infer") => handle_infer(req, shared, cap),
        ("POST", "/reload") => handle_reload(req, shared),
        ("GET" | "POST", _) => (404, error_body("no such route")),
        _ => (405, error_body("method not allowed")),
    }
}

/// The `/healthz` status and JSON body. `circuits` carries one breaker
/// state per engine replica (the classic single-worker server passes a
/// one-element slice): `status` is `ok` only when **every** replica's
/// circuit is closed and no SLO budget is fast-burning; the top-level
/// `circuit` reports the worst replica state, and a `replicas` array
/// spells out each one.
///
/// The HTTP status distinguishes "degraded but serving" from "not
/// serving": when every replica's circuit is open, or an SLO budget is
/// fast-burning with no brownout mitigation engaged, the endpoint
/// answers `503` so load balancers stop routing here. An active
/// brownout (`degraded_mode: "brownout"`) keeps `200` — the instance
/// is degraded by choice and still has capacity.
pub fn healthz_body(
    info: ModelInfo,
    circuits: &[CircuitState],
    fast_burn: bool,
    brownout: bool,
) -> (u16, String) {
    let circuit_name = |c: CircuitState| match c {
        CircuitState::Closed => "closed",
        CircuitState::HalfOpen => "half-open",
        CircuitState::Open => "open",
    };
    let all_closed = circuits.iter().all(|c| *c == CircuitState::Closed);
    let all_open =
        !circuits.is_empty() && circuits.iter().all(|c| *c == CircuitState::Open);
    // `degraded` whenever any replica's circuit is not closed, an SLO
    // error budget is burning fast enough to page, or brownout
    // degradation is serving INT8 in place of the primary model.
    let status = if all_closed && !fast_burn && !brownout { "ok" } else { "degraded" };
    let http_status = if all_open || (fast_burn && !brownout) { 503 } else { 200 };
    let worst = circuits.iter().copied().max_by_key(|c| c.as_gauge() as i64);
    let replicas = circuits
        .iter()
        .enumerate()
        .map(|(i, c)| {
            Value::Object(vec![
                ("replica".into(), Value::Number(i as f64)),
                ("circuit".into(), Value::String(circuit_name(*c).into())),
            ])
        })
        .collect();
    let body = Value::Object(vec![
        ("status".into(), Value::String(status.into())),
        (
            "degraded_mode".into(),
            Value::String(if brownout { "brownout" } else { "none" }.into()),
        ),
        (
            "circuit".into(),
            Value::String(circuit_name(worst.unwrap_or(CircuitState::Closed)).into()),
        ),
        ("replicas".into(), Value::Array(replicas)),
        ("slo_fast_burn".into(), Value::Bool(fast_burn)),
        ("model".into(), Value::String(info.name)),
        ("version".into(), Value::Number(info.version as f64)),
        ("dtype".into(), Value::String(info.dtype)),
    ]);
    (http_status, render(&body))
}

/// `GET /debug/traces`: ring stats plus every kept trace, newest
/// first.
fn handle_traces_list(shared: &ServerShared) -> (u16, String) {
    traces_list_response(shared.trace_ring.as_deref())
}

/// The `GET /debug/traces` response against any trace ring (`None`
/// when tracing is disabled). Shared with the pool front end.
pub fn traces_list_response(ring: Option<&TraceRing>) -> (u16, String) {
    let Some(ring) = ring else {
        return (404, error_body("request tracing disabled (SNN_TRACE_RING=0)"));
    };
    let (kept, sampled_out) = ring.stats();
    let traces = ring.recent().iter().map(|r| r.to_value()).collect();
    let body = Value::Object(vec![
        ("capacity".into(), Value::Number(ring.capacity() as f64)),
        ("kept".into(), Value::Number(kept as f64)),
        ("sampled_out".into(), Value::Number(sampled_out as f64)),
        ("traces".into(), Value::Array(traces)),
    ]);
    (200, render(&body))
}

/// `GET /debug/traces/<id>` and `/debug/traces/<id>/chrome`.
fn handle_trace_get(rest: &str, shared: &ServerShared) -> (u16, String) {
    trace_get_response(rest, shared.trace_ring.as_deref())
}

/// The `GET /debug/traces/<id>[/chrome]` response against any trace
/// ring. Shared with the pool front end.
pub fn trace_get_response(rest: &str, ring: Option<&TraceRing>) -> (u16, String) {
    let Some(ring) = ring else {
        return (404, error_body("request tracing disabled (SNN_TRACE_RING=0)"));
    };
    let (id, chrome) = match rest.strip_suffix("/chrome") {
        Some(id) => (id, true),
        None => (rest, false),
    };
    if !tracectx::is_trace_hex(id) {
        return (400, error_body("trace id must be 32 lowercase hex chars"));
    }
    match ring.find(id) {
        Some(rec) if chrome => (200, render(&rec.chrome_value())),
        Some(rec) => (200, render(&rec.to_value())),
        None => (404, error_body("no such trace (evicted, sampled out, or never seen)")),
    }
}

fn handle_infer(req: &Request, shared: &ServerShared, cap: &mut TraceCapture) -> (u16, String) {
    if let Some(msg) = req.content_type_error() {
        shared.metrics.bad_requests.inc();
        cap.outcome = "bad_input";
        return (400, error_body(&msg));
    }
    let parsed = std::str::from_utf8(&req.body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(|text| parse_infer_body(text, shared.batcher.input_len()));
    let (input, timeout) = match parsed {
        Ok(p) => p,
        Err(msg) => {
            shared.metrics.bad_requests.inc();
            cap.outcome = "bad_input";
            return (400, error_body(&msg));
        }
    };
    let budget = timeout.or(shared.default_timeout);
    let deadline = budget.map(|d| Instant::now() + d);
    cap.submitted = Some(Instant::now());
    let waited = match shared.batcher.submit_traced(input, deadline, tracectx::current()) {
        Err(rejection) => Err(rejection),
        // The queue deadline plus grace bounds the whole round trip;
        // a reply that never comes (wedged engine) turns into a typed
        // 503 instead of a hung connection.
        Ok(ticket) => match budget {
            Some(d) => match ticket.wait_timeout(d + ENGINE_GRACE) {
                Some(result) => result,
                None => {
                    cap.replied = Some(Instant::now());
                    cap.outcome = "engine_timeout";
                    return (
                        503,
                        error_body(&format!(
                            "engine timed out after {}ms; request abandoned",
                            (d + ENGINE_GRACE).as_millis()
                        )),
                    );
                }
            },
            None => ticket.wait(),
        },
    };
    cap.replied = Some(Instant::now());
    match waited {
        Ok(reply) => {
            cap.outcome = "ok";
            cap.engine = reply.output.engine.clone();
            cap.batch_size = reply.batch_size as u64;
            cap.model_version = reply.model_version;
            cap.queue_us = reply.queue_us;
            cap.batch_form_us = reply.batch_form_us;
            (200, infer_success_body(&reply))
        }
        Err(rejection) => {
            if matches!(rejection, Rejection::BadInput { .. }) {
                shared.metrics.bad_requests.inc();
            }
            let (status, outcome) = rejection_status(&rejection);
            cap.outcome = outcome;
            (status, error_body(&rejection.to_string()))
        }
    }
}

/// Maps a queue [`Rejection`] to its HTTP status and trace outcome
/// label. One table for both front ends — a pool route and a classic
/// route must answer the same rejection identically.
pub fn rejection_status(rejection: &Rejection) -> (u16, &'static str) {
    match rejection {
        Rejection::QueueFull { .. } => (429, "queue_full"),
        Rejection::DeadlineExceeded { .. } => (504, "deadline"),
        Rejection::BadInput { .. } => (400, "bad_input"),
        Rejection::ShuttingDown => (503, "shutdown"),
        Rejection::WorkerPanic => (503, "worker_panic"),
        Rejection::CircuitOpen => (503, "circuit_open"),
        Rejection::AdmissionShed { .. } => (429, "admission_shed"),
    }
}

/// The `200` body for a served `/infer` request. Field order is part
/// of the wire contract: the pool front end reuses this builder, so
/// its responses are byte-identical to the single-worker path.
pub fn infer_success_body(reply: &crate::queue::InferReply) -> String {
    let mut entries = match reply.output.to_value() {
        Value::Object(entries) => entries,
        other => vec![("output".into(), other)],
    };
    entries.push(("batch_size".into(), Value::Number(reply.batch_size as f64)));
    entries.push(("queue_us".into(), Value::Number(reply.queue_us as f64)));
    entries.push(("batch_form_us".into(), Value::Number(reply.batch_form_us as f64)));
    entries.push(("infer_us".into(), Value::Number(reply.infer_us as f64)));
    entries.push(("model_version".into(), Value::Number(reply.model_version as f64)));
    render(&Value::Object(entries))
}

/// Decodes `{"input": [...], "timeout_ms": n?}` by hand over the
/// `Value` tree — the vendored serde derive has no optional fields, so
/// a typed struct would reject bodies omitting `timeout_ms`. Shared
/// with the pool front end.
///
/// # Errors
///
/// Returns the `400` error message for a malformed body.
pub fn parse_infer_body(
    text: &str,
    expected_len: usize,
) -> Result<(Vec<f32>, Option<Duration>), String> {
    let value = serde_json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let Value::Object(entries) = value else {
        return Err("request body must be a JSON object".into());
    };
    let mut input: Option<Vec<f32>> = None;
    let mut timeout: Option<Duration> = None;
    for (key, val) in entries {
        match key.as_str() {
            "input" => {
                let Value::Array(items) = val else {
                    return Err("`input` must be an array of numbers".into());
                };
                let mut xs = Vec::with_capacity(items.len());
                for item in items {
                    let Value::Number(n) = item else {
                        return Err("`input` must be an array of numbers".into());
                    };
                    let v = n as f32;
                    if !v.is_finite() {
                        return Err("`input` values must be finite".into());
                    }
                    xs.push(v);
                }
                input = Some(xs);
            }
            "timeout_ms" => {
                let Value::Number(n) = val else {
                    return Err("`timeout_ms` must be a number".into());
                };
                if !(n.is_finite() && n >= 0.0) {
                    return Err("`timeout_ms` must be a non-negative number".into());
                }
                timeout = Some(Duration::from_micros((n * 1000.0) as u64));
            }
            other => return Err(format!("unknown field `{other}`")),
        }
    }
    let input = input.ok_or_else(|| "missing required field `input`".to_string())?;
    if input.len() != expected_len {
        return Err(format!(
            "bad input: expected {expected_len} values, got {}",
            input.len()
        ));
    }
    Ok((input, timeout))
}

fn handle_reload(req: &Request, shared: &ServerShared) -> (u16, String) {
    if let Some(msg) = req.content_type_error() {
        shared.metrics.bad_requests.inc();
        return (400, error_body(&msg));
    }
    let (status, body) = apply_reload(&shared.registry, &req.body);
    if status == 400 {
        shared.metrics.bad_requests.inc();
    }
    (status, body)
}

/// Parses a `/reload` body and swaps it into the registry, returning
/// the HTTP status and structured receipt. Shared with the pool front
/// end — every engine replica polls the same registry version and
/// rebuilds at its next batch boundary, so one swap retargets all
/// replicas atomically per batch.
pub fn apply_reload(registry: &ModelRegistry, body: &[u8]) -> (u16, String) {
    // `ServedModel::from_json` sniffs the artifact flavor: f32
    // snapshots (`layers`) and quantized artifacts (`format`/`stages`)
    // both reload through the same endpoint; the batch worker rebuilds
    // the matching engine at the next batch boundary.
    let parsed = std::str::from_utf8(body)
        .map_err(|_| SnapshotError::Malformed("body is not UTF-8".into()))
        .and_then(ServedModel::from_json);
    let model = match parsed {
        Ok(s) => s,
        Err(e) => {
            return (400, error_body(&format!("rejected snapshot: {e}")));
        }
    };
    match registry.swap(model, "reload") {
        Ok(receipt) => {
            // Structured swap receipt: what was replaced (captured
            // inside the swap's critical section, so racing reloads
            // each report their own predecessor), what now serves, and
            // the new model's content hash (matching the artifact
            // registry's identity).
            let info = &receipt.info;
            snn_obs::log_info!(
                "model reloaded",
                old_version = receipt.replaced,
                new_version = info.version,
                dtype = info.dtype.clone(),
                hash = info.hash.clone(),
            );
            let body = Value::Object(vec![
                ("ok".into(), Value::Bool(true)),
                ("old_version".into(), Value::Number(receipt.replaced as f64)),
                ("new_version".into(), Value::Number(info.version as f64)),
                ("dtype".into(), Value::String(info.dtype.clone())),
                ("model_hash".into(), Value::String(info.hash.clone())),
                (
                    "model".into(),
                    serde_json::parse(&serde_json::to_string(info).expect("info serialize"))
                        .expect("info JSON reparses"),
                ),
            ]);
            (200, render(&body))
        }
        Err(e @ SwapError::Invalid(_)) => (400, error_body(&e.to_string())),
        Err(e @ SwapError::Incompatible { .. }) => (409, error_body(&e.to_string())),
    }
}

/// Renders `{"error": message}` — the uniform error payload.
pub fn error_body(message: &str) -> String {
    render(&Value::Object(vec![(
        "error".into(),
        Value::String(message.into()),
    )]))
}

/// Serializes a JSON [`Value`] body.
pub fn render(value: &Value) -> String {
    serde_json::to_string(value).expect("Value serializes infallibly")
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    }
}

/// Formats a complete HTTP/1.1 response (head + body) as one buffer.
///
/// Shared by the blocking per-connection writer here and the
/// nonblocking pool front end, so both emit byte-identical wire
/// output for the same (status, body) pair.
pub fn format_response(
    status: u16,
    content_type: &str,
    body: &str,
    close: bool,
    trace_id: Option<&str>,
) -> String {
    let mut response = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status,
        status_text(status),
        content_type,
        body.len(),
        if close { "close" } else { "keep-alive" },
    );
    // Overload statuses invite the client back: admission sheds (429)
    // and circuit/shutdown sheds (503) clear on the order of the
    // breaker cooldown, so a one-second backoff hint is honest. Both
    // front ends emit it by construction.
    if status == 429 || status == 503 {
        response.push_str("Retry-After: 1\r\n");
    }
    if let Some(id) = trace_id {
        response.push_str("x-snn-trace-id: ");
        response.push_str(id);
        response.push_str("\r\n");
    }
    response.push_str("\r\n");
    response.push_str(body);
    response
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    close: bool,
    trace_id: Option<&str>,
) -> io::Result<()> {
    // One write for the whole response: head and body in separate
    // segments trip Nagle + delayed-ACK on loopback (~40ms stalls).
    let response = format_response(status, content_type, body, close, trace_id);
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_core::{LifConfig, NetworkSnapshot, SpikingNetwork};
    use snn_tensor::Shape;

    fn snapshot(seed: u64) -> NetworkSnapshot {
        let lif = LifConfig { theta: 0.5, ..LifConfig::paper_default() };
        let net = SpikingNetwork::builder(Shape::d3(1, 8, 8), seed)
            .conv(4, 3, 1, 1, lif)
            .unwrap()
            .maxpool(2)
            .unwrap()
            .flatten()
            .unwrap()
            .dense(4, lif)
            .unwrap()
            .build()
            .unwrap();
        NetworkSnapshot::from_network(&net)
    }

    fn start_server() -> Server {
        let registry = Arc::new(ModelRegistry::new(snapshot(11), "demo").unwrap());
        let cfg = ServerConfig {
            batcher: BatcherConfig { timesteps: 2, ..BatcherConfig::default() },
            ..ServerConfig::default()
        };
        Server::start(registry, cfg).unwrap()
    }

    /// Raw one-shot HTTP client: returns (status, head, body).
    fn request_full(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: &str,
    ) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        let req = format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(req.as_bytes()).unwrap();
        let mut response = Vec::new();
        stream.read_to_end(&mut response).unwrap();
        let text = String::from_utf8(response).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").expect("complete response");
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        (status, head.to_string(), body.to_string())
    }

    /// Like [`request_full`] but drops the head.
    fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        let (status, _, body) = request_full(addr, method, path, body);
        (status, body)
    }

    /// The `x-snn-trace-id` value from a response head.
    fn trace_id_of(head: &str) -> String {
        head.lines()
            .find_map(|l| l.strip_prefix("x-snn-trace-id: "))
            .unwrap_or_else(|| panic!("no x-snn-trace-id header in {head}"))
            .trim()
            .to_string()
    }

    /// Sends raw bytes and returns (status, full response text).
    /// Unlike [`request`], makes no attempt to be a well-formed
    /// client — that is the point.
    fn raw_request(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw).unwrap();
        let mut response = Vec::new();
        stream.read_to_end(&mut response).unwrap();
        let text = String::from_utf8_lossy(&response).to_string();
        let status = text
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        (status, text)
    }

    #[test]
    fn healthz_reports_model() {
        let server = start_server();
        let (status, body) = request(server.addr(), "GET", "/healthz", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "body: {body}");
        assert!(body.contains("\"degraded_mode\":\"none\""), "body: {body}");
        assert!(body.contains("\"model\":\"demo\""), "body: {body}");
    }

    #[test]
    fn healthz_status_matrix_separates_degraded_from_unserving() {
        let info = || ModelRegistry::new(snapshot(11), "demo").unwrap().info();
        use CircuitState::{Closed, Open};
        // (circuits, fast_burn, brownout) → (http, status, mode)
        type Case = (&'static [CircuitState], bool, bool, u16, &'static str, &'static str);
        let cases: [Case; 6] = [
            (&[Closed, Closed], false, false, 200, "ok", "none"),
            // One of two replicas down: degraded but still serving.
            (&[Open, Closed], false, false, 200, "degraded", "none"),
            // Every replica's breaker open: nothing can be served.
            (&[Open, Open], false, false, 503, "degraded", "none"),
            // Unmitigated fast burn: erroring fast, stop routing here.
            (&[Closed, Closed], true, false, 503, "degraded", "none"),
            // Brownout engaged: degraded by choice, still has capacity.
            (&[Closed, Closed], true, true, 200, "degraded", "brownout"),
            // Burn cleared but the hysteresis hold keeps brownout on.
            (&[Closed, Closed], false, true, 200, "degraded", "brownout"),
        ];
        for (circuits, burn, brownout, want_http, want_status, want_mode) in cases {
            let (http, body) = healthz_body(info(), circuits, burn, brownout);
            assert_eq!(http, want_http, "case {circuits:?}/{burn}/{brownout}: {body}");
            assert!(
                body.contains(&format!("\"status\":\"{want_status}\"")),
                "case {circuits:?}/{burn}/{brownout}: {body}"
            );
            assert!(
                body.contains(&format!("\"degraded_mode\":\"{want_mode}\"")),
                "case {circuits:?}/{burn}/{brownout}: {body}"
            );
        }
    }

    #[test]
    fn infer_round_trip_reports_firing_rates() {
        let server = start_server();
        let input: Vec<String> = (0..64).map(|i| format!("{}", (i % 7) as f32 / 7.0)).collect();
        let body = format!("{{\"input\":[{}]}}", input.join(","));
        let (status, reply) = request(server.addr(), "POST", "/infer", &body);
        assert_eq!(status, 200, "reply: {reply}");
        for field in ["\"class\":", "\"counts\":", "\"layers\":", "\"rate\":", "\"batch_size\":"] {
            assert!(reply.contains(field), "missing {field} in {reply}");
        }
    }

    #[test]
    fn infer_rejects_malformed_bodies() {
        let server = start_server();
        let cases = [
            ("not json at all", "invalid JSON"),
            ("[1,2,3]", "must be a JSON object"),
            ("{\"input\":\"nope\"}", "array of numbers"),
            ("{\"input\":[1,2,3]}", "expected 64 values"),
            ("{\"input\":[1e999]}", "must be finite"),
            ("{}", "missing required field"),
        ];
        for (body, expect) in cases {
            let (status, reply) = request(server.addr(), "POST", "/infer", body);
            assert_eq!(status, 400, "body {body} gave {reply}");
            assert!(reply.contains(expect), "body {body} gave {reply}");
        }
        let m = server.metrics();
        assert_eq!(m.bad_requests.get(), cases.len() as u64);
    }

    #[test]
    fn oversized_declared_body_gets_413_without_reading_it() {
        let server = start_server();
        // 9MiB declared, zero bytes sent: the server must answer from
        // the headers alone instead of buffering toward OOM.
        let head = format!(
            "POST /infer HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            9 * 1024 * 1024
        );
        let (status, text) = raw_request(server.addr(), head.as_bytes());
        assert_eq!(status, 413, "response: {text}");
        assert!(text.contains("too large"), "response: {text}");
        // The instance is still healthy afterwards.
        let (status, _) = request(server.addr(), "GET", "/healthz", "");
        assert_eq!(status, 200);
        assert_eq!(server.metrics().bad_requests.get(), 1);
    }

    #[test]
    fn truncated_body_and_mid_body_drop_do_not_wedge_the_server() {
        let server = start_server();
        // Declares 50 bytes, sends 10, then drops the connection. The
        // read loop must diagnose the EOF instead of waiting forever.
        {
            let mut stream = TcpStream::connect(server.addr()).unwrap();
            stream
                .write_all(
                    b"POST /infer HTTP/1.1\r\nHost: t\r\nContent-Length: 50\r\n\r\n{\"input\":[",
                )
                .unwrap();
            drop(stream);
        }
        // Truncated *JSON* with an honest Content-Length parses as a
        // body and earns a typed 400.
        let (status, reply) = request(server.addr(), "POST", "/infer", "{\"input\":[1,2,");
        assert_eq!(status, 400, "reply: {reply}");
        assert!(reply.contains("invalid JSON"), "reply: {reply}");
        // Both abuses left the server serving.
        let (status, body) = request(server.addr(), "GET", "/healthz", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "body: {body}");
    }

    #[test]
    fn wrong_content_type_is_rejected_with_400() {
        let server = start_server();
        let body = "{\"input\":[]}";
        for path in ["/infer", "/reload"] {
            let raw = format!(
                "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            );
            let (status, text) = raw_request(server.addr(), raw.as_bytes());
            assert_eq!(status, 400, "{path} response: {text}");
            assert!(text.contains("unsupported content-type"), "{path} response: {text}");
        }
        // A correct declaration (with parameters) is accepted — the
        // request then fails validation for its own reasons, not the
        // header.
        let raw = format!(
            "POST /infer HTTP/1.1\r\nHost: t\r\nContent-Type: application/json; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        let (status, text) = raw_request(server.addr(), raw.as_bytes());
        assert_eq!(status, 400, "response: {text}");
        assert!(text.contains("expected 64 values"), "response: {text}");
    }

    #[test]
    fn worker_panic_surfaces_as_503_and_healthz_degrades_then_recovers() {
        // Threshold 1 so the single injected panic opens the circuit.
        let plan = Arc::new(
            snn_fault::FaultPlan::parse("panic@serve.worker:1", 0).unwrap(),
        );
        let _guard = snn_fault::install(plan);
        let registry = Arc::new(ModelRegistry::new(snapshot(11), "demo").unwrap());
        let cfg = ServerConfig {
            batcher: BatcherConfig {
                timesteps: 2,
                breaker_threshold: 1,
                breaker_cooldown: Duration::from_millis(50),
                ..BatcherConfig::default()
            },
            ..ServerConfig::default()
        };
        let server = Server::start(registry, cfg).unwrap();
        let input: Vec<String> = (0..64).map(|i| format!("{}", (i % 5) as f32 / 5.0)).collect();
        let body = format!("{{\"input\":[{}]}}", input.join(","));

        let (status, reply) = request(server.addr(), "POST", "/infer", &body);
        assert_eq!(status, 503, "reply: {reply}");
        assert!(reply.contains("panicked"), "reply: {reply}");

        // Every breaker (the only one) is open: nothing can be served,
        // so the health check must tell load balancers to back off.
        let (status, health) = request(server.addr(), "GET", "/healthz", "");
        assert_eq!(status, 503, "all breakers open answers 503");
        assert!(health.contains("\"status\":\"degraded\""), "health: {health}");
        assert!(health.contains("\"degraded_mode\":\"none\""), "health: {health}");
        assert!(health.contains("\"circuit\":\"open\""), "health: {health}");

        // After the cooldown the half-open probe succeeds (the
        // occurrence rule already fired) and service self-heals.
        std::thread::sleep(Duration::from_millis(60));
        let (status, reply) = request(server.addr(), "POST", "/infer", &body);
        assert_eq!(status, 200, "probe reply: {reply}");
        let (status, health) = request(server.addr(), "GET", "/healthz", "");
        assert_eq!(status, 200, "healed instance answers 200 again");
        assert!(health.contains("\"status\":\"ok\""), "health: {health}");
        assert_eq!(server.metrics().worker_panics.get(), 1);
    }

    #[test]
    fn metrics_and_unknown_routes() {
        let server = start_server();
        let (status, body) = request(server.addr(), "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(body.ends_with('\n'), "exposition must end with a newline");
        for needle in [
            "# TYPE snn_serve_requests_completed_total counter\n",
            "# HELP snn_serve_request_latency_seconds ",
            "# TYPE snn_serve_batch_size histogram\n",
            "# TYPE snn_serve_queue_depth gauge\n",
            "# TYPE snn_serve_stage_queue_wait_seconds histogram\n",
            "# TYPE snn_slo_fast_burn gauge\n",
        ] {
            assert!(body.contains(needle), "missing {needle:?} in {body}");
        }
        // The pre-PR-3 bare-name alias series are gone.
        for gone in ["\ncompleted 0\n", "\nreceived 0\n", "\nrejected_full 0\n"] {
            assert!(!body.contains(gone), "legacy alias {gone:?} still present in {body}");
        }
        let (status, json) = request(server.addr(), "GET", "/metrics.json", "");
        assert_eq!(status, 200);
        for field in ["\"summary\":", "\"mean_batch_size\":", "\"latency_us\":", "\"instruments\":", "\"queue_depth\""] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        serde_json::parse(&json).expect("metrics.json body parses");
        let (status, _) = request(server.addr(), "GET", "/nope", "");
        assert_eq!(status, 404);
        let (status, _) = request(server.addr(), "DELETE", "/infer", "");
        assert_eq!(status, 405);
    }

    #[test]
    fn reload_swaps_and_rejects() {
        let server = start_server();
        let good = serde_json::to_string(&snapshot(77)).unwrap();
        let (status, body) = request(server.addr(), "POST", "/reload", &good);
        assert_eq!(status, 200, "reply: {body}");
        // Structured receipt: old/new version, the model's content
        // hash, and the full info object.
        assert!(body.contains("\"ok\":true"), "reply: {body}");
        assert!(body.contains("\"old_version\":1"), "reply: {body}");
        assert!(body.contains("\"new_version\":2"), "reply: {body}");
        assert!(body.contains("\"model_hash\":\""), "reply: {body}");
        assert!(body.contains("\"version\":2"), "reply: {body}");
        let parsed = serde_json::parse(&body).expect("reload receipt parses");
        if let Value::Object(fields) = parsed {
            let hash = fields.iter().find(|(k, _)| k == "model_hash").map(|(_, v)| v.clone());
            match hash {
                Some(Value::String(h)) => {
                    assert_eq!(h.len(), 16, "fnv64 hex is 16 digits, got {h}");
                }
                other => panic!("model_hash missing or not a string: {other:?}"),
            }
        } else {
            panic!("reload receipt is not an object");
        }

        let (status, _) = request(server.addr(), "POST", "/reload", "{\"bad\":1}");
        assert_eq!(status, 400);

        // Incompatible interface: a model with a different class count.
        let lif = LifConfig { theta: 0.5, ..LifConfig::paper_default() };
        let other = SpikingNetwork::builder(Shape::d3(1, 8, 8), 5)
            .flatten()
            .unwrap()
            .dense(9, lif)
            .unwrap()
            .build()
            .unwrap();
        let other = serde_json::to_string(&NetworkSnapshot::from_network(&other)).unwrap();
        let (status, body) = request(server.addr(), "POST", "/reload", &other);
        assert_eq!(status, 409, "reply: {body}");

        // /healthz reflects the surviving version-2 model.
        let (_, health) = request(server.addr(), "GET", "/healthz", "");
        assert!(health.contains("\"version\":2"), "health: {health}");
    }

    #[test]
    fn reload_with_quantized_artifact_serves_int8_end_to_end() {
        let server = start_server();
        let input: Vec<String> = (0..64).map(|i| format!("{}", (i % 7) as f32 / 7.0)).collect();
        let infer_body = format!("{{\"input\":[{}]}}", input.join(","));
        let (status, reply) = request(server.addr(), "POST", "/infer", &infer_body);
        assert_eq!(status, 200, "reply: {reply}");
        assert!(reply.contains("\"engine\":\"f32\""), "reply: {reply}");

        // Quantize the served model and promote it through /reload.
        let snap = snapshot(11);
        let split: Vec<Vec<f32>> = (0..4)
            .map(|s| (0..64).map(|j| ((s + j) % 7) as f32 / 7.0).collect())
            .collect();
        let cal = snn_quant::calibrate(&snap, &split, 2).unwrap();
        let artifact = snn_quant::quantize_snapshot(&snap, &cal, 8).unwrap();
        let body = serde_json::to_string(&artifact).unwrap();
        let (status, receipt) = request(server.addr(), "POST", "/reload", &body);
        assert_eq!(status, 200, "receipt: {receipt}");
        assert!(receipt.contains("\"dtype\":\"int8\""), "receipt: {receipt}");
        assert!(receipt.contains("\"quant\":"), "receipt: {receipt}");
        assert!(receipt.contains("\"bits\":8"), "receipt: {receipt}");

        // /healthz reflects the dtype, /infer runs the integer engine,
        // /metrics counts the route.
        let (_, health) = request(server.addr(), "GET", "/healthz", "");
        assert!(health.contains("\"dtype\":\"int8\""), "health: {health}");
        let (status, reply) = request(server.addr(), "POST", "/infer", &infer_body);
        assert_eq!(status, 200, "reply: {reply}");
        assert!(reply.contains("\"engine\":\"int8\""), "reply: {reply}");
        for field in ["\"class\":", "\"counts\":", "\"layers\":", "\"rate\":"] {
            assert!(reply.contains(field), "missing {field} in {reply}");
        }
        let (_, metrics) = request(server.addr(), "GET", "/metrics", "");
        assert!(
            metrics.contains("snn_serve_engine_int8_requests_total 1"),
            "metrics: {metrics}"
        );
        assert!(
            metrics.contains("snn_serve_engine_f32_requests_total 1"),
            "metrics: {metrics}"
        );

        // A quantized artifact with a mismatched interface still 409s.
        let other_q = {
            let lif = LifConfig { theta: 0.5, ..LifConfig::paper_default() };
            let small = SpikingNetwork::builder(Shape::d3(1, 6, 6), 5)
                .flatten()
                .unwrap()
                .dense(4, lif)
                .unwrap()
                .build()
                .unwrap();
            let ssnap = NetworkSnapshot::from_network(&small);
            let split: Vec<Vec<f32>> = (0..3).map(|_| vec![0.5f32; 36]).collect();
            let cal = snn_quant::calibrate(&ssnap, &split, 2).unwrap();
            snn_quant::quantize_snapshot(&ssnap, &cal, 8).unwrap()
        };
        let (status, body) =
            request(server.addr(), "POST", "/reload", &serde_json::to_string(&other_q).unwrap());
        assert_eq!(status, 409, "reply: {body}");
    }

    #[test]
    fn shutdown_is_clean_and_idempotent() {
        let mut server = start_server();
        let addr = server.addr();
        let (status, _) = request(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        server.shutdown();
        server.shutdown();
        // After shutdown the listener is gone: either the connection
        // is refused or it resets without a response.
        let gone = match TcpStream::connect(addr) {
            Err(_) => true,
            Ok(mut s) => {
                let _ = s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
                let mut out = Vec::new();
                matches!(s.read_to_end(&mut out), Ok(0) | Err(_)) && out.is_empty()
            }
        };
        assert!(gone, "server still answering after shutdown");
    }

    // --- JSON navigation helpers for the vendored serde Value.

    fn get<'a>(v: &'a Value, k: &str) -> Option<&'a Value> {
        v.as_object()?.iter().find(|(n, _)| n == k).map(|(_, x)| x)
    }

    fn get_str<'a>(v: &'a Value, k: &str) -> Option<&'a str> {
        match get(v, k)? {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    fn get_num(v: &Value, k: &str) -> Option<f64> {
        match get(v, k)? {
            Value::Number(n) => Some(*n),
            Value::BigInt(i) => Some(*i as f64),
            _ => None,
        }
    }

    fn traced_server(policy: snn_obs::TailPolicy) -> Server {
        let registry = Arc::new(ModelRegistry::new(snapshot(11), "demo").unwrap());
        let cfg = ServerConfig {
            batcher: BatcherConfig { timesteps: 2, ..BatcherConfig::default() },
            trace_ring: Some(Arc::new(TraceRing::new(64, policy))),
            ..ServerConfig::default()
        };
        Server::start(registry, cfg).unwrap()
    }

    #[test]
    fn infer_trace_is_locatable_by_header_id_with_five_stages_summing_to_wall() {
        let server = traced_server(snn_obs::TailPolicy::default());
        let input: Vec<String> = (0..64).map(|i| format!("{}", (i % 7) as f32 / 7.0)).collect();
        let body = format!("{{\"input\":[{}]}}", input.join(","));
        let (status, head, reply) = request_full(server.addr(), "POST", "/infer", &body);
        assert_eq!(status, 200, "reply: {reply}");
        assert!(reply.contains("\"batch_form_us\":"), "reply: {reply}");
        let id = trace_id_of(&head);
        assert!(snn_obs::tracectx::is_trace_hex(&id), "malformed id {id}");

        // Non-traced routes still carry the header.
        let (_, head, _) = request_full(server.addr(), "GET", "/healthz", "");
        assert_ne!(trace_id_of(&head), id, "each request gets its own id");

        let (status, listing) = request(server.addr(), "GET", "/debug/traces", "");
        assert_eq!(status, 200, "listing: {listing}");
        let parsed = serde_json::parse(&listing).unwrap();
        assert_eq!(get_num(&parsed, "capacity"), Some(64.0));
        assert!(get_num(&parsed, "kept").unwrap() >= 1.0, "listing: {listing}");

        let (status, rec) = request(server.addr(), "GET", &format!("/debug/traces/{id}"), "");
        assert_eq!(status, 200, "record: {rec}");
        let rec = serde_json::parse(&rec).unwrap();
        assert_eq!(get_str(&rec, "trace_id"), Some(id.as_str()));
        assert_eq!(get_str(&rec, "route"), Some("/infer"));
        assert_eq!(get_str(&rec, "outcome"), Some("ok"));
        assert_eq!(get_str(&rec, "engine"), Some("f32"));
        assert!(get_num(&rec, "batch_size").unwrap() >= 1.0);
        let total = get_num(&rec, "total_us").unwrap();
        let Some(Value::Array(stages)) = get(&rec, "stages") else { panic!("stages missing") };
        let names: Vec<&str> =
            stages.iter().map(|s| get_str(s, "stage").unwrap()).collect();
        assert_eq!(names, ["parse", "queue_wait", "batch_form", "forward", "respond"]);
        let sum: f64 = stages.iter().map(|s| get_num(s, "micros").unwrap()).sum();
        assert!(
            (sum - total).abs() <= 0.05 * total + 5.0,
            "stages sum {sum}us vs wall {total}us"
        );
        assert!(
            stages.iter().any(|s| get_num(s, "micros").unwrap() > 0.0),
            "all stages zero: {stages:?}"
        );

        // Chrome export: meta event + one X event per stage.
        let (status, chrome) =
            request(server.addr(), "GET", &format!("/debug/traces/{id}/chrome"), "");
        assert_eq!(status, 200, "chrome: {chrome}");
        let Value::Array(events) = serde_json::parse(&chrome).unwrap() else {
            panic!("chrome export must be an array")
        };
        assert_eq!(events.len(), 1 + 5, "chrome: {chrome}");

        // Unknown and malformed ids answer typed errors.
        let (status, _) =
            request(server.addr(), "GET", &format!("/debug/traces/{}", "0".repeat(32)), "");
        assert_eq!(status, 404);
        let (status, _) = request(server.addr(), "GET", "/debug/traces/nope", "");
        assert_eq!(status, 400);
    }

    #[test]
    fn tail_sampling_drops_fast_successes_but_keeps_client_errors() {
        // sample=0, slow threshold unreachable: only failures survive.
        let server = traced_server(snn_obs::TailPolicy { slow_us: u64::MAX, sample: 0.0 });
        let input: Vec<String> = (0..64).map(|i| format!("{}", (i % 7) as f32 / 7.0)).collect();
        let ok_body = format!("{{\"input\":[{}]}}", input.join(","));
        let (status, head, _) = request_full(server.addr(), "POST", "/infer", &ok_body);
        assert_eq!(status, 200);
        let ok_id = trace_id_of(&head);
        let (status, head, _) = request_full(server.addr(), "POST", "/infer", "{\"input\":[1]}");
        assert_eq!(status, 400);
        let bad_id = trace_id_of(&head);

        let (_, rec) = request(server.addr(), "GET", &format!("/debug/traces/{ok_id}"), "");
        assert!(rec.contains("no such trace"), "fast success must be sampled out: {rec}");
        let (status, rec) = request(server.addr(), "GET", &format!("/debug/traces/{bad_id}"), "");
        assert_eq!(status, 200, "error outcome must always be kept: {rec}");
        assert!(rec.contains("\"outcome\":\"bad_input\""), "record: {rec}");
    }

    #[test]
    fn debug_traces_404_when_tracing_disabled() {
        let registry = Arc::new(ModelRegistry::new(snapshot(11), "demo").unwrap());
        let cfg = ServerConfig {
            batcher: BatcherConfig { timesteps: 2, ..BatcherConfig::default() },
            trace_ring: None,
            ..ServerConfig::default()
        };
        let server = Server::start(registry, cfg).unwrap();
        let (status, body) = request(server.addr(), "GET", "/debug/traces", "");
        assert_eq!(status, 404, "body: {body}");
        assert!(body.contains("tracing disabled"), "body: {body}");
    }

    #[test]
    fn healthz_degrades_on_fast_slo_burn() {
        let registry = Arc::new(ModelRegistry::new(snapshot(11), "demo").unwrap());
        let cfg = ServerConfig {
            batcher: BatcherConfig { timesteps: 2, ..BatcherConfig::default() },
            slo: Some(SloConfig::parse("avail=99.9").unwrap()),
            ..ServerConfig::default()
        };
        let server = Server::start(registry, cfg).unwrap();
        let (_, health) = request(server.addr(), "GET", "/healthz", "");
        assert!(health.contains("\"status\":\"ok\""), "health: {health}");
        assert!(health.contains("\"slo_fast_burn\":false"), "health: {health}");
        // Burn the error budget far past the fast threshold.
        for _ in 0..50 {
            server.metrics().slo_record(false, 1_000);
        }
        // Fast burn with no brownout artifact published means there is
        // no mitigation: the health check flips hard to 503.
        let (status, health) = request(server.addr(), "GET", "/healthz", "");
        assert_eq!(status, 503, "unmitigated fast burn answers 503");
        assert!(health.contains("\"status\":\"degraded\""), "health: {health}");
        assert!(health.contains("\"degraded_mode\":\"none\""), "health: {health}");
        assert!(health.contains("\"slo_fast_burn\":true"), "health: {health}");
        assert!(health.contains("\"circuit\":\"closed\""), "degradation is SLO-driven");
        let (_, metrics) = request(server.addr(), "GET", "/metrics", "");
        assert!(metrics.contains("\nsnn_slo_fast_burn 1\n"), "metrics: {metrics}");
    }

    /// Satellite: the text and JSON expositions must not drift. Every
    /// sample in `/metrics` must appear in `/metrics.json` — with the
    /// same value for this instance's families (globals are shared
    /// with concurrently running tests, so only presence is asserted
    /// there) — and histogram sums/counts must be consistent with
    /// their buckets.
    #[test]
    fn metrics_text_and_json_expositions_agree() {
        let server = start_server();
        let input: Vec<String> = (0..64).map(|i| format!("{}", (i % 7) as f32 / 7.0)).collect();
        let body = format!("{{\"input\":[{}]}}", input.join(","));
        for _ in 0..3 {
            let (status, _) = request(server.addr(), "POST", "/infer", &body);
            assert_eq!(status, 200);
        }
        let (_, text) = request(server.addr(), "GET", "/metrics", "");
        let (_, json) = request(server.addr(), "GET", "/metrics.json", "");
        let parsed = serde_json::parse(&json).unwrap();
        let Some(Value::Array(instruments)) = get(&parsed, "instruments") else {
            panic!("no instruments array in {json}")
        };

        // Reconstruct the expected sample set from the JSON dump.
        let mut expected: std::collections::BTreeMap<String, f64> = std::collections::BTreeMap::new();
        for inst in instruments {
            let name = get_str(inst, "name").unwrap().to_string();
            match get_str(inst, "kind").unwrap() {
                "histogram" => {
                    let Some(Value::Array(bounds)) = get(inst, "bounds") else { panic!() };
                    let Some(Value::Array(counts)) = get(inst, "counts") else { panic!() };
                    let nums = |xs: &[Value]| -> Vec<f64> {
                        xs.iter()
                            .map(|x| match x {
                                Value::Number(n) => *n,
                                Value::BigInt(i) => *i as f64,
                                other => panic!("non-numeric {other:?}"),
                            })
                            .collect()
                    };
                    let bounds = nums(bounds);
                    let counts = nums(counts);
                    assert_eq!(counts.len(), bounds.len() + 1, "{name}: overflow bucket");
                    let sum = get_num(inst, "sum").unwrap();
                    let count = get_num(inst, "count").unwrap();
                    let max = get_num(inst, "max").unwrap();
                    // Bucket consistency: totals match, mean <= max.
                    let total: f64 = counts.iter().sum();
                    assert_eq!(total, count, "{name}: bucket counts vs count");
                    if count > 0.0 {
                        assert!(sum / count <= max + 1e-9, "{name}: mean above max");
                    }
                    let mut cum = 0.0;
                    for (b, c) in bounds.iter().zip(&counts) {
                        cum += c;
                        expected.insert(format!("{name}_bucket{{le=\"{b}\"}}"), cum);
                    }
                    expected.insert(format!("{name}_bucket{{le=\"+Inf\"}}"), count);
                    expected.insert(format!("{name}_sum"), sum);
                    expected.insert(format!("{name}_count"), count);
                }
                _ => {
                    expected.insert(name.clone(), get_num(inst, "value").unwrap());
                }
            }
        }

        let mut samples = 0usize;
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            samples += 1;
            let (name, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad line {line}"));
            let got = expected
                .get(name)
                .unwrap_or_else(|| panic!("`{name}` in /metrics but not /metrics.json"));
            // Instance families must agree exactly; global families
            // (snn_fault_*, …) race with other tests in this process.
            if name.starts_with("snn_serve_") || name.starts_with("snn_slo_") {
                let value: f64 = value.parse().unwrap_or_else(|_| panic!("bad value {line}"));
                assert!(
                    (got - value).abs() <= 1e-9 * value.abs().max(1.0),
                    "`{name}`: text {value} vs json {got}"
                );
            }
        }
        assert!(samples > 40, "suspiciously small exposition ({samples} samples):\n{text}");
        assert!(
            text.contains("\nsnn_serve_stage_queue_wait_seconds_count 3\n"),
            "stage histogram missed the 3 requests: {text}"
        );
    }
}
