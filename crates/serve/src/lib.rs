//! # snn-serve
//!
//! The deployment half of the workspace: everything downstream of a
//! trained [`snn_core::NetworkSnapshot`]. The DATE'24 paper's claim
//! is that sparsity bought at training time (via `beta`/`theta` and
//! the surrogate) pays off at *inference* time; this crate is where
//! that payoff becomes end-to-end request latency and throughput.
//!
//! Four layers, composed bottom-up:
//!
//! * [`engine`] — [`InferenceEngine`]: forward-only execution of a
//!   snapshot. No BPTT caches, per-engine scratch reuse, and
//!   per-request spike counters so every response reports its own
//!   sparsity.
//! * [`qengine`] — [`QuantEngine`] and [`AnyEngine`]: the INT8
//!   integer twin of the f32 engine plus the dtype dispatcher. The
//!   registry decides which engine serves by artifact dtype; every
//!   `/infer` response names the engine that answered.
//! * [`queue`] — [`Batcher`]: a dynamic micro-batching queue.
//!   Requests accumulate up to `max_batch` or `max_wait` and run as
//!   one batched forward pass (on a single-core host the throughput
//!   win comes from batching, not threads). The queue is bounded:
//!   over-capacity submissions are rejected immediately with a typed
//!   [`Rejection`], and requests whose deadline lapses while queued
//!   are shed at dispatch instead of wasting a forward pass.
//! * [`registry`] — [`ModelRegistry`]: the serving snapshot behind an
//!   `Arc` swap, so `/reload` replaces the model atomically while
//!   requests are in flight.
//! * [`breaker`] — [`CircuitBreaker`]: worker panics are caught and
//!   the worker restarts (pending requests get a typed rejection,
//!   never a hang); repeated failures open the circuit, shedding load
//!   until a half-open probe succeeds. `/healthz` reports `degraded`
//!   while the circuit is not closed.
//! * [`http`] — [`Server`]: a minimal hermetic HTTP/1.1 front end on
//!   `std::net::TcpListener` with `/infer`, `/healthz`, `/metrics`,
//!   `/reload`, and `/debug/traces`. The parsing and rendering
//!   primitives ([`http::parse_head`], [`http::parse_infer_body`],
//!   [`http::infer_success_body`], [`http::format_response`], …) are
//!   public so the `snn-pool` event-driven front end produces
//!   byte-identical responses by construction.
//!
//! ## Observability
//!
//! Every request is minted a [`snn_obs::TraceContext`] at accept and
//! answers with an `x-snn-trace-id` header; the context travels by
//! value through the [`Batcher`] into the worker, so spans and
//! structured log records down to kernel dispatch attach to the
//! owning request. `POST` routes record five-stage timelines
//! (`parse`/`queue_wait`/`batch_form`/`forward`/`respond`) into a
//! tail-sampled [`snn_obs::TraceRing`] served from `/debug/traces`,
//! and `SNN_SLO` objectives turn request outcomes into multi-window
//! burn-rate gauges (`snn_slo_*`) that flip `/healthz` to `degraded`
//! on a fast burn. See `DESIGN.md` §14.
//!
//! ## Example: in-process serving
//!
//! ```
//! use snn_core::{LifConfig, NetworkSnapshot, SpikingNetwork};
//! use snn_serve::{Batcher, BatcherConfig, Metrics, ModelRegistry};
//! use snn_tensor::Shape;
//! use std::sync::Arc;
//!
//! let net = SpikingNetwork::builder(Shape::d3(1, 8, 8), 7)
//!     .conv(4, 3, 1, 1, LifConfig { theta: 0.5, ..LifConfig::paper_default() })?
//!     .maxpool(2)?
//!     .flatten()?
//!     .dense(4, LifConfig { theta: 0.5, ..LifConfig::paper_default() })?
//!     .build()?;
//! let registry =
//!     Arc::new(ModelRegistry::new(NetworkSnapshot::from_network(&net), "demo").unwrap());
//! let metrics = Arc::new(Metrics::default());
//! let batcher =
//!     Batcher::start(registry, BatcherConfig::default(), metrics).unwrap();
//! let ticket = batcher.submit(vec![1.0; 64], None).unwrap();
//! let reply = ticket.wait().unwrap();
//! assert_eq!(reply.output.counts.len(), 4);
//! assert!(!reply.output.layers.is_empty(), "response carries per-layer rates");
//! # Ok::<(), snn_core::BuildNetworkError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod breaker;
pub mod engine;
pub mod http;
pub mod metrics;
pub mod qengine;
pub mod queue;
pub mod registry;

pub use admission::{AdmissionConfig, AimdController, Brownout};
pub use breaker::{CircuitBreaker, CircuitState};
pub use engine::{InferenceEngine, LayerFiring, RequestOutput};
pub use http::{
    apply_reload, content_type_error, error_body, find_head_end, format_response, healthz_body,
    infer_success_body, parse_head, parse_infer_body, rejection_status, trace_get_response,
    traces_list_response, RequestHead, ServeError, Server, ServerConfig, ENGINE_GRACE,
    IDLE_TIMEOUT, MAX_BODY, MAX_HEAD,
};
pub use metrics::{Metrics, MetricsSnapshot};
pub use qengine::{AnyEngine, QuantEngine};
pub use queue::{Batcher, BatcherConfig, InferReply, Rejection, Ticket};
pub use registry::{ModelInfo, ModelRegistry, QuantInfo, ServedModel, SwapError, SwapReceipt};
