//! Serving counters and the `/metrics` report.
//!
//! Hot-path counters are atomics (no locking on the request path);
//! the latency window and per-layer spike aggregates sit behind short
//! mutexes touched once per request / once per batch respectively.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::Serialize;

use crate::engine::RequestOutput;
use crate::registry::ModelInfo;

/// Capacity of the rolling latency window (recent requests).
const LATENCY_WINDOW: usize = 4096;

/// Rolling window of recent request latencies in microseconds.
#[derive(Debug, Default)]
struct LatencyWindow {
    samples: Vec<u64>,
    next: usize,
}

impl LatencyWindow {
    fn record(&mut self, us: u64) {
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(us);
        } else {
            self.samples[self.next] = us;
            self.next = (self.next + 1) % LATENCY_WINDOW;
        }
    }

    fn stats(&self) -> LatencyStats {
        if self.samples.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let pick = |q: f64| {
            let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
            sorted[idx]
        };
        LatencyStats {
            samples: sorted.len(),
            p50_us: pick(0.50),
            p95_us: pick(0.95),
            p99_us: pick(0.99),
            max_us: *sorted.last().expect("non-empty"),
        }
    }
}

/// Percentiles over the rolling latency window.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct LatencyStats {
    /// Requests currently in the window.
    pub samples: usize,
    /// Median end-to-end latency (submit → reply), microseconds.
    pub p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst latency in the window, microseconds.
    pub max_us: u64,
}

/// Cumulative per-layer firing aggregate across all served requests.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LayerRateAgg {
    /// Layer name.
    pub layer: String,
    /// Total output spikes.
    pub spikes: f64,
    /// Total spike opportunities.
    pub neuron_steps: f64,
    /// `spikes / neuron_steps`.
    pub rate: f64,
}

/// Shared serving counters.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests accepted into the queue.
    pub received: AtomicU64,
    /// Requests answered with an inference result.
    pub completed: AtomicU64,
    /// Submissions rejected because the queue was at capacity.
    pub rejected_full: AtomicU64,
    /// Requests shed at dispatch because their deadline had lapsed.
    pub rejected_deadline: AtomicU64,
    /// Requests drained during shutdown.
    pub rejected_shutdown: AtomicU64,
    /// HTTP requests that failed parsing/validation.
    pub bad_requests: AtomicU64,
    /// Batched forward passes executed.
    pub batches: AtomicU64,
    /// Requests served across those batches.
    pub batched_items: AtomicU64,
    latencies: Mutex<LatencyWindow>,
    layers: Mutex<Vec<LayerRateAgg>>,
}

impl Metrics {
    /// Records one request's end-to-end latency.
    pub fn record_latency(&self, us: u64) {
        self.latencies.lock().expect("metrics lock poisoned").record(us);
    }

    /// Folds a completed batch's per-request firing statistics into
    /// the cumulative per-layer aggregate.
    pub fn record_batch_outputs(&self, outputs: &[RequestOutput]) {
        let mut agg = self.layers.lock().expect("metrics lock poisoned");
        for out in outputs {
            if agg.is_empty() {
                agg.extend(out.layers.iter().map(|l| LayerRateAgg {
                    layer: l.layer.clone(),
                    spikes: 0.0,
                    neuron_steps: 0.0,
                    rate: 0.0,
                }));
            }
            for (a, l) in agg.iter_mut().zip(&out.layers) {
                a.spikes += l.spikes;
                a.neuron_steps += l.neuron_steps;
            }
        }
        for a in agg.iter_mut() {
            a.rate = if a.neuron_steps > 0.0 { a.spikes / a.neuron_steps } else { 0.0 };
        }
    }

    /// Snapshots every counter into a serializable report.
    pub fn snapshot(&self, model: ModelInfo) -> MetricsSnapshot {
        let batches = self.batches.load(Ordering::Relaxed);
        let batched_items = self.batched_items.load(Ordering::Relaxed);
        MetricsSnapshot {
            model,
            received: self.received.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected_full: self.rejected_full.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            batches,
            batched_items,
            mean_batch_size: if batches > 0 {
                batched_items as f64 / batches as f64
            } else {
                0.0
            },
            latency_us: self.latencies.lock().expect("metrics lock poisoned").stats(),
            layers: self.layers.lock().expect("metrics lock poisoned").clone(),
        }
    }
}

/// Point-in-time copy of all serving counters (the `/metrics` body).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// The model the counters describe.
    pub model: ModelInfo,
    /// Requests accepted into the queue.
    pub received: u64,
    /// Requests answered with an inference result.
    pub completed: u64,
    /// Submissions rejected at capacity.
    pub rejected_full: u64,
    /// Requests shed after their deadline lapsed in queue.
    pub rejected_deadline: u64,
    /// Requests drained during shutdown.
    pub rejected_shutdown: u64,
    /// Malformed HTTP requests.
    pub bad_requests: u64,
    /// Batched forward passes executed.
    pub batches: u64,
    /// Requests served across those batches.
    pub batched_items: u64,
    /// `batched_items / batches` — the realized batching factor.
    pub mean_batch_size: f64,
    /// Latency percentiles over the rolling window.
    pub latency_us: LatencyStats,
    /// Cumulative per-layer firing rates.
    pub layers: Vec<LayerRateAgg>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ModelInfo {
        ModelInfo { name: "m".into(), version: 1, input_len: 4, classes: 2, params: 10 }
    }

    #[test]
    fn latency_percentiles() {
        let m = Metrics::default();
        for us in 1..=100 {
            m.record_latency(us);
        }
        let s = m.snapshot(model());
        assert_eq!(s.latency_us.samples, 100);
        // Index round((100-1) * 0.5) = 50 → the 51st sample.
        assert_eq!(s.latency_us.p50_us, 51);
        assert_eq!(s.latency_us.p95_us, 95);
        assert_eq!(s.latency_us.max_us, 100);
    }

    #[test]
    fn window_wraps() {
        let m = Metrics::default();
        for us in 0..(LATENCY_WINDOW as u64 + 10) {
            m.record_latency(us);
        }
        let s = m.snapshot(model());
        assert_eq!(s.latency_us.samples, LATENCY_WINDOW);
        assert_eq!(s.latency_us.max_us, LATENCY_WINDOW as u64 + 9);
    }

    #[test]
    fn layer_aggregation() {
        use crate::engine::{LayerFiring, RequestOutput};
        let m = Metrics::default();
        let out = RequestOutput {
            class: 0,
            counts: vec![1.0, 0.0],
            timesteps: 2,
            layers: vec![LayerFiring {
                layer: "conv1".into(),
                spikes: 3.0,
                neuron_steps: 10.0,
                rate: 0.3,
            }],
            mean_rate: 0.3,
        };
        m.record_batch_outputs(&[out.clone(), out]);
        let s = m.snapshot(model());
        assert_eq!(s.layers.len(), 1);
        assert_eq!(s.layers[0].spikes, 6.0);
        assert_eq!(s.layers[0].neuron_steps, 20.0);
        assert!((s.layers[0].rate - 0.3).abs() < 1e-12);
    }
}
