//! Serving metrics on the `snn-obs` instrument spine.
//!
//! Each server instance owns a local [`snn_obs::Registry`] — tests
//! spawn several servers per process, so instance isolation matters —
//! and the exposition endpoints merge it with the process-wide
//! [`snn_obs::global`] registry (kernel spans, training instruments).
//!
//! Hot-path counters are lock-free obs handles; only the per-layer
//! firing aggregate sits behind a short mutex touched once per batch.

use std::sync::{Arc, Mutex};

use serde::Serialize;
use snn_obs::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, SloConfig, SloTracker};

use crate::admission::Brownout;
use crate::engine::RequestOutput;
use crate::registry::ModelInfo;

/// Bucket bounds for the end-to-end request latency histogram,
/// seconds: powers of two from 10µs to ~5s.
fn latency_bounds() -> Vec<f64> {
    let mut b = Vec::with_capacity(20);
    let mut v = 1e-5;
    for _ in 0..20 {
        b.push(v);
        v *= 2.0;
    }
    b
}

/// Percentiles of the end-to-end request latency, microseconds,
/// derived from `snn_serve_request_latency_seconds`.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct LatencyStats {
    /// Requests recorded.
    pub samples: usize,
    /// Median end-to-end latency (submit → reply), microseconds.
    pub p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst latency recorded, microseconds.
    pub max_us: u64,
}

/// Cumulative per-layer firing aggregate across all served requests.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LayerRateAgg {
    /// Layer name.
    pub layer: String,
    /// Total output spikes.
    pub spikes: f64,
    /// Total spike opportunities.
    pub neuron_steps: f64,
    /// `spikes / neuron_steps`.
    pub rate: f64,
}

/// Shared serving instruments, backed by a per-instance registry.
pub struct Metrics {
    registry: Registry,
    /// Requests accepted into the queue.
    pub received: Arc<Counter>,
    /// Requests answered with an inference result.
    pub completed: Arc<Counter>,
    /// Submissions rejected because the queue was at capacity.
    pub rejected_full: Arc<Counter>,
    /// Requests shed at dispatch because their deadline had lapsed.
    pub rejected_deadline: Arc<Counter>,
    /// Requests drained during shutdown.
    pub rejected_shutdown: Arc<Counter>,
    /// HTTP requests that failed parsing/validation.
    pub bad_requests: Arc<Counter>,
    /// Batch-worker panics caught and recovered (each one fails its
    /// batch with [`crate::Rejection::WorkerPanic`] and discards the
    /// engine for rebuild).
    pub worker_panics: Arc<Counter>,
    /// Circuit-breaker state: 0 closed, 1 half-open, 2 open.
    pub circuit_state: Arc<Gauge>,
    /// Batched forward passes executed.
    pub batches: Arc<Counter>,
    /// Requests served across those batches.
    pub batched_items: Arc<Counter>,
    /// Requests served by the f32 engine.
    pub engine_f32_requests: Arc<Counter>,
    /// Requests served by the quantized INT8 engine.
    pub engine_int8_requests: Arc<Counter>,
    /// Jobs currently queued, sampled at enqueue/dequeue — never
    /// derived from other counters, so it cannot go stale across
    /// `/reload` or shutdown drains.
    pub queue_depth: Arc<Gauge>,
    /// Current AIMD admission queue-depth limit.
    pub admit_limit: Arc<Gauge>,
    /// Submissions shed at admission by the AIMD limit (429 +
    /// `Retry-After`).
    pub admit_shed: Arc<Counter>,
    /// Multiplicative decreases the AIMD controller took on
    /// congestion evidence.
    pub admit_decreases: Arc<Counter>,
    /// 1 while brownout degradation (INT8 engine substitution) is
    /// active.
    pub brownout_gauge: Arc<Gauge>,
    /// `parse` stage: request read + JSON validation, seconds.
    pub stage_parse: Arc<Histogram>,
    /// `queue_wait` stage: enqueue → worker drain, seconds.
    pub stage_queue_wait: Arc<Histogram>,
    /// `batch_form` stage: drain → forward start (shedding, input
    /// assembly, engine rebuild), seconds, recorded once per batch.
    pub stage_batch_form: Arc<Histogram>,
    /// `forward` stage: the shared forward pass, seconds, recorded
    /// once per batch.
    pub stage_forward: Arc<Histogram>,
    /// `respond` stage: reply serialization + socket write, seconds.
    pub stage_respond: Arc<Histogram>,
    latency: Arc<Histogram>,
    batch_size: Arc<Histogram>,
    firing_rate: Arc<Histogram>,
    layers: Mutex<Vec<LayerRateAgg>>,
    /// SLO accounting; `None` when no objectives are configured.
    slo: Option<SloTracker>,
    slo_latency_5m: Arc<Gauge>,
    slo_latency_1h: Arc<Gauge>,
    slo_availability_5m: Arc<Gauge>,
    slo_availability_1h: Arc<Gauge>,
    slo_fast_burn: Arc<Gauge>,
    /// Brownout hysteresis shared by every worker on this instance
    /// (pool replicas share one `Metrics`, so they brown out — and
    /// recover — together).
    brownout: Brownout,
}

impl Default for Metrics {
    /// Builds with the SLO objectives `SNN_SLO` asks for (none when
    /// unset). Tests wanting explicit objectives use
    /// [`Metrics::with_slo`].
    fn default() -> Self {
        Metrics::with_slo(SloConfig::from_env())
    }
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("received", &self.received.get())
            .field("completed", &self.completed.get())
            .field("queue_depth", &self.queue_depth.get())
            .finish_non_exhaustive()
    }
}

impl Metrics {
    /// Builds the instrument set, tracking the given SLO objectives
    /// (pass `None` for no SLO accounting; the `snn_slo_*` gauges are
    /// registered either way and read 0 when untracked). Brownout
    /// hysteresis comes from `SNN_BROWNOUT_HOLD_MS`.
    pub fn with_slo(slo_cfg: Option<SloConfig>) -> Self {
        Metrics::with_overload(slo_cfg, Brownout::from_env())
    }

    /// [`Metrics::with_slo`] with an explicit [`Brownout`] switch —
    /// tests and benches pick short hold periods this way.
    pub fn with_overload(slo_cfg: Option<SloConfig>, brownout: Brownout) -> Self {
        // Touch the process-wide fault/recovery counters so
        // `snn_fault_injected_total` / `snn_recovery_total` exist in
        // the global registry (and thus every scrape) from the first
        // request, not only after the first fault.
        let _ = snn_fault::injected_total();
        let registry = Registry::new();
        let received =
            registry.counter("snn_serve_requests_received_total", "requests accepted into the queue");
        let completed = registry
            .counter("snn_serve_requests_completed_total", "requests answered with a result");
        let rejected_full = registry
            .counter("snn_serve_rejected_full_total", "submissions rejected at queue capacity");
        let rejected_deadline = registry.counter(
            "snn_serve_rejected_deadline_total",
            "requests shed because their deadline lapsed in queue",
        );
        let rejected_shutdown = registry
            .counter("snn_serve_rejected_shutdown_total", "requests drained during shutdown");
        let bad_requests = registry
            .counter("snn_serve_bad_requests_total", "HTTP requests that failed parsing/validation");
        let worker_panics = registry.counter(
            "snn_serve_worker_panics_total",
            "batch-worker panics caught; each failed one batch and restarted the engine",
        );
        let circuit_state = registry.gauge(
            "snn_serve_circuit_state",
            "circuit-breaker state: 0 closed, 1 half-open, 2 open",
        );
        let batches =
            registry.counter("snn_serve_batches_total", "batched forward passes executed");
        let batched_items =
            registry.counter("snn_serve_batched_items_total", "requests served across batches");
        let engine_f32_requests = registry
            .counter("snn_serve_engine_f32_requests_total", "requests served by the f32 engine");
        let engine_int8_requests = registry.counter(
            "snn_serve_engine_int8_requests_total",
            "requests served by the quantized INT8 engine",
        );
        let queue_depth =
            registry.gauge("snn_serve_queue_depth", "jobs currently waiting in the batch queue");
        let admit_limit = registry.gauge(
            "snn_serve_admit_limit",
            "current AIMD admission queue-depth limit (capacity when uncongested)",
        );
        let admit_shed = registry.counter(
            "snn_serve_admit_shed_total",
            "submissions shed at admission by the AIMD limit (429 + Retry-After)",
        );
        let admit_decreases = registry.counter(
            "snn_serve_admit_decreases_total",
            "multiplicative decreases the AIMD admission controller took on congestion",
        );
        let brownout_gauge = registry.gauge(
            "snn_serve_brownout_active",
            "1 while brownout degradation routes batches to the INT8 engine",
        );
        let stage_bounds = snn_obs::span_bounds();
        let stage_parse = registry.histogram(
            "snn_serve_stage_parse_seconds",
            "parse stage: request read and JSON validation, seconds",
            stage_bounds,
        );
        let stage_queue_wait = registry.histogram(
            "snn_serve_stage_queue_wait_seconds",
            "queue_wait stage: enqueue to worker drain, seconds",
            stage_bounds,
        );
        let stage_batch_form = registry.histogram(
            "snn_serve_stage_batch_form_seconds",
            "batch_form stage: drain to forward start, seconds (per batch)",
            stage_bounds,
        );
        let stage_forward = registry.histogram(
            "snn_serve_stage_forward_seconds",
            "forward stage: the shared forward pass, seconds (per batch)",
            stage_bounds,
        );
        let stage_respond = registry.histogram(
            "snn_serve_stage_respond_seconds",
            "respond stage: reply serialization and socket write, seconds",
            stage_bounds,
        );
        let slo_latency_5m = registry.gauge(
            "snn_slo_burn_rate_latency_5m",
            "latency error-budget burn rate over the trailing 5 minutes",
        );
        let slo_latency_1h = registry.gauge(
            "snn_slo_burn_rate_latency_1h",
            "latency error-budget burn rate over the trailing hour",
        );
        let slo_availability_5m = registry.gauge(
            "snn_slo_burn_rate_availability_5m",
            "availability error-budget burn rate over the trailing 5 minutes",
        );
        let slo_availability_1h = registry.gauge(
            "snn_slo_burn_rate_availability_1h",
            "availability error-budget burn rate over the trailing hour",
        );
        let slo_fast_burn = registry.gauge(
            "snn_slo_fast_burn",
            "1 while a 5-minute burn rate exceeds the paging threshold (healthz degrades)",
        );
        let latency = registry.histogram(
            "snn_serve_request_latency_seconds",
            "end-to-end request latency (submit to reply), seconds",
            &latency_bounds(),
        );
        let batch_size = registry.histogram(
            "snn_serve_batch_size",
            "requests per executed batch",
            &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0],
        );
        let firing_rate = registry.histogram(
            "snn_serve_layer_firing_rate_ratio",
            "per-layer firing rate of served requests",
            &(1..=20).map(|i| i as f64 * 0.05).collect::<Vec<_>>(),
        );
        Metrics {
            registry,
            received,
            completed,
            rejected_full,
            rejected_deadline,
            rejected_shutdown,
            bad_requests,
            worker_panics,
            circuit_state,
            batches,
            batched_items,
            engine_f32_requests,
            engine_int8_requests,
            queue_depth,
            admit_limit,
            admit_shed,
            admit_decreases,
            brownout_gauge,
            stage_parse,
            stage_queue_wait,
            stage_batch_form,
            stage_forward,
            stage_respond,
            latency,
            batch_size,
            firing_rate,
            layers: Mutex::new(Vec::new()),
            slo: slo_cfg.map(SloTracker::new),
            slo_latency_5m,
            slo_latency_1h,
            slo_availability_5m,
            slo_availability_1h,
            slo_fast_burn,
            brownout,
        }
    }

    /// Feeds the current fast-burn reading through the brownout
    /// hysteresis (workers call this at every batch boundary) and
    /// returns whether brownout is active. Keeps the
    /// `snn_serve_brownout_active` gauge in step.
    pub fn brownout_observe(&self) -> bool {
        let active = self.brownout.observe(self.slo_fast_burn());
        self.brownout_gauge.set(if active { 1.0 } else { 0.0 });
        active
    }

    /// Whether brownout degradation is active right now (no state
    /// transition; `/healthz` reads this).
    pub fn brownout_active(&self) -> bool {
        self.brownout.active()
    }

    /// Records one request's end-to-end latency.
    pub fn record_latency(&self, us: u64) {
        self.latency.record(us as f64 / 1e6);
    }

    /// Feeds one finished request into SLO accounting. `ok` means "did
    /// not fail for a server-side reason" — shed (429), deadline
    /// (504), panic/circuit/shutdown (503) count against
    /// availability; client errors (4xx validation) do not reach this
    /// path. No-op without configured objectives.
    pub fn slo_record(&self, ok: bool, latency_us: u64) {
        if let Some(slo) = &self.slo {
            slo.record(ok, std::time::Duration::from_micros(latency_us));
        }
    }

    /// Whether a 5-minute burn rate is past the paging threshold
    /// (`/healthz` reports `degraded` while true). Always false
    /// without configured objectives.
    pub fn slo_fast_burn(&self) -> bool {
        self.slo.as_ref().is_some_and(|slo| slo.burn_rates().fast_burn)
    }

    /// The configured SLO objectives, if any.
    pub fn slo_config(&self) -> Option<&SloConfig> {
        self.slo.as_ref().map(|s| s.config())
    }

    /// Refreshes the `snn_slo_*` gauges from the tracker. Called at
    /// scrape time by both expositions, so the hot path never pays
    /// for burn-rate math.
    fn update_slo_gauges(&self) {
        let Some(slo) = &self.slo else { return };
        let rates = slo.burn_rates();
        self.slo_latency_5m.set(rates.latency_5m);
        self.slo_latency_1h.set(rates.latency_1h);
        self.slo_availability_5m.set(rates.availability_5m);
        self.slo_availability_1h.set(rates.availability_1h);
        self.slo_fast_burn.set(if rates.fast_burn { 1.0 } else { 0.0 });
    }

    /// Counts `items` requests against the engine kind that served
    /// them (`"f32"` or `"int8"`; anything else is ignored rather
    /// than inventing a series).
    pub fn record_engine_requests(&self, kind: &str, items: u64) {
        match kind {
            "f32" => self.engine_f32_requests.add(items),
            "int8" => self.engine_int8_requests.add(items),
            _ => {}
        }
    }

    /// Folds a completed batch's per-request firing statistics into
    /// the cumulative per-layer aggregate, and records the realized
    /// batch size and every layer's firing rate into their
    /// histograms.
    pub fn record_batch_outputs(&self, outputs: &[RequestOutput]) {
        if outputs.is_empty() {
            return;
        }
        self.batch_size.record(outputs.len() as f64);
        // Recover from poisoning: the aggregate stays consistent per
        // entry, and metrics must never wedge the serving path.
        let mut agg = self.layers.lock().unwrap_or_else(|p| p.into_inner());
        for out in outputs {
            if agg.is_empty() {
                agg.extend(out.layers.iter().map(|l| LayerRateAgg {
                    layer: l.layer.clone(),
                    spikes: 0.0,
                    neuron_steps: 0.0,
                    rate: 0.0,
                }));
            }
            for (a, l) in agg.iter_mut().zip(&out.layers) {
                a.spikes += l.spikes;
                a.neuron_steps += l.neuron_steps;
                if l.neuron_steps > 0.0 {
                    self.firing_rate.record(l.rate);
                }
            }
        }
        for a in agg.iter_mut() {
            a.rate = if a.neuron_steps > 0.0 { a.spikes / a.neuron_steps } else { 0.0 };
        }
    }

    /// Derives the classic microsecond percentile report from the
    /// latency histogram.
    fn latency_stats(&self) -> LatencyStats {
        let to_us = |s: f64| (s * 1e6).round() as u64;
        LatencyStats {
            samples: self.latency.count() as usize,
            p50_us: to_us(self.latency.quantile(0.50)),
            p95_us: to_us(self.latency.quantile(0.95)),
            p99_us: to_us(self.latency.quantile(0.99)),
            max_us: to_us(self.latency.max()),
        }
    }

    /// Snapshots every instrument into a serializable report.
    pub fn snapshot(&self, model: ModelInfo) -> MetricsSnapshot {
        let batches = self.batches.get();
        let batched_items = self.batched_items.get();
        MetricsSnapshot {
            model,
            received: self.received.get(),
            completed: self.completed.get(),
            rejected_full: self.rejected_full.get(),
            rejected_deadline: self.rejected_deadline.get(),
            rejected_shutdown: self.rejected_shutdown.get(),
            bad_requests: self.bad_requests.get(),
            worker_panics: self.worker_panics.get(),
            circuit_state: self.circuit_state.get(),
            batches,
            batched_items,
            engine_f32_requests: self.engine_f32_requests.get(),
            engine_int8_requests: self.engine_int8_requests.get(),
            mean_batch_size: if batches > 0 {
                batched_items as f64 / batches as f64
            } else {
                0.0
            },
            queue_depth: self.queue_depth.get(),
            admit_limit: self.admit_limit.get(),
            admit_shed: self.admit_shed.get(),
            brownout_active: self.brownout.active(),
            latency_us: self.latency_stats(),
            layers: self.layers.lock().unwrap_or_else(|p| p.into_inner()).clone(),
            histograms: self.registry.histogram_snapshots(),
        }
    }

    /// Prometheus text exposition of this instance's instruments
    /// followed by the process-wide global registry, with `# HELP`/`#
    /// TYPE` per family and a trailing newline.
    ///
    /// The pre-PR-3 bare-name alias series (`received`, `completed`,
    /// …) are gone as of this release — scrape the `snn_serve_*`
    /// families (see CHANGELOG.md).
    pub fn render_prometheus(&self) -> String {
        self.update_slo_gauges();
        let mut out = self.registry.render_prometheus();
        // The process-wide `snn_fault_injected_total` /
        // `snn_recovery_total` counters ride in with the global
        // registry below — snn-fault registers them there.
        out.push_str(&snn_obs::global().render_prometheus());
        out
    }

    /// [`Metrics::render_prometheus`] with a second, caller-owned
    /// registry merged in between the instance and global sections.
    /// The pool front end keeps its per-replica labeled series
    /// (`replica="<i>"`) and router counters there, so both
    /// expositions show them without the shared instance registry
    /// learning about replication.
    pub fn render_prometheus_with(&self, extra: &Registry) -> String {
        self.update_slo_gauges();
        let mut out = self.registry.render_prometheus();
        out.push_str(&extra.render_prometheus());
        out.push_str(&snn_obs::global().render_prometheus());
        out
    }

    /// Structured JSON form of the same merged exposition: this
    /// instance's instruments followed by the global registry's, as a
    /// [`serde::Value`] array.
    pub fn snapshot_instruments(&self) -> serde::Value {
        self.update_slo_gauges();
        let mut items = match self.registry.snapshot_value() {
            serde::Value::Array(items) => items,
            other => vec![other],
        };
        if let serde::Value::Array(global_items) = snn_obs::global().snapshot_value() {
            items.extend(global_items);
        }
        serde::Value::Array(items)
    }

    /// [`Metrics::snapshot_instruments`] with a caller-owned registry
    /// merged in, mirroring [`Metrics::render_prometheus_with`] so the
    /// text and JSON expositions always agree on the instrument set.
    pub fn snapshot_instruments_with(&self, extra: &Registry) -> serde::Value {
        self.update_slo_gauges();
        let mut items = match self.registry.snapshot_value() {
            serde::Value::Array(items) => items,
            other => vec![other],
        };
        if let serde::Value::Array(extra_items) = extra.snapshot_value() {
            items.extend(extra_items);
        }
        if let serde::Value::Array(global_items) = snn_obs::global().snapshot_value() {
            items.extend(global_items);
        }
        serde::Value::Array(items)
    }
}

/// Point-in-time copy of all serving counters (the `/metrics.json`
/// summary body).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// The model the counters describe.
    pub model: ModelInfo,
    /// Requests accepted into the queue.
    pub received: u64,
    /// Requests answered with an inference result.
    pub completed: u64,
    /// Submissions rejected at capacity.
    pub rejected_full: u64,
    /// Requests shed after their deadline lapsed in queue.
    pub rejected_deadline: u64,
    /// Requests drained during shutdown.
    pub rejected_shutdown: u64,
    /// Malformed HTTP requests.
    pub bad_requests: u64,
    /// Batch-worker panics caught and recovered.
    pub worker_panics: u64,
    /// Circuit-breaker state at snapshot time (0 closed, 1 half-open,
    /// 2 open).
    pub circuit_state: f64,
    /// Batched forward passes executed.
    pub batches: u64,
    /// Requests served across those batches.
    pub batched_items: u64,
    /// Requests served by the f32 engine.
    pub engine_f32_requests: u64,
    /// Requests served by the quantized INT8 engine.
    pub engine_int8_requests: u64,
    /// `batched_items / batches` — the realized batching factor.
    pub mean_batch_size: f64,
    /// Jobs waiting in the batch queue right now.
    pub queue_depth: f64,
    /// AIMD admission limit at snapshot time.
    pub admit_limit: f64,
    /// Submissions shed at admission by the AIMD limit.
    pub admit_shed: u64,
    /// Whether brownout degradation was active at snapshot time.
    pub brownout_active: bool,
    /// Latency percentiles derived from the latency histogram.
    pub latency_us: LatencyStats,
    /// Cumulative per-layer firing rates.
    pub layers: Vec<LayerRateAgg>,
    /// Full bucket snapshots of every instance histogram.
    pub histograms: Vec<HistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ModelInfo {
        ModelInfo {
            name: "m".into(),
            version: 1,
            dtype: "f32".into(),
            input_len: 4,
            classes: 2,
            params: 10,
            hash: "0123456789abcdef".into(),
            quant: None,
        }
    }

    #[test]
    fn latency_percentiles_from_histogram() {
        let m = Metrics::default();
        for us in 1..=100 {
            m.record_latency(us);
        }
        let s = m.snapshot(model());
        assert_eq!(s.latency_us.samples, 100);
        // Bucketed estimates: the true p50 is ~50µs; the enclosing
        // bucket is (40µs, 80µs], so the estimate must land there.
        assert!(
            (40..=80).contains(&s.latency_us.p50_us),
            "p50 {}us outside its bucket",
            s.latency_us.p50_us
        );
        assert!(s.latency_us.p95_us >= s.latency_us.p50_us);
        assert!(s.latency_us.p99_us >= s.latency_us.p95_us);
        assert_eq!(s.latency_us.max_us, 100);
    }

    #[test]
    fn layer_aggregation() {
        use crate::engine::{LayerFiring, RequestOutput};
        let m = Metrics::default();
        let out = RequestOutput {
            class: 0,
            counts: vec![1.0, 0.0],
            timesteps: 2,
            layers: vec![LayerFiring {
                layer: "conv1".into(),
                spikes: 3.0,
                neuron_steps: 10.0,
                rate: 0.3,
            }],
            mean_rate: 0.3,
            input_density: 0.5,
            engine: "int8".into(),
        };
        m.record_batch_outputs(&[out.clone(), out]);
        let s = m.snapshot(model());
        assert_eq!(s.layers.len(), 1);
        assert_eq!(s.layers[0].spikes, 6.0);
        assert_eq!(s.layers[0].neuron_steps, 20.0);
        assert!((s.layers[0].rate - 0.3).abs() < 1e-12);
        // Both requests' firing rates landed in the histogram, and the
        // batch-size histogram saw one batch of 2.
        let rate_snap = s
            .histograms
            .iter()
            .find(|h| h.name == "snn_serve_layer_firing_rate_ratio")
            .expect("firing-rate histogram present");
        assert_eq!(rate_snap.count, 2);
        let batch_snap = s
            .histograms
            .iter()
            .find(|h| h.name == "snn_serve_batch_size")
            .expect("batch-size histogram present");
        assert_eq!(batch_snap.count, 1);
        assert_eq!(batch_snap.max, 2.0);
    }

    #[test]
    fn engine_request_counters_split_by_kind() {
        let m = Metrics::default();
        m.record_engine_requests("f32", 3);
        m.record_engine_requests("int8", 2);
        m.record_engine_requests("weird", 9);
        assert_eq!(m.engine_f32_requests.get(), 3);
        assert_eq!(m.engine_int8_requests.get(), 2);
        let text = m.render_prometheus();
        assert!(text.contains("snn_serve_engine_f32_requests_total 3"), "{text}");
        assert!(text.contains("snn_serve_engine_int8_requests_total 2"), "{text}");
        let s = m.snapshot(model());
        assert_eq!(s.engine_f32_requests, 3);
        assert_eq!(s.engine_int8_requests, 2);
    }

    #[test]
    fn instances_are_isolated() {
        let a = Metrics::default();
        let b = Metrics::default();
        a.received.add(5);
        assert_eq!(a.received.get(), 5);
        assert_eq!(b.received.get(), 0);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let m = Metrics::default();
        m.received.add(3);
        m.record_latency(1500);
        let text = m.render_prometheus();
        assert!(text.ends_with('\n'));
        for needle in [
            "# TYPE snn_serve_requests_received_total counter\n",
            "snn_serve_requests_received_total 3\n",
            "# TYPE snn_serve_request_latency_seconds histogram\n",
            "snn_serve_request_latency_seconds_count 1\n",
            "# TYPE snn_serve_queue_depth gauge\n",
            "# TYPE snn_serve_admit_limit gauge\n",
            "# TYPE snn_serve_admit_shed_total counter\n",
            "# TYPE snn_serve_admit_decreases_total counter\n",
            "# TYPE snn_serve_brownout_active gauge\n",
            "# TYPE snn_serve_stage_queue_wait_seconds histogram\n",
            "# TYPE snn_slo_burn_rate_latency_5m gauge\n",
            "# TYPE snn_slo_burn_rate_availability_1h gauge\n",
            "# TYPE snn_slo_fast_burn gauge\n",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // The pre-PR-3 bare-name alias series were removed; only the
        // namespaced families may remain.
        for gone in ["\n# TYPE received counter\n", "\nreceived 3\n", "\ncompleted 0\n"] {
            assert!(!text.contains(gone), "stale alias {gone:?} back in:\n{text}");
        }
    }

    #[test]
    fn slo_gauges_follow_burn_rates() {
        let cfg = SloConfig::parse("p99=25ms,avail=99.9").unwrap();
        let m = Metrics::with_slo(Some(cfg));
        assert!(m.slo_config().is_some());
        // 20 requests, half failing: availability burn = 500 ≫ 14.4.
        for i in 0..20u64 {
            m.slo_record(i % 2 == 0, 1_000);
        }
        assert!(m.slo_fast_burn());
        let text = m.render_prometheus();
        assert!(text.contains("snn_slo_fast_burn 1\n"), "{text}");
        // render refreshed the gauges; the budget (1 - 0.999) is not
        // an exact float, so compare numerically rather than textually.
        assert!(
            (m.slo_availability_5m.get() - 500.0).abs() < 1e-9,
            "availability burn: {}",
            m.slo_availability_5m.get()
        );
        // Untracked metrics instances keep the gauges at rest.
        let idle = Metrics::with_slo(None);
        assert!(!idle.slo_fast_burn());
        assert!(idle.render_prometheus().contains("snn_slo_fast_burn 0\n"));
    }

    #[test]
    fn required_histograms_are_exposed() {
        let m = Metrics::default();
        let names: Vec<String> =
            m.snapshot(model()).histograms.into_iter().map(|h| h.name).collect();
        for required in [
            "snn_serve_request_latency_seconds",
            "snn_serve_batch_size",
            "snn_serve_layer_firing_rate_ratio",
        ] {
            assert!(names.iter().any(|n| n == required), "missing {required} in {names:?}");
        }
    }
}
