//! Forward-only inference over a quantized artifact, plus the
//! dtype-dispatching engine the batch worker actually owns.
//!
//! [`QuantEngine`] is the integer twin of
//! [`crate::InferenceEngine`]: it wraps an
//! [`snn_quant::QuantNetwork`], accepts the same f32 request payloads
//! (input quantization is the artifact's job, not the client's), and
//! produces the same [`RequestOutput`] shape — per-layer firing
//! rates, rate-coded counts, input density — with `engine: "int8"` so
//! every response names the numeric path that served it.
//!
//! [`AnyEngine`] selects the engine from the registry's
//! [`ServedModel`] dtype. The batch worker rebuilds it on every
//! registry swap, which is how a `/reload` with a quantized artifact
//! moves the serving path from f32 to integer arithmetic end-to-end
//! without restarting the process.

use crate::engine::{InferenceEngine, LayerFiring, RequestOutput};
use crate::registry::ServedModel;
use snn_core::SnapshotError;
use snn_quant::{classify_counts, QuantNetwork, QuantizedSnapshot};

/// Integer-only executor for one quantized artifact.
///
/// Like the f32 engine it is single-owner (the batch worker holds
/// exactly one), which keeps the quantized network's scratch — im2col
/// columns, i32 accumulators, Q-format membranes — preallocated and
/// reused across requests without locking.
pub struct QuantEngine {
    net: QuantNetwork,
    timesteps: usize,
}

impl QuantEngine {
    /// Validates `artifact` and builds an engine presenting each input
    /// for `timesteps` steps (direct coding, same as the f32 engine).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] for artifacts that do not describe a
    /// runnable quantized network, or for a zero `timesteps`.
    pub fn new(artifact: &QuantizedSnapshot, timesteps: usize) -> Result<Self, SnapshotError> {
        if timesteps == 0 {
            return Err(SnapshotError::Structure("timesteps must be at least 1".into()));
        }
        let net = QuantNetwork::from_snapshot(artifact)
            .map_err(|e| SnapshotError::Malformed(e.to_string()))?;
        Ok(QuantEngine { net, timesteps })
    }

    /// Elements in one flattened input item.
    pub fn input_len(&self) -> usize {
        self.net.input_len()
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.net.classes()
    }

    /// Timesteps per inference.
    pub fn timesteps(&self) -> usize {
        self.timesteps
    }

    /// Runs one batched integer forward pass over `items`, returning
    /// one output per item in order. Bit-identical across thread
    /// counts and dispatch routes (the artifact's core guarantee).
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or any item has the wrong length or
    /// non-finite values — the queue and HTTP layer validate both
    /// before enqueueing.
    pub fn infer_batch(&mut self, items: &[Vec<f32>]) -> Vec<RequestOutput> {
        let _span = snn_obs::span!("qinfer_batch");
        let n = items.len();
        assert!(n > 0, "infer_batch requires at least one item");
        let item_len = self.input_len();
        let densities: Vec<f64> = items
            .iter()
            .map(|item| {
                assert_eq!(item.len(), item_len, "input length validated at submit");
                item.iter().filter(|&&v| v != 0.0).count() as f64 / item_len as f64
            })
            .collect();

        // spikes[stage][item], accumulated over timesteps; only
        // spiking stages get a row.
        let meta: Vec<(String, usize, bool)> = self
            .net
            .stage_meta()
            .iter()
            .map(|m| (m.name.clone(), m.item_len, m.spiking))
            .collect();
        let mut spikes: Vec<Vec<f64>> = meta
            .iter()
            .map(|(_, _, spiking)| if *spiking { vec![0.0; n] } else { Vec::new() })
            .collect();
        let counts = self
            .net
            .infer_batch_observed(items, self.timesteps, |si, _name, acts, n| {
                let acc = &mut spikes[si];
                if acc.is_empty() {
                    return;
                }
                let per_item = acts.len() / n;
                for (i, chunk) in acts.chunks_exact(per_item).enumerate() {
                    acc[i] += chunk.iter().map(|&v| v as f64).sum::<f64>();
                }
            })
            .expect("queue and HTTP layer validate inputs before dispatch");

        let classes = self.classes();
        (0..n)
            .map(|i| {
                let row = &counts[i * classes..(i + 1) * classes];
                let layers: Vec<LayerFiring> = meta
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, _, spiking))| *spiking)
                    .map(|(si, (name, item_len, _))| {
                        let neuron_steps = (item_len * self.timesteps) as f64;
                        let s = spikes[si][i];
                        LayerFiring {
                            layer: name.clone(),
                            spikes: s,
                            neuron_steps,
                            rate: s / neuron_steps,
                        }
                    })
                    .collect();
                let (total_s, total_ns) = layers
                    .iter()
                    .fold((0.0, 0.0), |(s, ns), l| (s + l.spikes, ns + l.neuron_steps));
                RequestOutput {
                    class: classify_counts(row),
                    counts: row.iter().map(|&c| c as f32).collect(),
                    timesteps: self.timesteps,
                    layers,
                    mean_rate: if total_ns > 0.0 { total_s / total_ns } else { 0.0 },
                    input_density: densities[i],
                    engine: "int8".into(),
                }
            })
            .collect()
    }

    /// Convenience wrapper: a batch of one.
    ///
    /// # Panics
    ///
    /// Panics if `item` has the wrong length.
    pub fn infer_one(&mut self, item: Vec<f32>) -> RequestOutput {
        self.infer_batch(std::slice::from_ref(&item))
            .pop()
            .expect("batch of one yields one output")
    }
}

/// The engine the batch worker owns: one variant per served dtype.
pub enum AnyEngine {
    /// Full-precision path.
    F32(InferenceEngine),
    /// Quantized integer path.
    Int8(QuantEngine),
}

impl AnyEngine {
    /// Builds the engine matching `model`'s dtype.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] if the model cannot be executed or
    /// `timesteps` is zero.
    pub fn new(model: &ServedModel, timesteps: usize) -> Result<Self, SnapshotError> {
        match model {
            ServedModel::F32(s) => {
                Ok(AnyEngine::F32(InferenceEngine::new(s.clone(), timesteps)?))
            }
            ServedModel::Int8(q) => Ok(AnyEngine::Int8(QuantEngine::new(q, timesteps)?)),
        }
    }

    /// The engine kind tag: `"f32"` or `"int8"`, matching
    /// [`ServedModel::dtype`].
    pub fn kind(&self) -> &'static str {
        match self {
            AnyEngine::F32(_) => "f32",
            AnyEngine::Int8(_) => "int8",
        }
    }

    /// Elements in one flattened input item.
    pub fn input_len(&self) -> usize {
        match self {
            AnyEngine::F32(e) => e.input_len(),
            AnyEngine::Int8(e) => e.input_len(),
        }
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        match self {
            AnyEngine::F32(e) => e.classes(),
            AnyEngine::Int8(e) => e.classes(),
        }
    }

    /// Timesteps per inference.
    pub fn timesteps(&self) -> usize {
        match self {
            AnyEngine::F32(e) => e.timesteps(),
            AnyEngine::Int8(e) => e.timesteps(),
        }
    }

    /// Runs one batched forward pass; see the variant engines for the
    /// per-dtype contracts.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch or invalid items, like both variants.
    pub fn infer_batch(&mut self, items: &[Vec<f32>]) -> Vec<RequestOutput> {
        match self {
            AnyEngine::F32(e) => e.infer_batch(items),
            AnyEngine::Int8(e) => e.infer_batch(items),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_core::{LifConfig, NetworkSnapshot, SpikingNetwork};
    use snn_quant::{calibrate, quantize_snapshot};
    use snn_tensor::Shape;

    fn snapshot() -> NetworkSnapshot {
        let lif = LifConfig { theta: 0.5, ..LifConfig::paper_default() };
        let net = SpikingNetwork::builder(Shape::d3(1, 8, 8), 11)
            .conv(4, 3, 1, 1, lif)
            .unwrap()
            .maxpool(2)
            .unwrap()
            .flatten()
            .unwrap()
            .dense(4, lif)
            .unwrap()
            .build()
            .unwrap();
        NetworkSnapshot::from_network(&net)
    }

    fn inputs(n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| (0..64).map(|j| ((i * 64 + j) % 9) as f32 / 8.0).collect())
            .collect()
    }

    fn artifact() -> QuantizedSnapshot {
        let snap = snapshot();
        let cal = calibrate(&snap, &inputs(6), 4).unwrap();
        quantize_snapshot(&snap, &cal, 8).unwrap()
    }

    #[test]
    fn quant_engine_reports_int8_outputs_with_firing_rates() {
        let mut e = QuantEngine::new(&artifact(), 4).unwrap();
        assert_eq!(e.input_len(), 64);
        assert_eq!(e.classes(), 4);
        let out = e.infer_one(inputs(1).pop().unwrap());
        assert_eq!(out.engine, "int8");
        assert!(out.class < 4);
        assert_eq!(out.counts.len(), 4);
        assert_eq!(out.timesteps, 4);
        let names: Vec<&str> = out.layers.iter().map(|l| l.layer.as_str()).collect();
        assert_eq!(names, vec!["conv1", "fc1"]);
        for l in &out.layers {
            assert!((0.0..=1.0).contains(&l.rate), "rate {} out of range", l.rate);
        }
        assert!(out.mean_rate >= 0.0 && out.mean_rate <= 1.0);
    }

    #[test]
    fn quant_engine_batched_equals_serial() {
        let mut e = QuantEngine::new(&artifact(), 3).unwrap();
        let items = inputs(5);
        let batched = e.infer_batch(&items);
        for (i, item) in items.iter().enumerate() {
            let solo = e.infer_one(item.clone());
            assert_eq!(batched[i], solo, "item {i} diverged between batch and serial");
        }
    }

    #[test]
    fn quant_engine_is_deterministic_across_calls() {
        let mut e = QuantEngine::new(&artifact(), 3).unwrap();
        let item = inputs(1).pop().unwrap();
        assert_eq!(e.infer_one(item.clone()), e.infer_one(item));
    }

    #[test]
    fn any_engine_selects_by_dtype() {
        let f32_model = ServedModel::F32(snapshot());
        let int8_model = ServedModel::Int8(artifact());
        let mut f = AnyEngine::new(&f32_model, 4).unwrap();
        let mut q = AnyEngine::new(&int8_model, 4).unwrap();
        assert_eq!(f.kind(), "f32");
        assert_eq!(q.kind(), "int8");
        assert_eq!(f.input_len(), q.input_len());
        assert_eq!(f.classes(), q.classes());
        let item = inputs(1).pop().unwrap();
        let fo = f.infer_batch(std::slice::from_ref(&item)).pop().unwrap();
        let qo = q.infer_batch(std::slice::from_ref(&item)).pop().unwrap();
        assert_eq!(fo.engine, "f32");
        assert_eq!(qo.engine, "int8");
        // Both engines draw from the same model family; on a smooth
        // input their predictions agree for this topology.
        assert_eq!(fo.counts.len(), qo.counts.len());
    }

    #[test]
    fn quant_engine_rejects_zero_timesteps_and_broken_artifacts() {
        assert!(QuantEngine::new(&artifact(), 0).is_err());
        let mut bad = artifact();
        bad.input_levels = 0;
        assert!(QuantEngine::new(&bad, 4).is_err());
    }
}
