//! Dynamic micro-batching of inference requests.
//!
//! On a single-core host the throughput lever is batching, not
//! threads: one batched forward pass amortizes per-pass overhead
//! (frame setup, im2col, GEMM dispatch) across every request in the
//! batch. The [`Batcher`] owns one worker thread and one
//! [`crate::InferenceEngine`]; callers [`Batcher::submit`] a flattened
//! input and block on the returned [`Ticket`].
//!
//! Dispatch policy, in order:
//!
//! 1. A submission is rejected immediately — **before** entering the
//!    queue — if the input length is wrong, the queue is at
//!    `capacity`, or the batcher is shutting down. The queue is
//!    bounded; overload turns into typed [`Rejection`]s, never
//!    unbounded memory growth or deadlock.
//! 2. The worker wakes on the first queued request, then lingers until
//!    either `max_batch` requests are waiting or the oldest has waited
//!    `max_wait`, and drains up to `max_batch` into one batch.
//! 3. Requests whose deadline lapsed while queued are shed with
//!    [`Rejection::DeadlineExceeded`] at dispatch, before the forward
//!    pass — a request that can no longer meet its deadline must not
//!    consume compute that others could.
//! 4. If the [`crate::ModelRegistry`] version changed, the worker
//!    rebuilds its engine first, so a batch never mixes models.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use crate::admission::{AdmissionConfig, AimdController};
use crate::breaker::{CircuitBreaker, CircuitState};
use crate::engine::RequestOutput;
use crate::metrics::Metrics;
use crate::qengine::AnyEngine;
use crate::registry::ModelRegistry;
use snn_core::SnapshotError;
use snn_obs::TraceContext;

/// Tuning knobs for the batching queue.
#[derive(Debug, Clone, PartialEq)]
pub struct BatcherConfig {
    /// Largest batch one forward pass may serve.
    pub max_batch: usize,
    /// Longest the oldest queued request may wait for the batch to
    /// fill before dispatch.
    pub max_wait: Duration,
    /// Bound on queued (not yet dispatched) requests; submissions
    /// beyond it are rejected with [`Rejection::QueueFull`].
    pub capacity: usize,
    /// Timesteps each input is presented for.
    pub timesteps: usize,
    /// Consecutive worker failures (panicked batches) before the
    /// circuit opens and submissions are shed with
    /// [`Rejection::CircuitOpen`].
    pub breaker_threshold: u32,
    /// How long an open circuit sheds before admitting one half-open
    /// probe request (doubling per consecutive failed probe, capped at
    /// 32×).
    pub breaker_cooldown: Duration,
    /// AIMD admission-control tuning; enabled by default with the
    /// limit starting at `capacity` (no behavior change until
    /// congestion evidence arrives).
    pub admission: AdmissionConfig,
    /// Injection-site name the worker's panic checkpoint uses. The
    /// pool front end renames its replicas' workers to `pool.replica`
    /// so chaos plans can kill a replica without touching classic
    /// single-worker servers.
    pub fault_site: String,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig {
            max_batch: 8,
            max_wait: Duration::from_micros(2000),
            capacity: 64,
            timesteps: 4,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(250),
            admission: AdmissionConfig::default(),
            fault_site: "serve.worker".into(),
        }
    }
}

/// Why a request was not served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// The bounded queue was at capacity when the request arrived.
    QueueFull {
        /// The configured queue bound.
        capacity: usize,
    },
    /// The request's deadline lapsed while it sat in the queue.
    DeadlineExceeded {
        /// How long it waited before being shed, microseconds.
        waited_us: u64,
    },
    /// The input length does not match the model.
    BadInput {
        /// Flattened input length the model requires.
        expected: usize,
        /// Length the request supplied.
        actual: usize,
    },
    /// The batcher is shutting down.
    ShuttingDown,
    /// The worker panicked while serving this request's batch. The
    /// worker survives (the panic is caught and the engine rebuilt),
    /// but this batch's results are lost.
    WorkerPanic,
    /// The circuit breaker is open after repeated worker failures;
    /// the request was shed without queueing.
    CircuitOpen,
    /// The AIMD admission controller's queue-depth limit was reached;
    /// the request was shed at admission (429 + `Retry-After`) before
    /// costing anyone queue time.
    AdmissionShed {
        /// The controller's limit at shed time.
        limit: usize,
    },
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejection::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            Rejection::DeadlineExceeded { waited_us } => {
                write!(f, "deadline exceeded after waiting {waited_us}us in queue")
            }
            Rejection::BadInput { expected, actual } => {
                write!(f, "bad input: expected {expected} values, got {actual}")
            }
            Rejection::ShuttingDown => write!(f, "server shutting down"),
            Rejection::WorkerPanic => {
                write!(f, "batch worker panicked while serving this request; worker restarted")
            }
            Rejection::CircuitOpen => {
                write!(f, "circuit open: shedding requests after repeated worker failures")
            }
            Rejection::AdmissionShed { limit } => {
                write!(f, "shed at admission: adaptive queue-depth limit {limit} reached")
            }
        }
    }
}

impl std::error::Error for Rejection {}

/// A served inference plus its scheduling telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct InferReply {
    /// The model's answer, with per-layer firing rates.
    pub output: RequestOutput,
    /// How many requests shared this forward pass.
    pub batch_size: usize,
    /// Time the request spent queued before the worker drained it,
    /// microseconds (the `queue_wait` trace stage).
    pub queue_us: u64,
    /// Time between the drain and the forward pass starting —
    /// deadline shedding, input assembly, any engine rebuild —
    /// microseconds (the `batch_form` trace stage).
    pub batch_form_us: u64,
    /// Duration of the shared forward pass, microseconds.
    pub infer_us: u64,
    /// Registry version of the model that answered.
    pub model_version: u64,
}

/// Handle to one in-flight request.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<InferReply, Rejection>>,
}

impl Ticket {
    /// Blocks until the request is served or rejected.
    ///
    /// # Errors
    ///
    /// Returns the [`Rejection`] if the request was shed; a vanished
    /// worker reads as [`Rejection::ShuttingDown`].
    pub fn wait(self) -> Result<InferReply, Rejection> {
        self.rx.recv().unwrap_or(Err(Rejection::ShuttingDown))
    }

    /// Like [`Ticket::wait`] but gives up after `timeout`; `None`
    /// means the request is still in flight (and stays so — the ticket
    /// is consumed).
    pub fn wait_timeout(self, timeout: Duration) -> Option<Result<InferReply, Rejection>> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Some(r),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(Rejection::ShuttingDown)),
        }
    }

    /// Nonblocking poll: `None` while the request is still in flight,
    /// `Some` once it resolved. Unlike the `wait*` methods this takes
    /// `&mut self`, so an event loop can keep the ticket and poll it
    /// each tick. A vanished worker reads as [`Rejection::ShuttingDown`].
    pub fn try_wait(&mut self) -> Option<Result<InferReply, Rejection>> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(Rejection::ShuttingDown)),
        }
    }
}

/// One queued request.
struct Job {
    input: Vec<f32>,
    deadline: Option<Instant>,
    enqueued: Instant,
    /// The owning request's identity, carried by value into the
    /// worker so spans and log records there attach to it.
    trace: Option<TraceContext>,
    tx: mpsc::Sender<Result<InferReply, Rejection>>,
}

/// State under the queue mutex.
struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    wake: Condvar,
}

impl Shared {
    /// Locks the queue, recovering from poisoning: every critical
    /// section leaves `QueueState` consistent (single push/drain/flag
    /// writes), so a panic elsewhere must not wedge the whole server
    /// behind a poisoned mutex.
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// The dynamic micro-batching queue: accepts requests from any
/// thread, serves them from one worker-owned engine.
pub struct Batcher {
    shared: Arc<Shared>,
    worker: Option<thread::JoinHandle<()>>,
    cfg: BatcherConfig,
    input_len: usize,
    metrics: Arc<Metrics>,
    breaker: Arc<CircuitBreaker>,
    admission: Arc<AimdController>,
}

impl Batcher {
    /// Builds the engine from the registry's current model and starts
    /// the worker thread.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] if the engine cannot be built (e.g.
    /// `cfg.timesteps == 0`).
    pub fn start(
        registry: Arc<ModelRegistry>,
        cfg: BatcherConfig,
        metrics: Arc<Metrics>,
    ) -> Result<Self, SnapshotError> {
        let engine_version = registry.version();
        let engine = AnyEngine::new(&registry.current().model, cfg.timesteps)?;
        let input_len = engine.input_len();
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState { jobs: VecDeque::new(), shutdown: false }),
            wake: Condvar::new(),
        });
        let breaker =
            Arc::new(CircuitBreaker::new(cfg.breaker_threshold, cfg.breaker_cooldown));
        let admission = Arc::new(AimdController::new(cfg.admission.clone(), cfg.capacity));
        metrics.admit_limit.set(admission.limit());
        let worker = {
            let shared = Arc::clone(&shared);
            let cfg = cfg.clone();
            let metrics = Arc::clone(&metrics);
            let breaker = Arc::clone(&breaker);
            let admission = Arc::clone(&admission);
            // The fault plan is thread-local; carry the submitter's
            // plan into the worker so `serve.worker` rules fire there.
            let plan = snn_fault::current();
            thread::Builder::new()
                .name("snn-serve-batcher".into())
                .spawn(move || {
                    let _fault_guard = plan.map(snn_fault::install);
                    run_worker(
                        shared,
                        registry,
                        cfg,
                        metrics,
                        breaker,
                        admission,
                        engine,
                        engine_version,
                    )
                })
                .expect("spawning batch worker")
        };
        Ok(Batcher { shared, worker: Some(worker), cfg, input_len, metrics, breaker, admission })
    }

    /// Flattened input length the served model requires. Hot-swaps
    /// preserve the model interface, so this never changes over the
    /// batcher's lifetime.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// The active configuration.
    pub fn config(&self) -> &BatcherConfig {
        &self.cfg
    }

    /// The circuit breaker's current state. `/healthz` reports
    /// `degraded` whenever this is not [`CircuitState::Closed`].
    pub fn circuit_state(&self) -> CircuitState {
        self.breaker.state()
    }

    /// The AIMD admission controller's current queue-depth limit.
    pub fn admission_limit(&self) -> f64 {
        self.admission.limit()
    }

    /// Number of requests queued (accepted, not yet drained) right
    /// now. The pool router samples this for power-of-two-choices
    /// shard selection; it is a snapshot, racy by nature, and that is
    /// fine — p2c only needs "shallower of two", not an exact count.
    pub fn queue_len(&self) -> usize {
        self.shared.lock().jobs.len()
    }

    /// Enqueues one request.
    ///
    /// # Errors
    ///
    /// Rejects immediately (without queueing) on wrong input length,
    /// an open circuit, a full queue, or shutdown.
    pub fn submit(
        &self,
        input: Vec<f32>,
        deadline: Option<Instant>,
    ) -> Result<Ticket, Rejection> {
        self.submit_traced(input, deadline, None)
    }

    /// [`Batcher::submit`] with the owning request's [`TraceContext`]
    /// attached; the worker installs it around the batch it rides in.
    ///
    /// # Errors
    ///
    /// Same rejections as [`Batcher::submit`].
    pub fn submit_traced(
        &self,
        input: Vec<f32>,
        deadline: Option<Instant>,
        trace: Option<TraceContext>,
    ) -> Result<Ticket, Rejection> {
        self.submit_inner(input.len(), move || input, deadline, trace)
    }

    /// [`Batcher::submit_traced`] over a borrowed input: the slice is
    /// cloned only once admission succeeds (at enqueue), so the pool
    /// router can retry the same request against another replica after
    /// a rejection without re-allocating per attempt.
    ///
    /// # Errors
    ///
    /// Same rejections as [`Batcher::submit`].
    pub fn submit_traced_ref(
        &self,
        input: &[f32],
        deadline: Option<Instant>,
        trace: Option<TraceContext>,
    ) -> Result<Ticket, Rejection> {
        self.submit_inner(input.len(), || input.to_vec(), deadline, trace)
    }

    /// Shared admission path. `take` materializes the owned input and
    /// runs only after every rejection check has passed, under the
    /// queue lock.
    fn submit_inner(
        &self,
        input_len: usize,
        take: impl FnOnce() -> Vec<f32>,
        deadline: Option<Instant>,
        trace: Option<TraceContext>,
    ) -> Result<Ticket, Rejection> {
        if input_len != self.input_len {
            return Err(Rejection::BadInput { expected: self.input_len, actual: input_len });
        }
        if !self.breaker.admit() {
            self.metrics.circuit_state.set(self.breaker.state().as_gauge());
            return Err(Rejection::CircuitOpen);
        }
        self.metrics.circuit_state.set(self.breaker.state().as_gauge());
        let (tx, rx) = mpsc::channel();
        {
            let mut st = self.shared.lock();
            if st.shutdown {
                return Err(Rejection::ShuttingDown);
            }
            if st.jobs.len() >= self.cfg.capacity {
                self.metrics.rejected_full.inc();
                return Err(Rejection::QueueFull { capacity: self.cfg.capacity });
            }
            // AIMD admission runs after the fixed bound: it only sheds
            // once congestion evidence has pulled the limit below
            // capacity, so an uncongested server never sees it.
            if !self.admission.admit(st.jobs.len()) {
                self.metrics.admit_shed.inc();
                return Err(Rejection::AdmissionShed {
                    limit: self.admission.limit().floor().max(1.0) as usize,
                });
            }
            st.jobs.push_back(Job { input: take(), deadline, enqueued: Instant::now(), trace, tx });
            // Sampled under the queue lock at every enqueue/dequeue,
            // never derived, so the gauge cannot report a stale depth
            // after a drain or `/reload`.
            self.metrics.queue_depth.set(st.jobs.len() as f64);
        }
        self.metrics.received.inc();
        self.shared.wake.notify_one();
        Ok(Ticket { rx })
    }

    /// Flips the shutdown flag without joining: new submissions are
    /// rejected and the worker drains the queue with
    /// [`Rejection::ShuttingDown`], then exits. Usable through a
    /// shared reference (e.g. from `Arc<Batcher>`); the eventual
    /// [`Drop`] joins the worker.
    pub fn request_shutdown(&self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
        }
        self.shared.wake.notify_all();
    }

    /// Stops accepting work, rejects everything still queued with
    /// [`Rejection::ShuttingDown`], and joins the worker. Idempotent.
    pub fn shutdown(&mut self) {
        self.request_shutdown();
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The worker loop. Owns the engine; everything it shares with
/// submitters goes through `shared`.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    shared: Arc<Shared>,
    registry: Arc<ModelRegistry>,
    cfg: BatcherConfig,
    metrics: Arc<Metrics>,
    breaker: Arc<CircuitBreaker>,
    admission: Arc<AimdController>,
    engine: AnyEngine,
    mut engine_version: u64,
) {
    // `None` after a caught panic: the engine's scratch state may be
    // torn mid-forward-pass, so the next batch rebuilds from the
    // registry instead of trusting it.
    let mut engine = Some(engine);
    // Whether `engine` was built from the registry's brownout (INT8)
    // artifact rather than the primary slot, and which brownout
    // version it reflects.
    let mut engine_brownout = false;
    let mut engine_brownout_version = 0u64;
    loop {
        // Phase 1: sleep until there is work (or shutdown).
        let mut st = shared.lock();
        while st.jobs.is_empty() && !st.shutdown {
            st = shared.wake.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        if st.shutdown {
            let drained: Vec<Job> = st.jobs.drain(..).collect();
            metrics.queue_depth.set(st.jobs.len() as f64);
            drop(st);
            metrics.rejected_shutdown.add(drained.len() as u64);
            if !drained.is_empty() {
                snn_obs::log_info!("shutdown drain", rejected = drained.len());
            }
            for job in drained {
                let _ = job.tx.send(Err(Rejection::ShuttingDown));
            }
            return;
        }

        // Phase 2: linger — give the batch a chance to fill, bounded
        // by the oldest request's patience.
        let batch_deadline = st.jobs.front().expect("non-empty").enqueued + cfg.max_wait;
        loop {
            if st.jobs.len() >= cfg.max_batch || st.shutdown {
                break;
            }
            let now = Instant::now();
            if now >= batch_deadline {
                break;
            }
            let (guard, _timeout) = shared
                .wake
                .wait_timeout(st, batch_deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
        }

        // Phase 3: drain up to max_batch and release the lock so
        // submitters keep flowing while we compute. `drained_at` ends
        // every drained request's `queue_wait` stage; what follows
        // until the forward pass starts is its `batch_form` stage.
        let n = st.jobs.len().min(cfg.max_batch);
        let taken: Vec<Job> = st.jobs.drain(..n).collect();
        metrics.queue_depth.set(st.jobs.len() as f64);
        drop(st);
        let drained_at = Instant::now();

        // Phase 4: shed requests whose deadline lapsed in queue. One
        // instant — the drain time — judges the whole scan: re-reading
        // the clock per job would let a large batch straddle the
        // deadline mid-scan, shedding a later job that an earlier,
        // identical deadline survived.
        let mut batch: Vec<Job> = Vec::with_capacity(taken.len());
        let mut shed_wait = Duration::ZERO;
        for job in taken {
            match job.deadline {
                Some(d) if drained_at >= d => {
                    metrics.rejected_deadline.inc();
                    let waited = drained_at - job.enqueued;
                    shed_wait = shed_wait.max(waited);
                    let waited_us = waited.as_micros() as u64;
                    let _scope = job.trace.map(snn_obs::tracectx::set_scope);
                    snn_obs::log_warn!("request shed", reason = "deadline", waited_us = waited_us);
                    let _ = job.tx.send(Err(Rejection::DeadlineExceeded { waited_us }));
                }
                _ => batch.push(job),
            }
        }
        if shed_wait > Duration::ZERO {
            // A deadline shed is queue wait with nothing to show for
            // it — the strongest congestion evidence there is.
            if admission.observe(shed_wait, Duration::ZERO) {
                metrics.admit_decreases.inc();
            }
            metrics.admit_limit.set(admission.limit());
        }
        if batch.is_empty() {
            continue;
        }

        // The batch runs under the oldest rider's trace context:
        // spans the engines open (`infer_batch` down into
        // `snn_tensor` kernels) and any log records attach to it.
        let _batch_scope = batch
            .first()
            .and_then(|j| j.trace)
            .map(|ctx| snn_obs::tracectx::set_scope(ctx.child()));

        // Phases 5+6 run under `catch_unwind`: a panic anywhere in
        // rebuild or inference (including an injected
        // `panic@serve.worker` fault) must cost one batch, not the
        // worker thread — a dead worker would hang every future ticket.
        let inputs: Vec<Vec<f32>> = batch.iter().map(|j| j.input.clone()).collect();
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            snn_fault::inject_panic(&cfg.fault_site);

            // Phase 5: if the model was hot-swapped (or the engine was
            // discarded after a panic), rebuild so a batch never mixes
            // models — this is also where a dtype change (f32 → int8
            // promotion via /reload) takes effect. The registry only
            // admits validated models with an unchanged interface, so
            // this cannot fail. Brownout is decided here too, at the
            // batch boundary: while the SLO fast-burn holds and the
            // registry has a published INT8 brownout artifact, batches
            // run on the quantized engine instead.
            let current_version = registry.version();
            let current_bv = registry.brownout_version();
            // Short-circuit order matters: without a published
            // artifact the hysteresis never engages, so
            // `Metrics::brownout_active` means "mitigation actually
            // serving INT8", which is what `/healthz` keys 200-vs-503
            // off under a fast burn.
            let want_brownout = current_bv > 0 && metrics.brownout_observe();
            if engine.is_none()
                || current_version != engine_version
                || engine_brownout != want_brownout
                || (want_brownout && engine_brownout_version != current_bv)
            {
                let loaded = if want_brownout {
                    registry.brownout_artifact().expect("brownout_version > 0")
                } else {
                    registry.current()
                };
                engine = Some(
                    AnyEngine::new(&loaded.model, cfg.timesteps)
                        .expect("registry admits only validated models"),
                );
                snn_obs::log_info!(
                    "engine rebuilt",
                    version = current_version,
                    brownout = want_brownout,
                );
                engine_version = current_version;
                engine_brownout = want_brownout;
                engine_brownout_version = if want_brownout { current_bv } else { 0 };
            }

            // Phase 6: one forward pass for the whole batch.
            let started = Instant::now();
            let outputs =
                engine.as_mut().expect("engine rebuilt above").infer_batch(&inputs);
            (outputs, started)
        }));
        let (outputs, started) = match attempt {
            Ok(ok) => ok,
            Err(_) => {
                // The worker survives; the batch does not. Shed every
                // job with a typed rejection (no ticket may hang),
                // count the recovery, and let the breaker decide
                // whether to keep admitting.
                engine = None;
                metrics.worker_panics.inc();
                breaker.on_failure();
                metrics.circuit_state.set(breaker.state().as_gauge());
                snn_fault::record_recovery();
                snn_obs::log_error!(
                    "worker panic absorbed",
                    site = "serve.worker",
                    batch = batch.len(),
                    circuit = breaker.state().as_gauge(),
                );
                for job in batch {
                    let _ = job.tx.send(Err(Rejection::WorkerPanic));
                }
                continue;
            }
        };
        let infer_us = started.elapsed().as_micros() as u64;
        breaker.on_success();
        metrics.circuit_state.set(breaker.state().as_gauge());

        // Feed the batch's stage timeline to the admission controller:
        // the oldest rider's queue wait against the forward pass that
        // then served it.
        let oldest_wait = batch
            .iter()
            .map(|j| drained_at - j.enqueued)
            .max()
            .unwrap_or(Duration::ZERO);
        if admission.observe(oldest_wait, Duration::from_micros(infer_us)) {
            metrics.admit_decreases.inc();
        }
        metrics.admit_limit.set(admission.limit());

        metrics.batches.inc();
        metrics.batched_items.add(batch.len() as u64);
        if let Some(first) = outputs.first() {
            metrics.record_engine_requests(&first.engine, batch.len() as u64);
        }
        metrics.record_batch_outputs(&outputs);

        let batch_size = batch.len();
        let batch_form_us = (started - drained_at).as_micros() as u64;
        metrics.stage_batch_form.record(batch_form_us as f64 * 1e-6);
        metrics.stage_forward.record(infer_us as f64 * 1e-6);
        for (job, output) in batch.into_iter().zip(outputs) {
            let queue_us = (drained_at - job.enqueued).as_micros() as u64;
            metrics.stage_queue_wait.record(queue_us as f64 * 1e-6);
            metrics.completed.inc();
            metrics.record_latency(job.enqueued.elapsed().as_micros() as u64);
            let _ = job.tx.send(Ok(InferReply {
                output,
                batch_size,
                queue_us,
                batch_form_us,
                infer_us,
                model_version: engine_version,
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::InferenceEngine;
    use snn_core::{LifConfig, NetworkSnapshot, SpikingNetwork};
    use snn_tensor::Shape;

    fn snapshot(seed: u64) -> NetworkSnapshot {
        let lif = LifConfig { theta: 0.5, ..LifConfig::paper_default() };
        let net = SpikingNetwork::builder(Shape::d3(1, 8, 8), seed)
            .conv(4, 3, 1, 1, lif)
            .unwrap()
            .maxpool(2)
            .unwrap()
            .flatten()
            .unwrap()
            .dense(4, lif)
            .unwrap()
            .build()
            .unwrap();
        NetworkSnapshot::from_network(&net)
    }

    fn setup(cfg: BatcherConfig) -> (Arc<ModelRegistry>, Arc<Metrics>, Batcher) {
        let registry = Arc::new(ModelRegistry::new(snapshot(11), "test").unwrap());
        let metrics = Arc::new(Metrics::default());
        let batcher =
            Batcher::start(Arc::clone(&registry), cfg, Arc::clone(&metrics)).unwrap();
        (registry, metrics, batcher)
    }

    fn input(seed: u64) -> Vec<f32> {
        let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (0..64)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((x >> 33) as f32) / (u32::MAX as f32)
            })
            .collect()
    }

    #[test]
    fn serves_a_request_end_to_end() {
        let (_r, metrics, batcher) = setup(BatcherConfig::default());
        let reply = batcher.submit(input(1), None).unwrap().wait().unwrap();
        assert_eq!(reply.output.counts.len(), 4);
        assert!(!reply.output.layers.is_empty());
        assert_eq!(reply.model_version, 1);
        let snap = metrics.snapshot(_r.info());
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.batches, 1);
    }

    #[test]
    fn rejects_wrong_input_length_without_queueing() {
        let (_r, metrics, batcher) = setup(BatcherConfig::default());
        let err = batcher.submit(vec![0.0; 3], None).unwrap_err();
        assert_eq!(err, Rejection::BadInput { expected: 64, actual: 3 });
        assert_eq!(metrics.received.get(), 0);
    }

    #[test]
    fn expired_deadline_is_shed_not_served() {
        // A long linger window guarantees the 5ms deadline lapses
        // while the request is still queued.
        let cfg = BatcherConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(150),
            capacity: 8,
            timesteps: 2,
            ..BatcherConfig::default()
        };
        let (_r, metrics, batcher) = setup(cfg);
        let doomed = batcher
            .submit(input(1), Some(Instant::now() + Duration::from_millis(5)))
            .unwrap();
        let healthy = batcher.submit(input(2), None).unwrap();
        match doomed.wait() {
            Err(Rejection::DeadlineExceeded { waited_us }) => {
                assert!(waited_us >= 5_000, "waited only {waited_us}us");
            }
            other => panic!("expected deadline rejection, got {other:?}"),
        }
        let reply = healthy.wait().unwrap();
        assert_eq!(reply.output.counts.len(), 4);
        assert_eq!(metrics.rejected_deadline.get(), 1);
        assert_eq!(metrics.completed.get(), 1);
    }

    #[test]
    fn over_capacity_submissions_are_rejected_immediately() {
        // The worker lingers (max_wait) before draining, so the first
        // `capacity` submissions fill the queue and the next one must
        // bounce instead of blocking.
        let cfg = BatcherConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(250),
            capacity: 4,
            timesteps: 2,
            ..BatcherConfig::default()
        };
        let (_r, metrics, batcher) = setup(cfg);
        let tickets: Vec<Ticket> =
            (0..4).map(|i| batcher.submit(input(i), None).unwrap()).collect();
        let err = batcher.submit(input(99), None).unwrap_err();
        assert_eq!(err, Rejection::QueueFull { capacity: 4 });
        // The queued four still complete (shed policy never starves
        // accepted work), and they share one forward pass.
        for t in tickets {
            let reply = t.wait().unwrap();
            assert_eq!(reply.batch_size, 4);
        }
        assert_eq!(metrics.rejected_full.get(), 1);
        assert_eq!(metrics.completed.get(), 4);
    }

    #[test]
    fn batched_replies_are_bitwise_equal_to_serial_inference() {
        let cfg = BatcherConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(150),
            capacity: 8,
            timesteps: 4,
            ..BatcherConfig::default()
        };
        let (_r, _m, batcher) = setup(cfg);
        let items: Vec<Vec<f32>> = (0..4).map(input).collect();
        let tickets: Vec<Ticket> =
            items.iter().map(|x| batcher.submit(x.clone(), None).unwrap()).collect();
        let replies: Vec<InferReply> =
            tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        assert!(
            replies.iter().all(|r| r.batch_size == 4),
            "linger window should have coalesced all four requests"
        );
        let mut engine = InferenceEngine::new(snapshot(11), 4).unwrap();
        for (item, reply) in items.iter().zip(&replies) {
            let solo = engine.infer_one(item.clone());
            assert_eq!(reply.output, solo);
            for (a, b) in reply.output.counts.iter().zip(&solo.counts) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn hot_swap_takes_effect_at_batch_boundary() {
        let (registry, _m, batcher) = setup(BatcherConfig {
            max_batch: 1,
            max_wait: Duration::from_micros(100),
            capacity: 8,
            timesteps: 2,
            ..BatcherConfig::default()
        });
        let before = batcher.submit(input(3), None).unwrap().wait().unwrap();
        assert_eq!(before.model_version, 1);
        registry.swap(snapshot(77), "v2").unwrap();
        let after = batcher.submit(input(3), None).unwrap().wait().unwrap();
        assert_eq!(after.model_version, 2);
        assert_ne!(
            before.output.counts, after.output.counts,
            "different weights should change the rate-coded logits"
        );
    }

    #[test]
    fn hot_swap_to_int8_switches_the_serving_engine() {
        let (registry, metrics, batcher) = setup(BatcherConfig {
            max_batch: 1,
            max_wait: Duration::from_micros(100),
            capacity: 8,
            timesteps: 2,
            ..BatcherConfig::default()
        });
        let before = batcher.submit(input(3), None).unwrap().wait().unwrap();
        assert_eq!(before.output.engine, "f32");
        // Quantize the very model being served and promote it.
        let snap = snapshot(11);
        let split: Vec<Vec<f32>> = (0..4).map(|i| input(i + 1)).collect();
        let cal = snn_quant::calibrate(&snap, &split, 2).unwrap();
        let artifact = snn_quant::quantize_snapshot(&snap, &cal, 8).unwrap();
        let receipt = registry.swap(artifact, "int8").unwrap();
        assert_eq!(receipt.info.dtype, "int8");
        let after = batcher.submit(input(3), None).unwrap().wait().unwrap();
        assert_eq!(after.output.engine, "int8");
        assert_eq!(after.model_version, 2);
        assert_eq!(after.output.counts.len(), 4);
        assert!(!after.output.layers.is_empty(), "int8 path reports firing rates too");
        assert_eq!(metrics.engine_f32_requests.get(), 1);
        assert_eq!(metrics.engine_int8_requests.get(), 1);
    }

    #[test]
    fn worker_panic_fails_batch_typed_and_worker_survives() {
        // One injected panic: the batch it hits is lost (typed, not
        // hung), the worker catches it, rebuilds the engine, and the
        // next request is served normally.
        let plan =
            Arc::new(snn_fault::FaultPlan::parse("panic@serve.worker:1", 0).unwrap());
        let _guard = snn_fault::install(plan);
        let (_r, metrics, batcher) =
            setup(BatcherConfig { timesteps: 2, ..BatcherConfig::default() });
        let err = batcher.submit(input(1), None).unwrap().wait().unwrap_err();
        assert_eq!(err, Rejection::WorkerPanic);
        assert_eq!(metrics.worker_panics.get(), 1);
        // Default threshold is 3: one failure keeps the circuit closed.
        assert_eq!(batcher.circuit_state(), CircuitState::Closed);
        let reply = batcher.submit(input(2), None).unwrap().wait().unwrap();
        assert_eq!(reply.output.counts.len(), 4);
        assert_eq!(metrics.completed.get(), 1);
    }

    #[test]
    fn panicked_batch_matches_clean_engine_after_rebuild() {
        // The rebuilt engine must serve bitwise-identical answers: a
        // panic discards scratch state, not the model.
        let plan =
            Arc::new(snn_fault::FaultPlan::parse("panic@serve.worker:1", 0).unwrap());
        let _guard = snn_fault::install(plan);
        let (_r, _m, batcher) =
            setup(BatcherConfig { timesteps: 4, ..BatcherConfig::default() });
        let _ = batcher.submit(input(1), None).unwrap().wait().unwrap_err();
        let reply = batcher.submit(input(5), None).unwrap().wait().unwrap();
        let mut engine = InferenceEngine::new(snapshot(11), 4).unwrap();
        let solo = engine.infer_one(input(5));
        assert_eq!(reply.output, solo);
    }

    #[test]
    fn circuit_opens_after_threshold_and_probe_recloses() {
        let plan =
            Arc::new(snn_fault::FaultPlan::parse("panic@serve.worker:1", 0).unwrap());
        let _guard = snn_fault::install(plan);
        let cfg = BatcherConfig {
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_millis(50),
            timesteps: 2,
            ..BatcherConfig::default()
        };
        let (_r, metrics, batcher) = setup(cfg);
        let err = batcher.submit(input(1), None).unwrap().wait().unwrap_err();
        assert_eq!(err, Rejection::WorkerPanic);
        assert_eq!(batcher.circuit_state(), CircuitState::Open);
        assert_eq!(metrics.circuit_state.get(), CircuitState::Open.as_gauge());
        // While open, submissions shed before queueing.
        assert_eq!(batcher.submit(input(2), None).unwrap_err(), Rejection::CircuitOpen);
        std::thread::sleep(Duration::from_millis(60));
        // First submit after cooldown is the half-open probe; the
        // occurrence rule already fired, so the probe succeeds and the
        // circuit closes.
        let reply = batcher.submit(input(3), None).unwrap().wait().unwrap();
        assert_eq!(reply.output.counts.len(), 4);
        assert_eq!(batcher.circuit_state(), CircuitState::Closed);
        assert_eq!(metrics.circuit_state.get(), CircuitState::Closed.as_gauge());
    }

    #[test]
    fn queue_len_tracks_accepted_work() {
        // A long linger window keeps submissions queued long enough
        // to observe them; after the batch drains, the queue is empty.
        let cfg = BatcherConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(200),
            capacity: 8,
            timesteps: 2,
            ..BatcherConfig::default()
        };
        let (_r, _m, batcher) = setup(cfg);
        assert_eq!(batcher.queue_len(), 0);
        let tickets: Vec<Ticket> =
            (0..3).map(|i| batcher.submit(input(i), None).unwrap()).collect();
        assert!(batcher.queue_len() <= 3, "never exceeds accepted submissions");
        for t in tickets {
            t.wait().unwrap();
        }
        assert_eq!(batcher.queue_len(), 0, "drained batch leaves an empty queue");
    }

    #[test]
    fn congestion_drives_admission_sheds_below_capacity() {
        // Two rounds of deadline-doomed work (queue wait with nothing
        // to show for it) pull the AIMD limit from 16 to 16·0.25² = 1;
        // the fixed capacity bound never fires, the adaptive one does.
        let cfg = BatcherConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(40),
            capacity: 16,
            timesteps: 2,
            admission: AdmissionConfig {
                decrease: 0.25,
                queue_floor: Duration::from_millis(1),
                ..AdmissionConfig::default()
            },
            ..BatcherConfig::default()
        };
        let (_r, metrics, batcher) = setup(cfg);
        assert_eq!(batcher.admission_limit(), 16.0);
        for _round in 0..2 {
            let doomed: Vec<Ticket> = (0..4)
                .map(|i| {
                    batcher
                        .submit(input(i), Some(Instant::now() + Duration::from_millis(1)))
                        .unwrap()
                })
                .collect();
            for t in doomed {
                assert!(matches!(t.wait(), Err(Rejection::DeadlineExceeded { .. })));
            }
        }
        assert_eq!(batcher.admission_limit(), 1.0);
        assert!(metrics.admit_decreases.get() >= 2);
        // One request is always admissible; the second in the same
        // linger window sheds at admission, not at capacity.
        let admitted = batcher.submit(input(1), None).unwrap();
        let err = batcher.submit(input(2), None).unwrap_err();
        assert_eq!(err, Rejection::AdmissionShed { limit: 1 });
        assert_eq!(metrics.admit_shed.get(), 1);
        assert_eq!(metrics.rejected_full.get(), 0, "capacity bound never fired");
        // The admitted request still completes — shedding never
        // starves accepted work. (Additive recovery is pinned by the
        // admission module's own tests; this config's long linger
        // reads as congestion by design.)
        admitted.wait().unwrap();
    }

    #[test]
    fn fast_burn_flips_batches_to_the_brownout_engine() {
        use crate::admission::Brownout;
        use snn_obs::SloConfig;

        let registry = Arc::new(ModelRegistry::new(snapshot(11), "test").unwrap());
        // Real SLO tracker, instant-exit brownout hold: ten failed
        // requests saturate the 5-minute error budget and flip the
        // fast-burn flag.
        let metrics = Arc::new(Metrics::with_overload(
            Some(SloConfig::parse("avail=99.9").unwrap()),
            Brownout::new(Duration::ZERO),
        ));
        let batcher = Batcher::start(
            Arc::clone(&registry),
            BatcherConfig {
                max_batch: 1,
                max_wait: Duration::from_micros(100),
                capacity: 8,
                timesteps: 2,
                ..BatcherConfig::default()
            },
            Arc::clone(&metrics),
        )
        .unwrap();

        // Publish the quantized twin of the serving model as the
        // brownout artifact; the primary slot stays f32 at version 1.
        let snap = snapshot(11);
        let split: Vec<Vec<f32>> = (0..4).map(|i| input(i + 1)).collect();
        let cal = snn_quant::calibrate(&snap, &split, 2).unwrap();
        let artifact = snn_quant::quantize_snapshot(&snap, &cal, 8).unwrap();
        registry.publish_brownout(artifact, "int8-brownout").unwrap();

        let before = batcher.submit(input(3), None).unwrap().wait().unwrap();
        assert_eq!(before.output.engine, "f32");
        assert!(!metrics.brownout_active());

        for _ in 0..MIN_EVENTS_FOR_BURN_TEST {
            metrics.slo_record(false, 1_000);
        }
        assert!(metrics.slo_fast_burn(), "ten hard failures saturate the budget");
        let during = batcher.submit(input(3), None).unwrap().wait().unwrap();
        assert_eq!(during.output.engine, "int8", "brownout routes batches to INT8");
        assert_eq!(during.model_version, 1, "replies still name the primary version");
        assert!(metrics.brownout_active());
        assert_eq!(during.output.counts.len(), 4);
    }

    const MIN_EVENTS_FOR_BURN_TEST: usize = 10;

    #[test]
    fn shutdown_rejects_queued_and_new_work() {
        let cfg = BatcherConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(500),
            capacity: 16,
            timesteps: 2,
            ..BatcherConfig::default()
        };
        let (_r, metrics, mut batcher) = setup(cfg);
        let queued = batcher.submit(input(1), None).unwrap();
        batcher.shutdown();
        // Whether the worker dispatched the job before seeing the
        // flag, the ticket must resolve — shutdown never deadlocks.
        match queued.wait() {
            Ok(reply) => assert_eq!(reply.output.counts.len(), 4),
            Err(Rejection::ShuttingDown) => {
                assert_eq!(metrics.rejected_shutdown.get(), 1);
            }
            Err(other) => panic!("unexpected rejection {other:?}"),
        }
        assert_eq!(batcher.submit(input(2), None).unwrap_err(), Rejection::ShuttingDown);
    }
}
