//! The model registry: which model is being served, hot-swappable.
//!
//! The registry holds the current model behind an `Arc` that is
//! swapped atomically under a short write lock. Readers (the HTTP
//! handlers, the batch worker) clone the `Arc` and never block each
//! other; a swap becomes visible at the next batch boundary, so no
//! request ever runs against a half-replaced model.
//!
//! Since the quantization subsystem landed, "a model" is a
//! [`ServedModel`]: either an f32 [`NetworkSnapshot`] or an INT8
//! [`snn_quant::QuantizedSnapshot`]. The two carry the same serving
//! interface (input shape, class count) and hot-swap across dtypes is
//! allowed — promoting a freshly quantized artifact over the f32
//! model it came from is exactly the intended deployment move. The
//! engine behind the queue is rebuilt per swap, so the dtype of the
//! *serving* path always matches the registry.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use serde::Serialize;

use snn_core::{NetworkSnapshot, SnapshotError};
use snn_quant::{QuantError, QuantizedSnapshot};

/// Quantization parameters of a served INT8 model, surfaced in
/// [`ModelInfo`] (and thus `/metrics.json` and the `/reload` receipt)
/// so operators can tell *which* quantization is live, not just that
/// one is.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct QuantInfo {
    /// Weight bit width (symmetric signed: `bits = 8` → `[-127, 127]`).
    pub bits: u32,
    /// Input quantization levels (level-coded first layer).
    pub input_levels: i32,
    /// Calibrated input clamp ceiling.
    pub input_max: f32,
    /// Membrane Q-format fraction bits per spiking stage, in forward
    /// order.
    pub frac_bits: Vec<u32>,
}

/// A model the registry can serve: the training-side f32 snapshot or
/// a post-training-quantized INT8 artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum ServedModel {
    /// Full-precision snapshot, served by the f32 engine.
    F32(NetworkSnapshot),
    /// Quantized artifact, served by the integer engine.
    Int8(QuantizedSnapshot),
}

impl From<NetworkSnapshot> for ServedModel {
    fn from(s: NetworkSnapshot) -> Self {
        ServedModel::F32(s)
    }
}

impl From<QuantizedSnapshot> for ServedModel {
    fn from(s: QuantizedSnapshot) -> Self {
        ServedModel::Int8(s)
    }
}

/// Maps a quantized artifact's typed error into the registry's
/// [`SnapshotError`] vocabulary so [`SwapError`] stays uniform across
/// dtypes: per-stage faults become layer errors, composition faults
/// stay structural, everything else is malformed input.
fn quant_error(e: QuantError) -> SnapshotError {
    match e {
        QuantError::Stage { stage, message } | QuantError::Overflow { stage, message } => {
            SnapshotError::Layer { layer: stage, message }
        }
        QuantError::Structure(m) => SnapshotError::Structure(m),
        other => SnapshotError::Malformed(other.to_string()),
    }
}

impl ServedModel {
    /// The dtype tag used everywhere a model is described: `"f32"` or
    /// `"int8"`.
    pub fn dtype(&self) -> &'static str {
        match self {
            ServedModel::F32(_) => "f32",
            ServedModel::Int8(_) => "int8",
        }
    }

    /// Validates the underlying artifact.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] (quantized-artifact errors are mapped
    /// through the same vocabulary) if the model is not servable.
    pub fn validate(&self) -> Result<(), SnapshotError> {
        match self {
            ServedModel::F32(s) => s.validate(),
            ServedModel::Int8(q) => q.validate().map_err(quant_error),
        }
    }

    /// The serving interface: per-item input dims and class count.
    /// Swaps require this to be preserved regardless of dtype.
    pub fn interface(&self) -> (Vec<usize>, usize) {
        match self {
            ServedModel::F32(s) => (s.input_item_dims.clone(), s.classes),
            ServedModel::Int8(q) => (q.input_item_dims.clone(), q.classes),
        }
    }

    /// Decodes either artifact flavor from JSON, validated.
    ///
    /// Dispatch sniffs the top-level shape: quantized artifacts carry
    /// a `format`/`stages` pair (and no `layers`), f32 snapshots carry
    /// `layers`. A body that decodes as neither gets the f32 reader's
    /// error — the established operator-facing message.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Malformed`] for undecodable bodies and
    /// whatever validation finds for decodable-but-broken ones.
    pub fn from_json(text: &str) -> Result<ServedModel, SnapshotError> {
        let looks_quantized = matches!(
            serde_json::parse(text),
            Ok(serde::Value::Object(ref entries))
                if entries.iter().any(|(k, _)| k == "format" || k == "stages")
                    && !entries.iter().any(|(k, _)| k == "layers")
        );
        if looks_quantized {
            let q = QuantizedSnapshot::from_json(text).map_err(quant_error)?;
            Ok(ServedModel::Int8(q))
        } else {
            Ok(ServedModel::F32(NetworkSnapshot::from_json(text)?))
        }
    }
}

/// Summary of the currently served model.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ModelInfo {
    /// Operator-facing name (usually the snapshot path, or `demo`).
    pub name: String,
    /// Monotonic version, bumped on every successful swap.
    pub version: u64,
    /// Numeric format of the serving path: `"f32"` or `"int8"`.
    pub dtype: String,
    /// Flattened input length one request must supply.
    pub input_len: usize,
    /// Number of output classes.
    pub classes: usize,
    /// Trainable parameter count.
    pub params: usize,
    /// Content hash (FNV-1a 64, hex) of the model's serialized form —
    /// the same identity `snn-store`'s artifact registry uses, so
    /// operators can match a served model to a published artifact.
    pub hash: String,
    /// Quantization parameters when `dtype == "int8"`, absent for f32.
    pub quant: Option<QuantInfo>,
}

/// A validated model plus its serving metadata.
#[derive(Debug)]
pub struct LoadedModel {
    /// The model itself (f32 tensors are `Arc`-backed; quantized
    /// stages are plain vectors — engines clone once per swap, not per
    /// request).
    pub model: ServedModel,
    /// Serving metadata.
    pub info: ModelInfo,
}

/// Receipt of a successful swap, captured inside the swap's critical
/// section so concurrent reloads each see the version *they* actually
/// replaced.
#[derive(Debug, Clone, PartialEq)]
pub struct SwapReceipt {
    /// Version that was serving immediately before this swap.
    pub replaced: u64,
    /// Metadata of the now-serving model.
    pub info: ModelInfo,
}

/// Error swapping a new model into the registry.
#[derive(Debug, Clone, PartialEq)]
pub enum SwapError {
    /// The incoming model failed validation.
    Invalid(SnapshotError),
    /// The incoming model is valid but serves a different interface
    /// than the current one; queued requests would become
    /// unanswerable, so the swap is refused.
    Incompatible {
        /// What the current model serves, formatted.
        current: String,
        /// What the incoming model serves, formatted.
        incoming: String,
    },
}

impl fmt::Display for SwapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwapError::Invalid(e) => write!(f, "rejected snapshot: {e}"),
            SwapError::Incompatible { current, incoming } => write!(
                f,
                "incompatible snapshot: currently serving {current}, incoming serves {incoming}"
            ),
        }
    }
}

impl std::error::Error for SwapError {}

/// The hot-swappable home of the serving model.
pub struct ModelRegistry {
    current: RwLock<Arc<LoadedModel>>,
    version: AtomicU64,
    /// Published INT8 degradation artifact: what batch workers serve
    /// while brownout is active. Absent means brownout cannot engage.
    brownout: RwLock<Option<Arc<LoadedModel>>>,
    brownout_version: AtomicU64,
}

impl ModelRegistry {
    /// Validates `model` and creates a registry serving it as
    /// version 1.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] if the model does not describe a
    /// runnable network.
    pub fn new(
        model: impl Into<ServedModel>,
        name: impl Into<String>,
    ) -> Result<Self, SnapshotError> {
        let model = model.into();
        model.validate()?;
        let info = Self::info_for(&model, name.into(), 1);
        Ok(ModelRegistry {
            current: RwLock::new(Arc::new(LoadedModel { model, info })),
            version: AtomicU64::new(1),
            brownout: RwLock::new(None),
            brownout_version: AtomicU64::new(0),
        })
    }

    fn info_for(model: &ServedModel, name: String, version: u64) -> ModelInfo {
        match model {
            ServedModel::F32(snapshot) => {
                // Validation already ran, so into_network cannot panic;
                // a throwaway network is the simplest source of derived
                // counts.
                let net = snapshot.clone().into_network();
                let json =
                    serde_json::to_string(snapshot).expect("snapshots always serialize");
                ModelInfo {
                    name,
                    version,
                    dtype: "f32".into(),
                    input_len: net.input_item_shape().len(),
                    classes: net.classes(),
                    params: net.param_count(),
                    hash: snn_store::fnv64_hex(json.as_bytes()),
                    quant: None,
                }
            }
            ServedModel::Int8(q) => {
                let json =
                    serde_json::to_string(q).expect("quantized artifacts always serialize");
                ModelInfo {
                    name,
                    version,
                    dtype: "int8".into(),
                    input_len: q.input_item_dims.iter().product(),
                    classes: q.classes,
                    params: q.param_count() as usize,
                    hash: snn_store::fnv64_hex(json.as_bytes()),
                    quant: Some(QuantInfo {
                        bits: q.bits,
                        input_levels: q.input_levels,
                        input_max: q.input_max,
                        frac_bits: q.frac_bits(),
                    }),
                }
            }
        }
    }

    /// The currently served model (cheap `Arc` clone).
    pub fn current(&self) -> Arc<LoadedModel> {
        self.current.read().expect("registry lock poisoned").clone()
    }

    /// Serving metadata of the current model.
    pub fn info(&self) -> ModelInfo {
        self.current().info.clone()
    }

    /// Version of the current model. Workers compare this against the
    /// version their engine was built from to detect swaps without
    /// taking the lock.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Atomically replaces the served model.
    ///
    /// The new model must pass validation and expose the same input
    /// shape and class count as the current one (in-flight and queued
    /// requests were validated against that interface). The dtype may
    /// change freely: swapping an INT8 artifact over its f32 parent is
    /// the standard promotion path, and the batch worker rebuilds the
    /// matching engine at the next batch boundary.
    ///
    /// # Errors
    ///
    /// Returns [`SwapError`] and leaves the current model serving.
    pub fn swap(
        &self,
        model: impl Into<ServedModel>,
        name: impl Into<String>,
    ) -> Result<SwapReceipt, SwapError> {
        let model = model.into();
        model.validate().map_err(SwapError::Invalid)?;
        let mut slot = self.current.write().expect("registry lock poisoned");
        let cur = slot.model.interface();
        let new = model.interface();
        if cur != new {
            return Err(SwapError::Incompatible {
                current: format!("input {:?} / {} classes", cur.0, cur.1),
                incoming: format!("input {:?} / {} classes", new.0, new.1),
            });
        }
        // Read the outgoing version under the write lock: it is the
        // version this swap actually replaces, even when reloads race.
        let replaced = self.version.load(Ordering::Acquire);
        let version = replaced + 1;
        let info = Self::info_for(&model, name.into(), version);
        *slot = Arc::new(LoadedModel { model, info: info.clone() });
        // Publish the version only after the slot holds the new model
        // so a worker that observes the bump always rebuilds from it.
        self.version.store(version, Ordering::Release);
        Ok(SwapReceipt { replaced, info })
    }

    /// Publishes an INT8 brownout artifact: the degraded-mode model
    /// batch workers switch to while the SLO fast-burn signal holds.
    /// Does not affect the primary serving slot or its version.
    ///
    /// # Errors
    ///
    /// Returns [`SwapError::Invalid`] for unservable artifacts and
    /// [`SwapError::Incompatible`] when the artifact is not INT8 or
    /// serves a different interface than the current primary model —
    /// brownout must be transparent to callers except for the
    /// `"engine"` tag.
    pub fn publish_brownout(
        &self,
        model: impl Into<ServedModel>,
        name: impl Into<String>,
    ) -> Result<ModelInfo, SwapError> {
        let model = model.into();
        model.validate().map_err(SwapError::Invalid)?;
        if model.dtype() != "int8" {
            return Err(SwapError::Incompatible {
                current: "brownout slot (requires an int8 artifact)".into(),
                incoming: format!("{} artifact", model.dtype()),
            });
        }
        let cur = self.current().model.interface();
        let new = model.interface();
        if cur != new {
            return Err(SwapError::Incompatible {
                current: format!("input {:?} / {} classes", cur.0, cur.1),
                incoming: format!("input {:?} / {} classes", new.0, new.1),
            });
        }
        let version = self.brownout_version.load(Ordering::Acquire) + 1;
        let info = Self::info_for(&model, name.into(), version);
        *self.brownout.write().expect("registry lock poisoned") =
            Some(Arc::new(LoadedModel { model, info: info.clone() }));
        self.brownout_version.store(version, Ordering::Release);
        Ok(info)
    }

    /// The published brownout artifact, if any (cheap `Arc` clone).
    pub fn brownout_artifact(&self) -> Option<Arc<LoadedModel>> {
        self.brownout.read().expect("registry lock poisoned").clone()
    }

    /// Version counter of the brownout slot (0 = never published).
    /// Workers serving in brownout compare this the same way they
    /// compare [`ModelRegistry::version`] for the primary slot.
    pub fn brownout_version(&self) -> u64 {
        self.brownout_version.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_core::{LifConfig, SpikingNetwork};
    use snn_quant::{calibrate, quantize_snapshot};
    use snn_tensor::Shape;

    fn snap(seed: u64, classes: usize) -> NetworkSnapshot {
        let lif = LifConfig { theta: 0.5, ..LifConfig::paper_default() };
        let net = SpikingNetwork::builder(Shape::d3(1, 8, 8), seed)
            .conv(4, 3, 1, 1, lif)
            .unwrap()
            .maxpool(2)
            .unwrap()
            .flatten()
            .unwrap()
            .dense(classes, lif)
            .unwrap()
            .build()
            .unwrap();
        NetworkSnapshot::from_network(&net)
    }

    fn qsnap(seed: u64, classes: usize) -> QuantizedSnapshot {
        let snap = snap(seed, classes);
        let items: Vec<Vec<f32>> = (0..4)
            .map(|i| (0..64).map(|j| ((i + j) % 7) as f32 / 6.0).collect())
            .collect();
        let cal = calibrate(&snap, &items, 4).unwrap();
        quantize_snapshot(&snap, &cal, 8).unwrap()
    }

    #[test]
    fn swap_bumps_version_and_replaces_weights() {
        let reg = ModelRegistry::new(snap(1, 4), "a").unwrap();
        assert_eq!(reg.version(), 1);
        assert_eq!(reg.info().input_len, 64);
        assert_eq!(reg.info().dtype, "f32");
        assert!(reg.info().quant.is_none());
        let before = reg.current();
        let receipt = reg.swap(snap(2, 4), "b").unwrap();
        assert_eq!(receipt.replaced, 1);
        assert_eq!(receipt.info.version, 2);
        assert_eq!(reg.version(), 2);
        assert_eq!(reg.info().name, "b");
        let after = reg.current();
        assert_ne!(before.model, after.model, "weights must differ across seeds");
    }

    #[test]
    fn swap_rejects_incompatible_interface() {
        let reg = ModelRegistry::new(snap(1, 4), "a").unwrap();
        let err = reg.swap(snap(1, 5), "b").unwrap_err();
        assert!(matches!(err, SwapError::Incompatible { .. }));
        assert_eq!(reg.version(), 1, "failed swap must not bump the version");
    }

    #[test]
    fn swap_rejects_invalid_snapshot() {
        let reg = ModelRegistry::new(snap(1, 4), "a").unwrap();
        let mut bad = snap(2, 4);
        bad.layers.clear();
        assert!(matches!(reg.swap(bad, "b").unwrap_err(), SwapError::Invalid(_)));
        assert_eq!(reg.version(), 1);
    }

    #[test]
    fn int8_swap_over_f32_carries_quant_metadata() {
        let reg = ModelRegistry::new(snap(1, 4), "f32-model").unwrap();
        let receipt = reg.swap(qsnap(1, 4), "int8-model").unwrap();
        assert_eq!(receipt.info.dtype, "int8");
        assert_eq!(receipt.info.input_len, 64);
        assert_eq!(receipt.info.classes, 4);
        let quant = receipt.info.quant.expect("int8 info carries quant params");
        assert_eq!(quant.bits, 8);
        assert_eq!(quant.input_levels, 255);
        assert_eq!(quant.frac_bits.len(), 2, "conv + dense stages");
        assert_eq!(receipt.info.hash.len(), 16);
        // And back: the f32 parent swaps over its quantized child.
        let back = reg.swap(snap(1, 4), "f32-again").unwrap();
        assert_eq!(back.info.dtype, "f32");
        assert!(back.info.quant.is_none());
    }

    #[test]
    fn int8_swap_rejects_incompatible_interface() {
        let reg = ModelRegistry::new(snap(1, 4), "a").unwrap();
        let err = reg.swap(qsnap(1, 5), "b").unwrap_err();
        assert!(matches!(err, SwapError::Incompatible { .. }));
        assert_eq!(reg.info().dtype, "f32");
    }

    #[test]
    fn brownout_slot_requires_a_compatible_int8_artifact() {
        let reg = ModelRegistry::new(snap(1, 4), "primary").unwrap();
        assert!(reg.brownout_artifact().is_none());
        assert_eq!(reg.brownout_version(), 0);
        // f32 artifacts are refused: brownout exists to degrade *to*
        // the integer engine.
        let err = reg.publish_brownout(snap(1, 4), "nope").unwrap_err();
        assert!(matches!(err, SwapError::Incompatible { .. }));
        // Wrong interface is refused even when int8.
        let err = reg.publish_brownout(qsnap(1, 5), "nope").unwrap_err();
        assert!(matches!(err, SwapError::Incompatible { .. }));
        // A compatible int8 artifact publishes without touching the
        // primary slot or its version.
        let info = reg.publish_brownout(qsnap(1, 4), "deg").unwrap();
        assert_eq!(info.dtype, "int8");
        assert_eq!(reg.brownout_version(), 1);
        assert_eq!(reg.version(), 1, "primary version untouched");
        assert_eq!(reg.info().dtype, "f32", "primary still serving f32");
        let loaded = reg.brownout_artifact().expect("published");
        assert_eq!(loaded.info.name, "deg");
        // Republishing bumps the brownout version.
        reg.publish_brownout(qsnap(2, 4), "deg2").unwrap();
        assert_eq!(reg.brownout_version(), 2);
    }

    #[test]
    fn from_json_sniffs_both_artifact_flavors() {
        let f = serde_json::to_string(&snap(3, 4)).unwrap();
        let q = serde_json::to_string(&qsnap(3, 4)).unwrap();
        assert_eq!(ServedModel::from_json(&f).unwrap().dtype(), "f32");
        assert_eq!(ServedModel::from_json(&q).unwrap().dtype(), "int8");
    }

    #[test]
    fn malformed_quant_metadata_is_a_typed_error_not_a_panic() {
        // A body that *claims* to be quantized (has `stages`) but is
        // broken must come back as a typed SnapshotError.
        let cases = [
            r#"{"format":"snn-quant/1","stages":"nope"}"#,
            r#"{"format":"snn-quant/99","stages":[]}"#,
            r#"{"stages":[]}"#,
        ];
        for body in cases {
            let err = ServedModel::from_json(body).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Malformed(_) | SnapshotError::Structure(_)),
                "body {body} gave {err:?}"
            );
        }
        // Corrupting a real artifact's numeric guts trips validation,
        // also typed.
        let mut q = qsnap(4, 4);
        q.input_levels = 0;
        let json = serde_json::to_string(&q).unwrap();
        assert!(ServedModel::from_json(&json).is_err());
    }

    #[test]
    fn old_f32_reader_still_loads_pre_quant_artifacts() {
        // Backward compatibility: an f32 snapshot serialized before
        // the quant subsystem existed (no dtype anywhere in the body)
        // round-trips through the registry untouched.
        let json = serde_json::to_string(&snap(9, 4)).unwrap();
        let model = ServedModel::from_json(&json).unwrap();
        let reg = ModelRegistry::new(model, "legacy").unwrap();
        let info = reg.info();
        assert_eq!(info.dtype, "f32");
        assert_eq!(info.input_len, 64);
        assert_eq!(info.classes, 4);
    }
}
