//! The model registry: which snapshot is being served, hot-swappable.
//!
//! The registry holds the current snapshot behind an `Arc` that is
//! swapped atomically under a short write lock. Readers (the HTTP
//! handlers, the batch worker) clone the `Arc` and never block each
//! other; a swap becomes visible at the next batch boundary, so no
//! request ever runs against a half-replaced model.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use serde::Serialize;

use snn_core::{NetworkSnapshot, SnapshotError};

/// Summary of the currently served model.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ModelInfo {
    /// Operator-facing name (usually the snapshot path, or `demo`).
    pub name: String,
    /// Monotonic version, bumped on every successful swap.
    pub version: u64,
    /// Flattened input length one request must supply.
    pub input_len: usize,
    /// Number of output classes.
    pub classes: usize,
    /// Trainable parameter count.
    pub params: usize,
    /// Content hash (FNV-1a 64, hex) of the snapshot's serialized
    /// form — the same identity `snn-store`'s artifact registry uses,
    /// so operators can match a served model to a published artifact.
    pub hash: String,
}

/// A validated snapshot plus its serving metadata.
#[derive(Debug)]
pub struct LoadedModel {
    /// The snapshot itself (tensors are `Arc`-backed; cloning the
    /// snapshot to build an engine copies no weight data).
    pub snapshot: NetworkSnapshot,
    /// Serving metadata.
    pub info: ModelInfo,
}

/// Receipt of a successful swap, captured inside the swap's critical
/// section so concurrent reloads each see the version *they* actually
/// replaced.
#[derive(Debug, Clone, PartialEq)]
pub struct SwapReceipt {
    /// Version that was serving immediately before this swap.
    pub replaced: u64,
    /// Metadata of the now-serving model.
    pub info: ModelInfo,
}

/// Error swapping a new snapshot into the registry.
#[derive(Debug, Clone, PartialEq)]
pub enum SwapError {
    /// The incoming snapshot failed validation.
    Invalid(SnapshotError),
    /// The incoming snapshot is valid but serves a different
    /// interface than the current model; queued requests would become
    /// unanswerable, so the swap is refused.
    Incompatible {
        /// What the current model serves, formatted.
        current: String,
        /// What the incoming snapshot serves, formatted.
        incoming: String,
    },
}

impl fmt::Display for SwapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwapError::Invalid(e) => write!(f, "rejected snapshot: {e}"),
            SwapError::Incompatible { current, incoming } => write!(
                f,
                "incompatible snapshot: currently serving {current}, incoming serves {incoming}"
            ),
        }
    }
}

impl std::error::Error for SwapError {}

/// The hot-swappable home of the serving snapshot.
pub struct ModelRegistry {
    current: RwLock<Arc<LoadedModel>>,
    version: AtomicU64,
}

fn interface_of(snapshot: &NetworkSnapshot) -> (Vec<usize>, usize) {
    (snapshot.input_item_dims.clone(), snapshot.classes)
}

impl ModelRegistry {
    /// Validates `snapshot` and creates a registry serving it as
    /// version 1.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] if the snapshot does not describe a
    /// runnable network.
    pub fn new(snapshot: NetworkSnapshot, name: impl Into<String>) -> Result<Self, SnapshotError> {
        snapshot.validate()?;
        let info = Self::info_for(&snapshot, name.into(), 1);
        Ok(ModelRegistry {
            current: RwLock::new(Arc::new(LoadedModel { snapshot, info })),
            version: AtomicU64::new(1),
        })
    }

    fn info_for(snapshot: &NetworkSnapshot, name: String, version: u64) -> ModelInfo {
        // Validation already ran, so into_network cannot panic; a
        // throwaway network is the simplest source of derived counts.
        let net = snapshot.clone().into_network();
        let json = serde_json::to_string(snapshot).expect("snapshots always serialize");
        ModelInfo {
            name,
            version,
            input_len: net.input_item_shape().len(),
            classes: net.classes(),
            params: net.param_count(),
            hash: snn_store::fnv64_hex(json.as_bytes()),
        }
    }

    /// The currently served model (cheap `Arc` clone).
    pub fn current(&self) -> Arc<LoadedModel> {
        self.current.read().expect("registry lock poisoned").clone()
    }

    /// Serving metadata of the current model.
    pub fn info(&self) -> ModelInfo {
        self.current().info.clone()
    }

    /// Version of the current model. Workers compare this against the
    /// version their engine was built from to detect swaps without
    /// taking the lock.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Atomically replaces the served snapshot.
    ///
    /// The new snapshot must pass validation and expose the same
    /// input shape and class count as the current one (in-flight and
    /// queued requests were validated against that interface).
    ///
    /// # Errors
    ///
    /// Returns [`SwapError`] and leaves the current model serving.
    pub fn swap(
        &self,
        snapshot: NetworkSnapshot,
        name: impl Into<String>,
    ) -> Result<SwapReceipt, SwapError> {
        snapshot.validate().map_err(SwapError::Invalid)?;
        let mut slot = self.current.write().expect("registry lock poisoned");
        let cur = interface_of(&slot.snapshot);
        let new = interface_of(&snapshot);
        if cur != new {
            return Err(SwapError::Incompatible {
                current: format!("input {:?} / {} classes", cur.0, cur.1),
                incoming: format!("input {:?} / {} classes", new.0, new.1),
            });
        }
        // Read the outgoing version under the write lock: it is the
        // version this swap actually replaces, even when reloads race.
        let replaced = self.version.load(Ordering::Acquire);
        let version = replaced + 1;
        let info = Self::info_for(&snapshot, name.into(), version);
        *slot = Arc::new(LoadedModel { snapshot, info: info.clone() });
        // Publish the version only after the slot holds the new model
        // so a worker that observes the bump always rebuilds from it.
        self.version.store(version, Ordering::Release);
        Ok(SwapReceipt { replaced, info })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_core::{LifConfig, SpikingNetwork};
    use snn_tensor::Shape;

    fn snap(seed: u64, classes: usize) -> NetworkSnapshot {
        let lif = LifConfig { theta: 0.5, ..LifConfig::paper_default() };
        let net = SpikingNetwork::builder(Shape::d3(1, 8, 8), seed)
            .conv(4, 3, 1, 1, lif)
            .unwrap()
            .maxpool(2)
            .unwrap()
            .flatten()
            .unwrap()
            .dense(classes, lif)
            .unwrap()
            .build()
            .unwrap();
        NetworkSnapshot::from_network(&net)
    }

    #[test]
    fn swap_bumps_version_and_replaces_weights() {
        let reg = ModelRegistry::new(snap(1, 4), "a").unwrap();
        assert_eq!(reg.version(), 1);
        assert_eq!(reg.info().input_len, 64);
        let before = reg.current();
        let receipt = reg.swap(snap(2, 4), "b").unwrap();
        assert_eq!(receipt.replaced, 1);
        assert_eq!(receipt.info.version, 2);
        assert_eq!(reg.version(), 2);
        assert_eq!(reg.info().name, "b");
        let after = reg.current();
        assert_ne!(before.snapshot, after.snapshot, "weights must differ across seeds");
    }

    #[test]
    fn swap_rejects_incompatible_interface() {
        let reg = ModelRegistry::new(snap(1, 4), "a").unwrap();
        let err = reg.swap(snap(1, 5), "b").unwrap_err();
        assert!(matches!(err, SwapError::Incompatible { .. }));
        assert_eq!(reg.version(), 1, "failed swap must not bump the version");
    }

    #[test]
    fn swap_rejects_invalid_snapshot() {
        let reg = ModelRegistry::new(snap(1, 4), "a").unwrap();
        let mut bad = snap(2, 4);
        bad.layers.clear();
        assert!(matches!(reg.swap(bad, "b").unwrap_err(), SwapError::Invalid(_)));
        assert_eq!(reg.version(), 1);
    }
}
