//! Crash-safe file I/O: write-to-temp + fsync + rename, with a CRC32
//! integrity footer verified on every load.
//!
//! # Atomicity protocol
//!
//! A write never touches the destination file in place:
//!
//! 1. serialize the payload and append the integrity footer;
//! 2. write the bytes to a uniquely named temp file *in the same
//!    directory* (rename across filesystems is not atomic);
//! 3. `fsync` the temp file so its contents are on disk before the
//!    rename can be;
//! 4. `rename` over the destination — atomic on POSIX, so a reader
//!    (or a crash) sees either the complete old file or the complete
//!    new file, never a prefix;
//! 5. `fsync` the parent directory so the rename itself survives a
//!    power loss.
//!
//! # Integrity footer
//!
//! Framed files end with one newline-separated footer line:
//!
//! ```text
//! <payload bytes>\n{"snn_store_footer":1,"crc32":"9ae0daaf","len":42}
//! ```
//!
//! On load the footer is parsed, the declared length is checked
//! against the bytes present, and the payload's CRC32 is recomputed
//! and compared. Truncation (footer missing or unreadable) and bit
//! flips (CRC mismatch) both surface as [`StoreError::Corrupt`] —
//! never a panic, and never a silently short tensor.

use std::fs;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize, Value};

use crate::error::StoreError;
use crate::hash::crc32;
use crate::obs::store_obs;

/// Marker key identifying the integrity footer line.
const FOOTER_KEY: &str = "snn_store_footer";

/// Writes `bytes` to `path` atomically (temp + fsync + rename),
/// creating parent directories. No integrity footer is added — use
/// [`save_json`] for framed store files; this raw form backs
/// plain-format files like network snapshots that other tools parse
/// as bare JSON.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on any filesystem failure.
pub fn write_bytes_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> Result<(), StoreError> {
    let _span = snn_obs::span!("store_write");
    let path = path.as_ref();
    if let Some(e) = snn_fault::inject_io_error("store.write") {
        return Err(StoreError::io(path, &e));
    }
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => {
            fs::create_dir_all(p).map_err(|e| StoreError::io(path, &e))?;
            Some(p)
        }
        _ => None,
    };
    // Unique per process *and* per call: concurrent writers to the
    // same destination each get their own temp file, and the last
    // rename wins with both versions complete.
    static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| StoreError::Io {
            path: path.display().to_string(),
            message: "path has no file name".into(),
        })?;
    let tmp = path.with_file_name(format!(
        ".{file_name}.tmp.{}.{unique}",
        std::process::id()
    ));
    let result = (|| {
        let mut f = fs::File::create(&tmp).map_err(|e| StoreError::io(&tmp, &e))?;
        f.write_all(bytes).map_err(|e| StoreError::io(&tmp, &e))?;
        f.sync_all().map_err(|e| StoreError::io(&tmp, &e))?;
        fs::rename(&tmp, path).map_err(|e| StoreError::io(path, &e))?;
        if let Some(parent) = parent {
            // Durability of the rename itself; failure here is not
            // fatal to correctness (the rename was still atomic), so
            // sync errors on exotic filesystems are swallowed.
            if let Ok(dir) = fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    } else {
        store_obs().writes.inc();
    }
    result
}

/// Serializes `value` as framed JSON and writes it to `path` with
/// *create-new* semantics: the framed bytes land in a synced temp file
/// which is then `hard_link`ed to the destination, so the write is
/// both atomic (a crash leaves a complete file or none) and exclusive
/// (linking fails if `path` already exists). Returns `Ok(false)` —
/// without touching the existing file — when the destination is
/// already present, which is how callers detect a lost creation race.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on filesystem failures other than the
/// destination existing, and [`StoreError::Malformed`] if
/// serialization fails.
pub fn save_json_new<T: Serialize + ?Sized>(
    path: impl AsRef<Path>,
    value: &T,
) -> Result<bool, StoreError> {
    let _span = snn_obs::span!("store_write");
    let path = path.as_ref();
    if let Some(e) = snn_fault::inject_io_error("store.write") {
        return Err(StoreError::io(path, &e));
    }
    let json = serde_json::to_string(value).map_err(|e| StoreError::Malformed {
        path: path.display().to_string(),
        message: format!("cannot serialize: {e}"),
    })?;
    let bytes = encode_framed(json.as_bytes());
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => {
            fs::create_dir_all(p).map_err(|e| StoreError::io(path, &e))?;
            Some(p)
        }
        _ => None,
    };
    static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| StoreError::Io {
            path: path.display().to_string(),
            message: "path has no file name".into(),
        })?;
    let tmp = path.with_file_name(format!(
        ".{file_name}.tmp.{}.{unique}",
        std::process::id()
    ));
    let result = (|| {
        let mut f = fs::File::create(&tmp).map_err(|e| StoreError::io(&tmp, &e))?;
        f.write_all(&bytes).map_err(|e| StoreError::io(&tmp, &e))?;
        f.sync_all().map_err(|e| StoreError::io(&tmp, &e))?;
        match fs::hard_link(&tmp, path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => return Ok(false),
            Err(e) => return Err(StoreError::io(path, &e)),
        }
        if let Some(parent) = parent {
            if let Ok(dir) = fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(true)
    })();
    let _ = fs::remove_file(&tmp);
    if let Ok(true) = result {
        store_obs().writes.inc();
    }
    result
}

/// Frames `payload` with the CRC32 integrity footer.
pub(crate) fn encode_framed(payload: &[u8]) -> Vec<u8> {
    let footer = format!(
        "\n{{\"{FOOTER_KEY}\":1,\"crc32\":\"{:08x}\",\"len\":{}}}",
        crc32(payload),
        payload.len()
    );
    let mut out = Vec::with_capacity(payload.len() + footer.len());
    out.extend_from_slice(payload);
    out.extend_from_slice(footer.as_bytes());
    out
}

/// Splits framed `bytes` back into the verified payload.
fn decode_framed<'a>(path: &Path, bytes: &'a [u8]) -> Result<&'a [u8], StoreError> {
    let corrupt = |expected: Option<u32>, payload: &[u8], message: String| {
        store_obs().corrupt.inc();
        StoreError::Corrupt {
            path: path.display().to_string(),
            expected_crc: expected,
            actual_crc: crc32(payload),
            message,
        }
    };
    let Some(split) = bytes.iter().rposition(|&b| b == b'\n') else {
        return Err(corrupt(None, bytes, "integrity footer missing (file truncated?)".into()));
    };
    let (payload, footer_line) = (&bytes[..split], &bytes[split + 1..]);
    let footer_text = std::str::from_utf8(footer_line)
        .map_err(|_| corrupt(None, payload, "integrity footer is not UTF-8".into()))?;
    let footer: Value = serde_json::parse(footer_text)
        .map_err(|e| corrupt(None, payload, format!("integrity footer unreadable: {e}")))?;
    let field = |name: &str| -> Option<Value> {
        if let Value::Object(entries) = &footer {
            entries.iter().find(|(k, _)| k == name).map(|(_, v)| v.clone())
        } else {
            None
        }
    };
    if field(FOOTER_KEY).is_none() {
        return Err(corrupt(None, payload, "integrity footer marker missing".into()));
    }
    let declared_len = match field("len") {
        Some(Value::Number(n)) if n >= 0.0 && n.fract() == 0.0 => n as usize,
        _ => return Err(corrupt(None, payload, "integrity footer lacks a length".into())),
    };
    let expected_crc = match field("crc32") {
        Some(Value::String(s)) => u32::from_str_radix(&s, 16)
            .map_err(|_| corrupt(None, payload, "integrity footer CRC unreadable".into()))?,
        _ => return Err(corrupt(None, payload, "integrity footer lacks a CRC".into())),
    };
    if payload.len() != declared_len {
        return Err(corrupt(
            Some(expected_crc),
            payload,
            format!("payload holds {} bytes but footer declares {declared_len}", payload.len()),
        ));
    }
    let actual = crc32(payload);
    if actual != expected_crc {
        return Err(corrupt(Some(expected_crc), payload, "payload CRC mismatch".into()));
    }
    Ok(payload)
}

/// Serializes `value` as JSON, frames it with the integrity footer,
/// and writes it atomically to `path`.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on filesystem failures and
/// [`StoreError::Malformed`] if serialization itself fails.
pub fn save_json<T: Serialize + ?Sized>(
    path: impl AsRef<Path>,
    value: &T,
) -> Result<(), StoreError> {
    let path = path.as_ref();
    let json = serde_json::to_string(value).map_err(|e| StoreError::Malformed {
        path: path.display().to_string(),
        message: format!("cannot serialize: {e}"),
    })?;
    write_bytes_atomic(path, &encode_framed(json.as_bytes()))
}

/// Loads and verifies a framed JSON file written by [`save_json`],
/// returning the decoded value.
///
/// # Errors
///
/// * [`StoreError::NotFound`] — the file does not exist.
/// * [`StoreError::Io`] — any other filesystem failure.
/// * [`StoreError::Corrupt`] — the footer is missing/unreadable, the
///   declared length disagrees with the bytes present, or the CRC32
///   does not match (truncation, bit flips).
/// * [`StoreError::Malformed`] — the verified payload does not decode
///   into `T`.
pub fn load_json<T: Deserialize>(path: impl AsRef<Path>) -> Result<T, StoreError> {
    let payload = load_verified_bytes(path.as_ref())?;
    decode_payload(path.as_ref(), &payload)
}

/// Loads and verifies a framed file, returning the raw payload bytes.
///
/// # Errors
///
/// As [`load_json`], minus the decode step.
pub fn load_verified_bytes(path: &Path) -> Result<Vec<u8>, StoreError> {
    let _span = snn_obs::span!("store_read");
    if let Some(e) = snn_fault::inject_io_error("store.read") {
        return Err(StoreError::io(path, &e));
    }
    let bytes = fs::read(path).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            StoreError::NotFound { path: path.display().to_string() }
        } else {
            StoreError::io(path, &e)
        }
    })?;
    let payload = decode_framed(path, &bytes)?;
    store_obs().reads.inc();
    Ok(payload.to_vec())
}

/// Decodes verified payload bytes into `T`.
fn decode_payload<T: Deserialize>(path: &Path, payload: &[u8]) -> Result<T, StoreError> {
    let text = std::str::from_utf8(payload).map_err(|_| StoreError::Malformed {
        path: path.display().to_string(),
        message: "payload is not UTF-8".into(),
    })?;
    serde_json::from_str(text).map_err(|e| StoreError::Malformed {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("snn_store_atomic_tests").join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_framed_json() {
        let dir = scratch("roundtrip");
        let path = dir.join("nested/deep/value.json");
        let value = vec![1.5f32, -0.25, 3.0];
        save_json(&path, &value).unwrap();
        let back: Vec<f32> = load_json(&path).unwrap();
        assert_eq!(back, value);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn overwrite_replaces_whole_file() {
        let dir = scratch("overwrite");
        let path = dir.join("v.json");
        save_json(&path, &vec![1u32; 1000]).unwrap();
        save_json(&path, &vec![2u32; 3]).unwrap();
        let back: Vec<u32> = load_json(&path).unwrap();
        assert_eq!(back, vec![2, 2, 2]);
        // No temp litter left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_file_is_corrupt_not_panic() {
        let dir = scratch("truncate");
        let path = dir.join("v.json");
        save_json(&path, &vec![0.5f64; 64]).unwrap();
        let full = fs::read(&path).unwrap();
        for keep in [0, 1, full.len() / 2, full.len() - 1] {
            fs::write(&path, &full[..keep]).unwrap();
            let err = load_json::<Vec<f64>>(&path).unwrap_err();
            assert!(
                matches!(err, StoreError::Corrupt { .. }),
                "keep={keep}: got {err:?}"
            );
            assert!(err.path().contains("v.json"));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_is_corrupt_with_both_crcs() {
        let dir = scratch("bitflip");
        let path = dir.join("v.json");
        save_json(&path, &vec![1.0f32; 32]).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[4] ^= 0x20; // flip a payload bit
        fs::write(&path, &bytes).unwrap();
        match load_json::<Vec<f32>>(&path).unwrap_err() {
            StoreError::Corrupt { expected_crc, actual_crc, path: p, .. } => {
                let exp = expected_crc.expect("footer intact, expected CRC known");
                assert_ne!(exp, actual_crc);
                assert!(p.contains("v.json"));
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_not_found() {
        let err = load_json::<Vec<f32>>("/nonexistent/snn-store/v.json").unwrap_err();
        assert!(matches!(err, StoreError::NotFound { .. }), "{err:?}");
    }

    #[test]
    fn wrong_type_is_malformed() {
        let dir = scratch("malformed");
        let path = dir.join("v.json");
        save_json(&path, &"a string").unwrap();
        let err = load_json::<Vec<f32>>(&path).unwrap_err();
        assert!(matches!(err, StoreError::Malformed { .. }), "{err:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn plain_atomic_write_has_no_footer() {
        let dir = scratch("plain");
        let path = dir.join("plain.json");
        write_bytes_atomic(&path, b"{\"k\":1}").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"k\":1}");
        let _ = fs::remove_dir_all(&dir);
    }
}
