//! Typed errors for every way persisted state can disappoint.
//!
//! Store files cross a trust boundary — they survive crashes, partial
//! writes, disk corruption, and schema drift — so every defect maps
//! onto a variant here instead of a panic. Callers can distinguish
//! "the file is gone" ([`StoreError::Io`]) from "the file is there
//! but its bytes are damaged" ([`StoreError::Corrupt`]) from "the
//! bytes are intact but no longer decode" ([`StoreError::Malformed`]).

use std::fmt;
use std::path::Path;

/// Error reading or writing the durable store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The underlying filesystem operation failed.
    Io {
        /// Path the operation targeted.
        path: String,
        /// The formatted OS error.
        message: String,
    },
    /// The file's bytes fail integrity verification: the payload does
    /// not match its CRC32 footer, or the footer itself is missing or
    /// unreadable (the signature of a truncated or bit-flipped file).
    Corrupt {
        /// Path of the damaged file.
        path: String,
        /// CRC32 recorded in the integrity footer, when one could
        /// still be read (`None` when truncation destroyed it).
        expected_crc: Option<u32>,
        /// CRC32 of the payload bytes actually found on disk.
        actual_crc: u32,
        /// What exactly failed verification.
        message: String,
    },
    /// The payload passed integrity verification but does not decode
    /// into the requested type (schema drift, wrong file kind).
    Malformed {
        /// Path of the undecodable file.
        path: String,
        /// The decode failure, formatted.
        message: String,
    },
    /// The requested entry does not exist (missing run, unknown model
    /// name or version, no checkpoints yet).
    NotFound {
        /// What was looked up.
        path: String,
    },
}

impl StoreError {
    /// Builds an [`StoreError::Io`] from an OS error at `path`.
    pub fn io(path: &Path, err: &std::io::Error) -> Self {
        StoreError::Io { path: path.display().to_string(), message: err.to_string() }
    }

    /// The path the error refers to.
    pub fn path(&self) -> &str {
        match self {
            StoreError::Io { path, .. }
            | StoreError::Corrupt { path, .. }
            | StoreError::Malformed { path, .. }
            | StoreError::NotFound { path } => path,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, message } => {
                write!(f, "store I/O error at `{path}`: {message}")
            }
            StoreError::Corrupt { path, expected_crc, actual_crc, message } => {
                match expected_crc {
                    Some(exp) => write!(
                        f,
                        "corrupt store file `{path}`: {message} \
                         (expected crc32 {exp:08x}, actual {actual_crc:08x})"
                    ),
                    None => write!(
                        f,
                        "corrupt store file `{path}`: {message} \
                         (payload crc32 {actual_crc:08x}, no readable footer)"
                    ),
                }
            }
            StoreError::Malformed { path, message } => {
                write!(f, "malformed store file `{path}`: {message}")
            }
            StoreError::NotFound { path } => write!(f, "store entry not found: {path}"),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_path_and_crcs() {
        let e = StoreError::Corrupt {
            path: "/tmp/x.json".into(),
            expected_crc: Some(0xdead_beef),
            actual_crc: 0x1234_5678,
            message: "payload mismatch".into(),
        };
        let s = e.to_string();
        assert!(s.contains("/tmp/x.json"), "{s}");
        assert!(s.contains("deadbeef"), "{s}");
        assert!(s.contains("12345678"), "{s}");
        assert_eq!(e.path(), "/tmp/x.json");
    }

    #[test]
    fn truncated_footer_display() {
        let e = StoreError::Corrupt {
            path: "p".into(),
            expected_crc: None,
            actual_crc: 7,
            message: "integrity footer missing".into(),
        };
        assert!(e.to_string().contains("no readable footer"));
    }
}
