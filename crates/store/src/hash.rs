//! Integrity and identity hashes.
//!
//! Two distinct jobs, two distinct functions:
//!
//! * [`crc32`] — IEEE 802.3 CRC-32, the *integrity* check appended to
//!   every store file so truncation and bit flips are detected on
//!   load. Fast, table-driven, catches all burst errors up to 32 bits.
//! * [`fnv64`] — 64-bit FNV-1a, the *identity* hash used to
//!   content-address model blobs in the artifact registry. Not
//!   cryptographic (the store does not defend against adversarial
//!   collisions, only accidents), but stable across platforms and
//!   cheap enough to hash multi-megabyte snapshots on every publish.

use std::sync::OnceLock;

/// IEEE 802.3 CRC-32 (polynomial `0xEDB88320`, reflected) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// 64-bit FNV-1a hash of `bytes`, hex-encoded (16 lowercase digits).
///
/// This is the content address of a registry blob: two snapshots with
/// the same serialized form share one blob on disk.
pub fn fnv64_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv64(bytes))
}

/// 64-bit FNV-1a hash of `bytes`.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The canonical check value for the IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn crc32_detects_single_bit_flip() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let clean = crc32(&data);
        for i in 0..data.len() {
            let mut flipped = data.clone();
            flipped[i] ^= 0x01;
            assert_ne!(crc32(&flipped), clean, "flip at byte {i} undetected");
        }
    }

    #[test]
    fn fnv64_known_vectors() {
        // FNV-1a 64 reference values.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64_hex(b"a"), "af63dc4c8601ec8c");
    }

    #[test]
    fn fnv64_hex_is_16_digits() {
        assert_eq!(fnv64_hex(b"payload").len(), 16);
    }
}
