//! Append-only JSONL journal with per-line CRC32 integrity.
//!
//! A journal records *completed units of work* (e.g. finished DSE
//! sweep points) so a restarted process can skip them. The format is
//! one JSON object per line:
//!
//! ```text
//! {"crc32":"61cab01e","data":<entry JSON>}
//! ```
//!
//! where the CRC covers the serialized `data` text. Appends go
//! through `O_APPEND` + `fdatasync`, so concurrent appenders within a
//! process interleave whole lines and a committed line survives a
//! crash.
//!
//! Recovery semantics on open:
//!
//! * A damaged **final** line is a torn tail — the crash happened
//!   mid-append, the unit of work never committed — so the file is
//!   truncated back to the committed prefix (otherwise the next
//!   `O_APPEND` write would concatenate onto the torn fragment,
//!   turning it into *interior* corruption on the following open)
//!   and the drop is reported via [`JournalRecovery::torn_tail`].
//! * A damaged **interior** line means the file was corrupted after
//!   the fact (bit rot, manual editing) and surfaces as
//!   [`StoreError::Corrupt`]: silently skipping interior entries
//!   would silently redo — or worse, silently *not* redo — work.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::error::StoreError;
use crate::hash::crc32;
use crate::obs::store_obs;

/// What `open` found and salvaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalRecovery {
    /// Committed entries successfully replayed.
    pub entries: usize,
    /// Whether a torn (incomplete) final line was discarded.
    pub torn_tail: bool,
}

/// When appended lines are pushed to stable storage.
///
/// `Always` is the right default for journals whose entries gate
/// expensive redo (sweep points, recovery events): a committed line
/// must survive a crash. `EveryN` batches the `fdatasync` for
/// high-rate, low-value streams; `Never` leaves flushing to the OS.
/// Unsynced lines lost in a crash replay as a torn tail at worst —
/// the CRC-per-line format is policy-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append (the default).
    #[default]
    Always,
    /// `fdatasync` once per N appends (and on [`Journal::sync`] /
    /// drop). `EveryN(1)` behaves like `Always`; `EveryN(0)` is
    /// treated as `EveryN(1)`.
    EveryN(u32),
    /// Never sync explicitly; durability rides on the OS page cache.
    Never,
}

/// File handle plus the count of appends not yet synced.
#[derive(Debug)]
struct JournalInner {
    file: File,
    pending: u32,
}

/// An open append-only journal.
///
/// Appends take `&self`: the file handle lives behind a mutex, so a
/// journal can be shared across the sweep worker pool.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    policy: FsyncPolicy,
    inner: Mutex<JournalInner>,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path` and replays
    /// its committed entries, syncing every append
    /// ([`FsyncPolicy::Always`]).
    ///
    /// # Errors
    ///
    /// * [`StoreError::Io`] — the file cannot be opened or read.
    /// * [`StoreError::Corrupt`] — an interior line fails CRC or does
    ///   not parse (see the module docs for why the tail is exempt).
    /// * [`StoreError::Malformed`] — a verified line does not decode
    ///   into `T`.
    pub fn open<T: Deserialize>(
        path: impl AsRef<Path>,
    ) -> Result<(Journal, Vec<T>, JournalRecovery), StoreError> {
        Self::open_with(path, FsyncPolicy::Always)
    }

    /// Like [`Journal::open`] but with an explicit [`FsyncPolicy`].
    ///
    /// # Errors
    ///
    /// As [`Journal::open`].
    pub fn open_with<T: Deserialize>(
        path: impl AsRef<Path>,
        policy: FsyncPolicy,
    ) -> Result<(Journal, Vec<T>, JournalRecovery), StoreError> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| StoreError::io(path, &e))?;
            }
        }
        let (text, existed) = match std::fs::read_to_string(path) {
            Ok(t) => (t, true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => (String::new(), false),
            Err(e) => return Err(StoreError::io(path, &e)),
        };
        let mut entries = Vec::new();
        let mut recovery = JournalRecovery::default();
        // Byte offset where the torn tail (if any) begins; the file is
        // truncated back to it before the append handle opens.
        let mut truncate_to: Option<u64> = None;
        let mut offset: usize = 0;
        // A committed line ends in '\n'; only the final segment can
        // lack one, and that is the torn tail candidate.
        for segment in text.split_inclusive('\n') {
            let start = offset;
            offset += segment.len();
            let line = segment.strip_suffix('\n').unwrap_or(segment);
            if line.is_empty() {
                continue;
            }
            let is_torn_candidate = !segment.ends_with('\n');
            match Self::decode_line::<T>(path, line) {
                Ok(entry) => entries.push(entry),
                Err(StoreError::Corrupt { .. }) if is_torn_candidate => {
                    recovery.torn_tail = true;
                    truncate_to = Some(start as u64);
                }
                Err(e) => return Err(e),
            }
        }
        recovery.entries = entries.len();
        if let Some(len) = truncate_to {
            snn_obs::log_warn!(
                "journal torn tail truncated",
                path = path.display().to_string(),
                committed_entries = recovery.entries,
            );
            // Drop the torn fragment from the file itself: appends go
            // through O_APPEND, so leaving it in place would merge the
            // next entry onto it and corrupt the journal's interior.
            let f = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| StoreError::io(path, &e))?;
            f.set_len(len).map_err(|e| StoreError::io(path, &e))?;
            f.sync_all().map_err(|e| StoreError::io(path, &e))?;
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| StoreError::io(path, &e))?;
        if !existed {
            // The journal file itself was just created; fsync the
            // parent directory so the *name* survives a power loss
            // (same durability rule as the atomic-write rename; sync
            // errors on exotic filesystems are likewise swallowed).
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                if let Ok(dir) = File::open(parent) {
                    let _ = dir.sync_all();
                }
            }
        }
        let inner = Mutex::new(JournalInner { file, pending: 0 });
        Ok((Journal { path: path.to_path_buf(), policy, inner }, entries, recovery))
    }

    /// Decodes one committed line, verifying its CRC.
    fn decode_line<T: Deserialize>(path: &Path, line: &str) -> Result<T, StoreError> {
        let corrupt = |message: String, actual: u32, expected: Option<u32>| {
            store_obs().corrupt.inc();
            StoreError::Corrupt {
                path: path.display().to_string(),
                expected_crc: expected,
                actual_crc: actual,
                message,
            }
        };
        // The envelope is `{"crc32":"XXXXXXXX","data":...}` with the
        // data text being exactly the remainder up to the closing
        // brace; slicing it out (rather than re-serializing a parsed
        // value) keeps the CRC over the very bytes that were written.
        const PREFIX: &str = "{\"crc32\":\"";
        let rest = line.strip_prefix(PREFIX).ok_or_else(|| {
            corrupt("journal line lacks the CRC envelope".into(), crc32(line.as_bytes()), None)
        })?;
        let crc_hex = rest.get(..8).ok_or_else(|| {
            corrupt("journal line CRC truncated".into(), crc32(line.as_bytes()), None)
        })?;
        let rest = &rest[8..];
        let expected = u32::from_str_radix(crc_hex, 16).map_err(|_| {
            corrupt("journal line CRC unreadable".into(), crc32(line.as_bytes()), None)
        })?;
        let data = rest
            .strip_prefix("\",\"data\":")
            .and_then(|r| r.strip_suffix('}'))
            .ok_or_else(|| {
                corrupt(
                    "journal line envelope truncated".into(),
                    crc32(line.as_bytes()),
                    Some(expected),
                )
            })?;
        let actual = crc32(data.as_bytes());
        if actual != expected {
            return Err(corrupt("journal line CRC mismatch".into(), actual, Some(expected)));
        }
        serde_json::from_str(data).map_err(|e| StoreError::Malformed {
            path: path.display().to_string(),
            message: format!("journal entry does not decode: {e}"),
        })
    }

    /// Appends one entry, syncing per the journal's [`FsyncPolicy`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the write or sync fails, and
    /// [`StoreError::Malformed`] if the entry cannot serialize.
    pub fn append<T: Serialize>(&self, entry: &T) -> Result<(), StoreError> {
        let _span = snn_obs::span!("store_journal_append");
        if let Some(e) = snn_fault::inject_io_error("store.journal") {
            return Err(StoreError::io(&self.path, &e));
        }
        let data = serde_json::to_string(entry).map_err(|e| StoreError::Malformed {
            path: self.path.display().to_string(),
            message: format!("cannot serialize journal entry: {e}"),
        })?;
        let line = format!("{{\"crc32\":\"{:08x}\",\"data\":{data}}}\n", crc32(data.as_bytes()));
        let mut inner = self.inner.lock().expect("journal mutex poisoned");
        // One write_all call: O_APPEND makes the whole line land
        // contiguously even with multiple appenders in-process.
        inner
            .file
            .write_all(line.as_bytes())
            .map_err(|e| StoreError::io(&self.path, &e))?;
        let sync_now = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::Never => {
                inner.pending = inner.pending.saturating_add(1);
                false
            }
            FsyncPolicy::EveryN(n) => {
                inner.pending += 1;
                inner.pending >= n.max(1)
            }
        };
        if sync_now {
            inner.file.sync_data().map_err(|e| StoreError::io(&self.path, &e))?;
            inner.pending = 0;
        }
        store_obs().journal_appends.inc();
        Ok(())
    }

    /// Forces any unsynced appends to stable storage, regardless of
    /// policy. A no-op when nothing is pending (always the case under
    /// `Always`).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the sync fails.
    pub fn sync(&self) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().expect("journal mutex poisoned");
        if inner.pending > 0 {
            inner.file.sync_data().map_err(|e| StoreError::io(&self.path, &e))?;
            inner.pending = 0;
        }
        Ok(())
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        // Best-effort flush of appends deferred by `EveryN` on clean
        // shutdown; errors are unreportable here and the format
        // tolerates a lost tail anyway. `Never` means never — its
        // durability contract is the OS page cache alone.
        if matches!(self.policy, FsyncPolicy::EveryN(_)) {
            if let Ok(inner) = self.inner.lock() {
                if inner.pending > 0 {
                    let _ = inner.file.sync_data();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("snn_store_journal_tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.jsonl")
    }

    #[test]
    fn append_then_reopen_replays() {
        let path = scratch("replay");
        {
            let (j, entries, rec) = Journal::open::<(u32, String)>(&path).unwrap();
            assert!(entries.is_empty());
            assert_eq!(rec, JournalRecovery::default());
            j.append(&(1u32, "a".to_string())).unwrap();
            j.append(&(2u32, "b".to_string())).unwrap();
        }
        let (j, entries, rec) = Journal::open::<(u32, String)>(&path).unwrap();
        assert_eq!(entries, vec![(1, "a".to_string()), (2, "b".to_string())]);
        assert_eq!(rec.entries, 2);
        assert!(!rec.torn_tail);
        j.append(&(3u32, "c".to_string())).unwrap();
        let (_, entries, _) = Journal::open::<(u32, String)>(&path).unwrap();
        assert_eq!(entries.len(), 3);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let path = scratch("torn");
        {
            let (j, _, _) = Journal::open::<u32>(&path).unwrap();
            j.append(&7u32).unwrap();
            j.append(&8u32).unwrap();
        }
        // Simulate a crash mid-append: chop the last line in half.
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.len() - 7;
        std::fs::write(&path, &text[..cut]).unwrap();
        let (_, entries, rec) = Journal::open::<u32>(&path).unwrap();
        assert_eq!(entries, vec![7]);
        assert!(rec.torn_tail);
        // Recovery must have truncated the fragment from the file, not
        // just dropped it from the replay.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'), "torn fragment left in file: {text:?}");
    }

    #[test]
    fn append_after_torn_tail_recovery_stays_readable() {
        let path = scratch("torn_then_append");
        {
            let (j, _, _) = Journal::open::<u32>(&path).unwrap();
            j.append(&7u32).unwrap();
            j.append(&8u32).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 5]).unwrap();
        // First reopen recovers the torn tail and commits new work.
        let (j, entries, rec) = Journal::open::<u32>(&path).unwrap();
        assert_eq!(entries, vec![7]);
        assert!(rec.torn_tail);
        j.append(&9u32).unwrap();
        // Second reopen must see a clean journal — the new entry must
        // not have merged onto the torn fragment.
        let (_, entries, rec) = Journal::open::<u32>(&path).unwrap();
        assert_eq!(entries, vec![7, 9]);
        assert!(!rec.torn_tail);
    }

    #[test]
    fn interior_corruption_is_typed_error() {
        let path = scratch("interior");
        {
            let (j, _, _) = Journal::open::<u32>(&path).unwrap();
            j.append(&1u32).unwrap();
            j.append(&2u32).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit inside the first line's data region.
        let first_line_end = bytes.iter().position(|&b| b == b'\n').unwrap();
        bytes[first_line_end - 2] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = Journal::open::<u32>(&path).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err:?}");
    }

    #[test]
    fn every_n_policy_defers_then_flushes_on_sync() {
        let path = scratch("every_n");
        let (j, _, _) = Journal::open_with::<u32>(&path, FsyncPolicy::EveryN(3)).unwrap();
        j.append(&1u32).unwrap();
        j.append(&2u32).unwrap();
        assert_eq!(j.inner.lock().unwrap().pending, 2);
        j.append(&3u32).unwrap();
        assert_eq!(j.inner.lock().unwrap().pending, 0, "third append hits the sync boundary");
        j.append(&4u32).unwrap();
        j.sync().unwrap();
        assert_eq!(j.inner.lock().unwrap().pending, 0);
        drop(j);
        let (_, entries, rec) = Journal::open::<u32>(&path).unwrap();
        assert_eq!(entries, vec![1, 2, 3, 4]);
        assert!(!rec.torn_tail);
    }

    #[test]
    fn never_policy_still_commits_lines_to_the_file() {
        let path = scratch("never");
        let (j, _, _) = Journal::open_with::<u32>(&path, FsyncPolicy::Never).unwrap();
        j.append(&1u32).unwrap();
        j.append(&2u32).unwrap();
        j.sync().unwrap(); // explicit sync works even under Never
        drop(j);
        let (_, entries, _) = Journal::open::<u32>(&path).unwrap();
        assert_eq!(entries, vec![1, 2]);
    }

    #[test]
    fn injected_io_fault_surfaces_as_typed_store_error() {
        let path = scratch("fault");
        let (j, _, _) = Journal::open::<u32>(&path).unwrap();
        let plan =
            std::sync::Arc::new(snn_fault::FaultPlan::parse("io_err@store.journal:2", 0).unwrap());
        let _g = snn_fault::install(plan);
        j.append(&1u32).unwrap();
        let err = j.append(&2u32).unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }), "{err:?}");
        j.append(&3u32).unwrap();
        drop(j);
        let (_, entries, _) = Journal::open::<u32>(&path).unwrap();
        assert_eq!(entries, vec![1, 3], "the failed append committed nothing");
    }

    #[test]
    fn concurrent_appends_all_commit() {
        let path = scratch("concurrent");
        let (j, _, _) = Journal::open::<u64>(&path).unwrap();
        let j = std::sync::Arc::new(j);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let j = std::sync::Arc::clone(&j);
                s.spawn(move || {
                    for i in 0..8u64 {
                        j.append(&(t * 100 + i)).unwrap();
                    }
                });
            }
        });
        let (_, mut entries, rec) = Journal::open::<u64>(&path).unwrap();
        entries.sort_unstable();
        assert_eq!(entries.len(), 32);
        assert!(!rec.torn_tail);
        assert!(entries.windows(2).all(|w| w[0] != w[1]), "no line interleaving");
    }
}
