//! `snn-store` — durable, crash-safe persistence for the SNN
//! workspace.
//!
//! Everything the workspace writes that must survive a crash goes
//! through this crate:
//!
//! * [`write_bytes_atomic`] / [`save_json`] / [`load_json`] — the
//!   atomic write protocol (temp file + fsync + rename + parent-dir
//!   fsync) with a CRC32 integrity footer verified on load.
//!   Truncation and bit flips surface as typed
//!   [`StoreError::Corrupt`] values, never panics.
//! * [`Journal`] — append-only JSONL with per-line CRCs; a torn final
//!   line (crash mid-append) is truncated away on replay so later
//!   appends start on a clean boundary, interior damage is a hard
//!   error. Backs resumable DSE sweeps.
//! * [`RunStore`] — per-run checkpoint files plus the journal,
//!   payload-agnostic so `snn-core` can layer its `TrainCheckpoint`
//!   on top without a dependency cycle.
//! * [`ArtifactRegistry`] — content-hashed, monotonically versioned
//!   model artifacts with key/value metadata, `latest` resolution,
//!   and GC of unreferenced blobs.
//!
//! The crate depends only on the vendored `serde`/`serde_json` and
//! `snn-obs` (for `snn_store_*` counters and span histograms), so any
//! workspace crate can use it.
//!
//! # Store layout
//!
//! ```text
//! <root>/
//!   runs/<run id>/ckpt-<epoch>.json , journal.jsonl
//!   registry/blobs/<hash>.json , models/<name>/v<N>.json
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atomic;
mod error;
mod hash;
mod journal;
mod obs;
mod registry;
mod runs;

pub use atomic::{load_json, load_verified_bytes, save_json, save_json_new, write_bytes_atomic};
pub use error::StoreError;
pub use hash::{crc32, fnv64, fnv64_hex};
pub use journal::{FsyncPolicy, Journal, JournalRecovery};
pub use registry::{ArtifactRegistry, ModelEntry, VersionSpec};
pub use runs::{RunStore, RunSummary};
