//! Store operation counters in the global `snn-obs` registry.
//!
//! Span histograms come for free from the `span!` guards at each
//! operation (`snn_span_store_write_seconds`,
//! `snn_span_store_read_seconds`, `snn_span_store_gc_seconds`,
//! `snn_span_store_journal_append_seconds`); the counters here track
//! totals that dashboards alert on.

use std::sync::{Arc, OnceLock};

use snn_obs::Counter;

/// Shared handles to the `snn_store_*` counters.
pub struct StoreObs {
    /// Completed atomic writes (`snn_store_writes_total`).
    pub writes: Arc<Counter>,
    /// Verified reads (`snn_store_reads_total`).
    pub reads: Arc<Counter>,
    /// Integrity failures surfaced as `StoreError::Corrupt`
    /// (`snn_store_corrupt_total`).
    pub corrupt: Arc<Counter>,
    /// Journal entries appended (`snn_store_journal_appends_total`).
    pub journal_appends: Arc<Counter>,
    /// Blobs removed by registry GC (`snn_store_gc_removed_total`).
    pub gc_removed: Arc<Counter>,
}

/// Lazily registered singleton for the store's counters.
pub fn store_obs() -> &'static StoreObs {
    static OBS: OnceLock<StoreObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = snn_obs::global();
        StoreObs {
            writes: r.counter("snn_store_writes_total", "atomic store writes completed"),
            reads: r.counter("snn_store_reads_total", "store reads that passed verification"),
            corrupt: r.counter(
                "snn_store_corrupt_total",
                "store loads rejected for failing CRC32/footer verification",
            ),
            journal_appends: r
                .counter("snn_store_journal_appends_total", "journal entries appended"),
            gc_removed: r.counter(
                "snn_store_gc_removed_total",
                "unreferenced registry blobs deleted by garbage collection",
            ),
        }
    })
}
