//! Versioned, content-addressed model artifact registry.
//!
//! # On-disk layout
//!
//! ```text
//! <store root>/registry/
//!   blobs/<fnv64-hex>.json        # payload (framed, CRC32 footer)
//!   models/<name>/v<NNNNNN>.json  # entry metadata (framed)
//! ```
//!
//! Payloads (serialized model snapshots) are stored once per distinct
//! content under their FNV-1a 64 hash; entries are small metadata
//! files binding `(name, version)` to a blob hash plus free-form
//! key/value metadata (train config, accuracy, firing rate …).
//! Versions are monotonic per name: the next version is one past the
//! highest present. `latest` resolves to that highest version.
//!
//! Deleting an entry can strand its blob; [`ArtifactRegistry::gc`]
//! removes blobs no entry references. Everything is written through
//! the atomic framed writer, so a crash mid-publish leaves either a
//! complete entry or no entry — never a half-written one — and a blob
//! without an entry is exactly what GC collects.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::atomic::{load_json, load_verified_bytes};
use crate::error::StoreError;
use crate::hash::fnv64_hex;
use crate::obs::store_obs;

/// One published model version.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelEntry {
    /// Model name (registry key).
    pub name: String,
    /// Monotonic version within the name, starting at 1.
    pub version: u64,
    /// Content hash (FNV-1a 64, hex) of the payload blob.
    pub hash: String,
    /// Payload size in bytes (pre-framing).
    pub bytes: usize,
    /// Free-form metadata pairs (train config, accuracy, firing
    /// rate, …) in insertion order.
    pub meta: Vec<(String, String)>,
}

impl ModelEntry {
    /// Looks up one metadata value.
    pub fn meta_get(&self, key: &str) -> Option<&str> {
        self.meta.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Which version of a model to load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VersionSpec {
    /// The highest published version.
    Latest,
    /// An exact version number.
    Exact(u64),
}

impl VersionSpec {
    /// Parses `latest` or a version number.
    ///
    /// # Errors
    ///
    /// Returns a message for anything else.
    pub fn parse(text: &str) -> Result<Self, String> {
        if text.eq_ignore_ascii_case("latest") {
            return Ok(VersionSpec::Latest);
        }
        text.parse::<u64>()
            .ok()
            .filter(|&v| v > 0)
            .map(VersionSpec::Exact)
            .ok_or_else(|| format!("bad version `{text}` (expected `latest` or a number ≥ 1)"))
    }
}

/// The filesystem-backed artifact registry.
#[derive(Debug, Clone)]
pub struct ArtifactRegistry {
    root: PathBuf,
}

impl ArtifactRegistry {
    /// Opens (without touching disk yet) the registry rooted at
    /// `<root>/registry`.
    pub fn open(store_root: impl AsRef<Path>) -> Self {
        ArtifactRegistry { root: store_root.as_ref().join("registry") }
    }

    fn blobs_dir(&self) -> PathBuf {
        self.root.join("blobs")
    }

    fn model_dir(&self, name: &str) -> PathBuf {
        self.root.join("models").join(name)
    }

    fn entry_path(&self, name: &str, version: u64) -> PathBuf {
        self.model_dir(name).join(format!("v{version:06}.json"))
    }

    fn blob_path(&self, hash: &str) -> PathBuf {
        self.blobs_dir().join(format!("{hash}.json"))
    }

    /// Publishes `payload` under `name`, assigning the next version.
    ///
    /// The payload is serialized once; identical content reuses the
    /// existing blob. Entry files are claimed with create-new
    /// semantics, so concurrent publishers of the same name each get a
    /// distinct version — a publisher that loses the race retries with
    /// the next number rather than overwriting the winner's entry.
    /// Returns the new entry.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] from serialization or the writes.
    pub fn publish<T: Serialize>(
        &self,
        name: &str,
        payload: &T,
        meta: Vec<(String, String)>,
    ) -> Result<ModelEntry, StoreError> {
        validate_name(name)?;
        let json = serde_json::to_string(payload).map_err(|e| StoreError::Malformed {
            path: self.root.display().to_string(),
            message: format!("cannot serialize payload: {e}"),
        })?;
        let hash = fnv64_hex(json.as_bytes());
        let blob = self.blob_path(&hash);
        if !blob.exists() {
            crate::atomic::write_bytes_atomic(&blob, &crate::atomic::encode_framed(json.as_bytes()))?;
        }
        let mut version = self.versions(name)?.last().copied().unwrap_or(0) + 1;
        loop {
            let entry = ModelEntry {
                name: name.to_string(),
                version,
                hash: hash.clone(),
                bytes: json.len(),
                meta: meta.clone(),
            };
            if crate::atomic::save_json_new(self.entry_path(name, version), &entry)? {
                return Ok(entry);
            }
            // Another publisher claimed this version between the scan
            // and the write; the next candidate is strictly higher, so
            // the race converges.
            version += 1;
        }
    }

    /// All versions published under `name`, ascending. Empty when the
    /// model does not exist.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the model directory exists but
    /// cannot be read.
    pub fn versions(&self, name: &str) -> Result<Vec<u64>, StoreError> {
        let dir = self.model_dir(name);
        let mut versions = Vec::new();
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(versions),
            Err(e) => return Err(StoreError::io(&dir, &e)),
        };
        for entry in entries.flatten() {
            let file = entry.file_name();
            let file = file.to_string_lossy();
            if let Some(v) = file.strip_prefix('v').and_then(|s| s.strip_suffix(".json")) {
                if let Ok(v) = v.parse::<u64>() {
                    versions.push(v);
                }
            }
        }
        versions.sort_unstable();
        Ok(versions)
    }

    /// Model names with at least one published version, sorted.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the models directory exists but
    /// cannot be read.
    pub fn models(&self) -> Result<Vec<String>, StoreError> {
        let dir = self.root.join("models");
        let mut names = Vec::new();
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(names),
            Err(e) => return Err(StoreError::io(&dir, &e)),
        };
        for entry in entries.flatten() {
            if entry.path().is_dir() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    /// Resolves a version spec against the published versions.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotFound`] if the name has no versions
    /// or the exact version is absent.
    pub fn resolve(&self, name: &str, spec: VersionSpec) -> Result<u64, StoreError> {
        let versions = self.versions(name)?;
        let not_found = |what: String| StoreError::NotFound { path: what };
        match spec {
            VersionSpec::Latest => versions
                .last()
                .copied()
                .ok_or_else(|| not_found(format!("model `{name}` (no published versions)"))),
            VersionSpec::Exact(v) => versions
                .contains(&v)
                .then_some(v)
                .ok_or_else(|| not_found(format!("model `{name}` version {v}"))),
        }
    }

    /// Loads an entry's metadata.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] for unknown name/version; integrity
    /// errors propagate from the framed loader.
    pub fn entry(&self, name: &str, spec: VersionSpec) -> Result<ModelEntry, StoreError> {
        let version = self.resolve(name, spec)?;
        load_json(self.entry_path(name, version))
    }

    /// Loads an entry plus its payload JSON text, verifying the
    /// blob's CRC footer *and* that its content hash still matches
    /// the entry.
    ///
    /// # Errors
    ///
    /// As [`ArtifactRegistry::entry`], plus [`StoreError::Corrupt`]
    /// if the blob's recomputed content hash disagrees with the entry
    /// (the blob was swapped or damaged in a way that preserved its
    /// own footer).
    pub fn load(&self, name: &str, spec: VersionSpec) -> Result<(ModelEntry, String), StoreError> {
        let entry: ModelEntry = self.entry(name, spec)?;
        let blob_path = self.blob_path(&entry.hash);
        let payload = load_verified_bytes(&blob_path)?;
        let actual = fnv64_hex(&payload);
        if actual != entry.hash {
            store_obs().corrupt.inc();
            return Err(StoreError::Corrupt {
                path: blob_path.display().to_string(),
                expected_crc: None,
                actual_crc: crate::hash::crc32(&payload),
                message: format!(
                    "blob content hash {actual} disagrees with entry hash {}",
                    entry.hash
                ),
            });
        }
        let text = String::from_utf8(payload).map_err(|_| StoreError::Malformed {
            path: blob_path.display().to_string(),
            message: "blob payload is not UTF-8".into(),
        })?;
        Ok((entry, text))
    }

    /// Deletes one published version's entry (its blob becomes
    /// GC-able if nothing else references it).
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] if the version does not exist;
    /// [`StoreError::Io`] if the unlink fails.
    pub fn delete(&self, name: &str, spec: VersionSpec) -> Result<u64, StoreError> {
        let version = self.resolve(name, spec)?;
        let path = self.entry_path(name, version);
        fs::remove_file(&path).map_err(|e| StoreError::io(&path, &e))?;
        Ok(version)
    }

    /// Removes blobs referenced by no entry. Returns their hashes.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on directory scan or unlink
    /// failures; unreadable entries propagate their typed errors
    /// (GC must never delete a blob because its entry failed to
    /// parse).
    pub fn gc(&self) -> Result<Vec<String>, StoreError> {
        let _span = snn_obs::span!("store_gc");
        let mut referenced = BTreeSet::new();
        for name in self.models()? {
            for version in self.versions(&name)? {
                let entry: ModelEntry = load_json(self.entry_path(&name, version))?;
                referenced.insert(entry.hash);
            }
        }
        let blobs = self.blobs_dir();
        let mut removed = Vec::new();
        let entries = match fs::read_dir(&blobs) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(removed),
            Err(e) => return Err(StoreError::io(&blobs, &e)),
        };
        for entry in entries.flatten() {
            let file = entry.file_name();
            let file = file.to_string_lossy();
            let Some(hash) = file.strip_suffix(".json") else { continue };
            if !referenced.contains(hash) {
                let path = entry.path();
                fs::remove_file(&path).map_err(|e| StoreError::io(&path, &e))?;
                store_obs().gc_removed.inc();
                removed.push(hash.to_string());
            }
        }
        removed.sort();
        Ok(removed)
    }
}

/// Rejects names that would escape the registry directory or collide
/// with the layout.
fn validate_name(name: &str) -> Result<(), StoreError> {
    let ok = !name.is_empty()
        && name.len() <= 128
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        && !name.starts_with('.');
    if ok {
        Ok(())
    } else {
        Err(StoreError::Malformed {
            path: name.to_string(),
            message: "model names must be non-empty [A-Za-z0-9._-], not starting with `.`".into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("snn_store_registry_tests").join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn meta() -> Vec<(String, String)> {
        vec![("accuracy".into(), "0.91".into())]
    }

    #[test]
    fn publish_versions_monotonically() {
        let root = scratch("monotonic");
        let reg = ArtifactRegistry::open(&root);
        let e1 = reg.publish("m", &vec![1.0f32], meta()).unwrap();
        let e2 = reg.publish("m", &vec![2.0f32], meta()).unwrap();
        let e3 = reg.publish("m", &vec![1.0f32], meta()).unwrap();
        assert_eq!((e1.version, e2.version, e3.version), (1, 2, 3));
        // Identical content shares a blob.
        assert_eq!(e1.hash, e3.hash);
        assert_ne!(e1.hash, e2.hash);
        assert_eq!(reg.versions("m").unwrap(), vec![1, 2, 3]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn concurrent_publishes_get_distinct_versions() {
        let root = scratch("concurrent");
        let reg = ArtifactRegistry::open(&root);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let reg = reg.clone();
                s.spawn(move || {
                    for i in 0..4u32 {
                        reg.publish("m", &(t * 100 + i), vec![]).unwrap();
                    }
                });
            }
        });
        // Every publish must have landed on its own version — a lost
        // race retries rather than overwriting the winner's entry.
        let versions = reg.versions("m").unwrap();
        assert_eq!(versions, (1..=16).collect::<Vec<u64>>());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn load_latest_and_exact() {
        let root = scratch("load");
        let reg = ArtifactRegistry::open(&root);
        reg.publish("m", &vec![1.0f32], meta()).unwrap();
        reg.publish("m", &vec![2.5f32], meta()).unwrap();
        let (entry, json) = reg.load("m", VersionSpec::Latest).unwrap();
        assert_eq!(entry.version, 2);
        assert_eq!(json, "[2.5]");
        assert_eq!(entry.meta_get("accuracy"), Some("0.91"));
        let (entry, json) = reg.load("m", VersionSpec::Exact(1)).unwrap();
        assert_eq!(entry.version, 1);
        assert_eq!(json, "[1]");
        assert!(matches!(
            reg.load("m", VersionSpec::Exact(9)).unwrap_err(),
            StoreError::NotFound { .. }
        ));
        assert!(matches!(
            reg.load("ghost", VersionSpec::Latest).unwrap_err(),
            StoreError::NotFound { .. }
        ));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn gc_removes_only_unreferenced_blobs() {
        let root = scratch("gc");
        let reg = ArtifactRegistry::open(&root);
        let e1 = reg.publish("m", &vec![1.0f32], vec![]).unwrap();
        let e2 = reg.publish("m", &vec![2.0f32], vec![]).unwrap();
        assert!(reg.gc().unwrap().is_empty(), "all blobs referenced");
        reg.delete("m", VersionSpec::Exact(1)).unwrap();
        let removed = reg.gc().unwrap();
        assert_eq!(removed, vec![e1.hash.clone()]);
        // v2 still loads after GC.
        let (entry, _) = reg.load("m", VersionSpec::Latest).unwrap();
        assert_eq!(entry.hash, e2.hash);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn tampered_blob_is_corrupt() {
        let root = scratch("tamper");
        let reg = ArtifactRegistry::open(&root);
        let e = reg.publish("m", &vec![1.0f32, 2.0], vec![]).unwrap();
        // Replace the blob with *differently framed but internally
        // consistent* content: the CRC footer passes, the content
        // hash must catch it.
        let blob = reg.blob_path(&e.hash);
        fs::write(&blob, crate::atomic::encode_framed(b"[9]")).unwrap();
        let err = reg.load("m", VersionSpec::Latest).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err:?}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn bad_names_rejected() {
        let reg = ArtifactRegistry::open(scratch("names"));
        for bad in ["", "../x", "a/b", ".hidden", "a b"] {
            assert!(
                matches!(reg.publish(bad, &1u32, vec![]), Err(StoreError::Malformed { .. })),
                "name `{bad}` accepted"
            );
        }
    }

    #[test]
    fn version_spec_parses() {
        assert_eq!(VersionSpec::parse("latest").unwrap(), VersionSpec::Latest);
        assert_eq!(VersionSpec::parse("LATEST").unwrap(), VersionSpec::Latest);
        assert_eq!(VersionSpec::parse("3").unwrap(), VersionSpec::Exact(3));
        assert!(VersionSpec::parse("0").is_err());
        assert!(VersionSpec::parse("nope").is_err());
    }
}
