//! Per-run storage: checkpoints and sweep journals under one root.
//!
//! # On-disk layout
//!
//! ```text
//! <store root>/runs/<run id>/
//!   ckpt-000003.json   # framed checkpoint at epoch boundary 3
//!   journal.jsonl      # append-only completed-work journal
//! ```
//!
//! The store is payload-agnostic: checkpoints are any `Serialize +
//! Deserialize` type (the trainer's `TrainCheckpoint` lives in
//! `snn-core`, which depends on this crate — not the other way
//! around, keeping the durability layer free of model types).

use std::fs;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::atomic::{load_json, save_json};
use crate::error::StoreError;

/// Checkpoint files are named `ckpt-<epoch, zero-padded>.json` so a
/// lexicographic directory sort is also a numeric sort.
fn checkpoint_file_name(epoch: usize) -> String {
    format!("ckpt-{epoch:06}.json")
}

/// A filesystem-backed store of training runs.
#[derive(Debug, Clone)]
pub struct RunStore {
    root: PathBuf,
}

/// Summary of one run directory, as listed by [`RunStore::list_runs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// The run's identifier (its directory name).
    pub run_id: String,
    /// Epochs with a checkpoint on disk, ascending.
    pub checkpoints: Vec<usize>,
    /// Whether the run has a sweep journal.
    pub has_journal: bool,
}

impl RunStore {
    /// Opens (without touching disk yet) the run store rooted at
    /// `store_root`.
    pub fn open(store_root: impl AsRef<Path>) -> Self {
        RunStore { root: store_root.as_ref().to_path_buf() }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Directory holding one run's files.
    pub fn run_dir(&self, run_id: &str) -> PathBuf {
        self.root.join("runs").join(run_id)
    }

    /// Path of the checkpoint for `epoch` in `run_id`.
    pub fn checkpoint_path(&self, run_id: &str, epoch: usize) -> PathBuf {
        self.run_dir(run_id).join(checkpoint_file_name(epoch))
    }

    /// Path of the run's append-only journal.
    pub fn journal_path(&self, run_id: &str) -> PathBuf {
        self.run_dir(run_id).join("journal.jsonl")
    }

    /// The artifact registry sharing this store's root.
    pub fn registry(&self) -> crate::registry::ArtifactRegistry {
        crate::registry::ArtifactRegistry::open(&self.root)
    }

    /// Saves a checkpoint payload for `epoch`, atomically.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] from serialization or the write.
    pub fn save_checkpoint<T: Serialize>(
        &self,
        run_id: &str,
        epoch: usize,
        payload: &T,
    ) -> Result<PathBuf, StoreError> {
        let path = self.checkpoint_path(run_id, epoch);
        save_json(&path, payload)?;
        Ok(path)
    }

    /// Loads and verifies the checkpoint for `epoch`.
    ///
    /// # Errors
    ///
    /// As [`crate::load_json`]: `NotFound`, `Io`, `Corrupt`, or
    /// `Malformed`.
    pub fn load_checkpoint<T: Deserialize>(
        &self,
        run_id: &str,
        epoch: usize,
    ) -> Result<T, StoreError> {
        load_json(self.checkpoint_path(run_id, epoch))
    }

    /// Epochs with a checkpoint on disk for `run_id`, ascending.
    /// Empty if the run directory does not exist.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the directory exists but cannot
    /// be read.
    pub fn checkpoint_epochs(&self, run_id: &str) -> Result<Vec<usize>, StoreError> {
        let dir = self.run_dir(run_id);
        let mut epochs = Vec::new();
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(epochs),
            Err(e) => return Err(StoreError::io(&dir, &e)),
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name.strip_prefix("ckpt-").and_then(|s| s.strip_suffix(".json")) {
                if let Ok(epoch) = num.parse::<usize>() {
                    epochs.push(epoch);
                }
            }
        }
        epochs.sort_unstable();
        Ok(epochs)
    }

    /// The highest checkpointed epoch for `run_id`, if any.
    ///
    /// # Errors
    ///
    /// As [`RunStore::checkpoint_epochs`].
    pub fn latest_checkpoint(&self, run_id: &str) -> Result<Option<usize>, StoreError> {
        Ok(self.checkpoint_epochs(run_id)?.last().copied())
    }

    /// Loads the latest checkpoint payload, if the run has one.
    ///
    /// # Errors
    ///
    /// As [`RunStore::load_checkpoint`].
    pub fn load_latest_checkpoint<T: Deserialize>(
        &self,
        run_id: &str,
    ) -> Result<Option<(usize, T)>, StoreError> {
        match self.latest_checkpoint(run_id)? {
            Some(epoch) => Ok(Some((epoch, self.load_checkpoint(run_id, epoch)?))),
            None => Ok(None),
        }
    }

    /// Summaries of every run in the store, sorted by run id.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on directory scan failures.
    pub fn list_runs(&self) -> Result<Vec<RunSummary>, StoreError> {
        let dir = self.root.join("runs");
        let mut runs = Vec::new();
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(runs),
            Err(e) => return Err(StoreError::io(&dir, &e)),
        };
        for entry in entries.flatten() {
            if !entry.path().is_dir() {
                continue;
            }
            let run_id = entry.file_name().to_string_lossy().into_owned();
            let checkpoints = self.checkpoint_epochs(&run_id)?;
            let has_journal = self.journal_path(&run_id).exists();
            runs.push(RunSummary { run_id, checkpoints, has_journal });
        }
        runs.sort_by(|a, b| a.run_id.cmp(&b.run_id));
        Ok(runs)
    }

    /// Deletes checkpoints below the latest for `run_id`, keeping
    /// `keep` most recent. Returns the removed epochs.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if an unlink fails.
    pub fn prune_checkpoints(&self, run_id: &str, keep: usize) -> Result<Vec<usize>, StoreError> {
        let epochs = self.checkpoint_epochs(run_id)?;
        let cut = epochs.len().saturating_sub(keep.max(1));
        let mut removed = Vec::new();
        for &epoch in &epochs[..cut] {
            let path = self.checkpoint_path(run_id, epoch);
            fs::remove_file(&path).map_err(|e| StoreError::io(&path, &e))?;
            removed.push(epoch);
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("snn_store_runs_tests").join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn checkpoints_roundtrip_and_sort() {
        let root = scratch("roundtrip");
        let store = RunStore::open(&root);
        store.save_checkpoint("r1", 3, &vec![3.0f32]).unwrap();
        store.save_checkpoint("r1", 10, &vec![10.0f32]).unwrap();
        store.save_checkpoint("r1", 1, &vec![1.0f32]).unwrap();
        assert_eq!(store.checkpoint_epochs("r1").unwrap(), vec![1, 3, 10]);
        assert_eq!(store.latest_checkpoint("r1").unwrap(), Some(10));
        let (epoch, payload): (usize, Vec<f32>) =
            store.load_latest_checkpoint("r1").unwrap().unwrap();
        assert_eq!((epoch, payload), (10, vec![10.0f32]));
        assert_eq!(store.latest_checkpoint("ghost").unwrap(), None);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn list_runs_reports_all() {
        let root = scratch("list");
        let store = RunStore::open(&root);
        assert!(store.list_runs().unwrap().is_empty());
        store.save_checkpoint("b", 2, &1u32).unwrap();
        store.save_checkpoint("a", 1, &1u32).unwrap();
        let (j, _, _) = crate::Journal::open::<u32>(store.journal_path("a")).unwrap();
        j.append(&7u32).unwrap();
        let runs = store.list_runs().unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].run_id, "a");
        assert!(runs[0].has_journal);
        assert_eq!(runs[0].checkpoints, vec![1]);
        assert_eq!(runs[1].run_id, "b");
        assert!(!runs[1].has_journal);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn prune_keeps_most_recent() {
        let root = scratch("prune");
        let store = RunStore::open(&root);
        for epoch in [1, 2, 3, 4, 5] {
            store.save_checkpoint("r", epoch, &(epoch as u32)).unwrap();
        }
        let removed = store.prune_checkpoints("r", 2).unwrap();
        assert_eq!(removed, vec![1, 2, 3]);
        assert_eq!(store.checkpoint_epochs("r").unwrap(), vec![4, 5]);
        // keep=0 still retains the latest.
        let removed = store.prune_checkpoints("r", 0).unwrap();
        assert_eq!(removed, vec![4]);
        assert_eq!(store.checkpoint_epochs("r").unwrap(), vec![5]);
        let _ = fs::remove_dir_all(&root);
    }
}
