//! Corruption-injection tests: every damage pattern must surface as
//! a typed `StoreError` — never a panic, never silently short data.

use std::fs;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};
use snn_store::{ArtifactRegistry, Journal, RunStore, StoreError, VersionSpec};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FakeCheckpoint {
    epoch: u32,
    weights: Vec<f32>,
    note: String,
}

fn checkpoint() -> FakeCheckpoint {
    FakeCheckpoint {
        epoch: 7,
        weights: (0..256).map(|i| (i as f32) * 0.125 - 16.0).collect(),
        note: "surrogate=fast_sigmoid scale=2.0".into(),
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("snn_store_corruption_tests").join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Truncating a checkpoint at every byte boundary must yield a typed
/// error (Corrupt once the frame is damaged), never a panic and never
/// a short weight vector.
#[test]
fn truncated_checkpoint_never_panics_never_short_reads() {
    let root = scratch("ckpt-truncate");
    let store = RunStore::open(&root);
    let path = store.save_checkpoint("run-a", 7, &checkpoint()).unwrap();
    let full = fs::read(&path).unwrap();

    // Exhaustive over a stride of cut points plus the interesting
    // edges (empty file, lost footer, lost final byte).
    let mut cuts: Vec<usize> = (0..full.len()).step_by(97).collect();
    cuts.extend([0, 1, full.len() - 1, full.len() / 2]);
    for cut in cuts {
        fs::write(&path, &full[..cut]).unwrap();
        match store.load_checkpoint::<FakeCheckpoint>("run-a", 7) {
            Ok(ok) => panic!("cut={cut}: truncated checkpoint loaded: {ok:?}"),
            Err(StoreError::Corrupt { path: p, actual_crc: _, .. }) => {
                assert!(p.contains("ckpt-000007.json"), "cut={cut}: path missing, got {p}");
            }
            // Cutting *inside the payload* such that the remaining
            // bytes still end with a parseable footer is impossible:
            // the footer carries the payload length. Any other typed
            // error (e.g. Malformed) would mean the frame verified,
            // which truncation cannot achieve.
            Err(other) => panic!("cut={cut}: expected Corrupt, got {other:?}"),
        }
    }
    let _ = fs::remove_dir_all(&root);
}

/// Bit flips anywhere in the file must be rejected, and when the
/// footer itself is intact the error must report both CRCs.
#[test]
fn bit_flipped_checkpoint_reports_both_crcs() {
    let root = scratch("ckpt-bitflip");
    let store = RunStore::open(&root);
    let path = store.save_checkpoint("run-b", 3, &checkpoint()).unwrap();
    let clean = fs::read(&path).unwrap();

    for pos in (0..clean.len()).step_by(53) {
        let mut bytes = clean.clone();
        bytes[pos] ^= 0x10;
        fs::write(&path, &bytes).unwrap();
        let err = store
            .load_checkpoint::<FakeCheckpoint>("run-b", 3)
            .expect_err("bit flip accepted");
        assert!(
            matches!(err, StoreError::Corrupt { .. }),
            "flip at {pos}: expected Corrupt, got {err:?}"
        );
    }

    // Flip squarely inside the payload: footer parses, CRCs disagree.
    let mut bytes = clean.clone();
    bytes[8] ^= 0x01;
    fs::write(&path, &bytes).unwrap();
    match store.load_checkpoint::<FakeCheckpoint>("run-b", 3).unwrap_err() {
        StoreError::Corrupt { expected_crc: Some(exp), actual_crc, path: p, .. } => {
            assert_ne!(exp, actual_crc, "CRCs must differ");
            assert!(p.contains("ckpt-000003.json"));
        }
        other => panic!("expected Corrupt with expected CRC, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&root);
}

/// A corrupted registry entry (the version metadata file) is caught
/// by its own frame; a swapped blob is caught by the content hash.
#[test]
fn registry_corruption_is_typed() {
    let root = scratch("registry");
    let reg = ArtifactRegistry::open(&root);
    let entry = reg
        .publish("lif-mnist", &checkpoint(), vec![("accuracy".into(), "0.93".into())])
        .unwrap();

    // Damage the entry file: truncate it.
    let entry_path = root.join("registry/models/lif-mnist").join("v000001.json");
    let full = fs::read(&entry_path).unwrap();
    fs::write(&entry_path, &full[..full.len() / 2]).unwrap();
    let err = reg.entry("lif-mnist", VersionSpec::Latest).unwrap_err();
    assert!(matches!(err, StoreError::Corrupt { .. }), "{err:?}");

    // Restore the entry, then bit-flip the blob payload.
    fs::write(&entry_path, &full).unwrap();
    let blob_path = root.join("registry/blobs").join(format!("{}.json", entry.hash));
    let mut blob = fs::read(&blob_path).unwrap();
    blob[3] ^= 0x40;
    fs::write(&blob_path, &blob).unwrap();
    let err = reg.load("lif-mnist", VersionSpec::Latest).unwrap_err();
    assert!(matches!(err, StoreError::Corrupt { .. }), "{err:?}");
    let _ = fs::remove_dir_all(&root);
}

/// Journal: torn tail recovers, interior damage is fatal and typed.
#[test]
fn journal_corruption_semantics() {
    let root = scratch("journal");
    let store = RunStore::open(&root);
    let jpath = store.journal_path("sweep-1");
    {
        let (j, _, _) = Journal::open::<FakeCheckpoint>(&jpath).unwrap();
        for epoch in 0..4 {
            j.append(&FakeCheckpoint { epoch, ..checkpoint() }).unwrap();
        }
    }
    let clean = fs::read(&jpath).unwrap();

    // Torn tail: drop half the final line → replay keeps 3, flags it.
    fs::write(&jpath, &clean[..clean.len() - 20]).unwrap();
    let (_, entries, rec) = Journal::open::<FakeCheckpoint>(&jpath).unwrap();
    assert_eq!(entries.len(), 3);
    assert!(rec.torn_tail);

    // Interior damage: flip a bit in the second line.
    let mut bytes = clean.clone();
    let second_line = bytes.iter().position(|&b| b == b'\n').unwrap() + 30;
    bytes[second_line] ^= 0x02;
    fs::write(&jpath, &bytes).unwrap();
    let err = Journal::open::<FakeCheckpoint>(&jpath).unwrap_err();
    assert!(matches!(err, StoreError::Corrupt { .. }), "{err:?}");
    let _ = fs::remove_dir_all(&root);
}

/// StoreError values format both CRCs in hex for operators.
#[test]
fn corrupt_error_display_includes_crcs() {
    let err = StoreError::Corrupt {
        path: "/tmp/x.json".into(),
        expected_crc: Some(0xDEAD_BEEF),
        actual_crc: 0x0BAD_F00D,
        message: "payload CRC mismatch".into(),
    };
    let text = err.to_string();
    assert!(text.contains("deadbeef"), "{text}");
    assert!(text.contains("0badf00d"), "{text}");
    assert!(text.contains("/tmp/x.json"), "{text}");
}
