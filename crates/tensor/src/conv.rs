//! 2-D convolution kernels with hand-written backward passes.
//!
//! Weights are stored as rank-2 `[out_channels, in_channels*kh*kw]`
//! matrices. The forward pass has two routes, chosen per call by the
//! sparsity-adaptive dispatcher ([`crate::dispatch`]) from the
//! *measured* input density:
//!
//! * **Dense** — im2col then one GEMM per batch item:
//!   `Y_n = W · im2col(X_n)` (with the spike-gather GEMM when the
//!   im2col matrix is binary and at most half nonzero).
//! * **Event** — no im2col at all: the input's active positions (a
//!   compressed [`crate::spike::SpikeTensor`]) each scatter their
//!   kernel taps into the output, so the work scales with the firing
//!   rate instead of the tensor volume.
//!
//! Both routes are bitwise identical: for every output element the
//! event route delivers exactly the nonzero terms of the dense GEMM's
//! ascending-`p` accumulation, in the same order (active positions
//! are scanned in item memory order, which for any fixed output
//! element is ascending im2col-row order), and the skipped terms are
//! exact zeros that cannot move a `+0.0`-seeded IEEE-754 accumulator
//! (see [`crate::linalg`] on exactness).
//!
//! The backward pass uses the transposed products from
//! [`crate::linalg`] plus `col2im` scatter.

use serde::{Deserialize, Serialize};

use crate::dispatch::{self, ConvRoute};
use crate::error::{Result, TensorError};
use crate::kobs::DensityGauge;
use crate::linalg::{self, gemm_into};
use crate::par;
use crate::shape::Shape;
use crate::spike::{SpikeScan, SpikeTensor, TouchMask};
use crate::tensor::Tensor;

static CONV_INPUT_DENSITY: DensityGauge = DensityGauge::new(
    "snn_tensor_conv2d_input_density_ratio",
    "fraction of nonzero elements in the most recent conv2d forward input batch",
);

/// Static geometry of a 2-D convolution.
///
/// # Examples
///
/// ```
/// use snn_tensor::conv::Conv2dGeometry;
///
/// let g = Conv2dGeometry::new(3, 32, 3, 1, 1, 32, 32)?;
/// assert_eq!((g.out_h(), g.out_w()), (32, 32));
/// assert_eq!(g.weight_shape().dims(), &[32, 3 * 3 * 3]);
/// # Ok::<(), snn_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conv2dGeometry {
    /// Input channel count.
    pub in_channels: usize,
    /// Output channel count (number of filters).
    pub out_channels: usize,
    /// Square kernel side length.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on every border.
    pub padding: usize,
    /// Input spatial height.
    pub in_h: usize,
    /// Input spatial width.
    pub in_w: usize,
}

impl Conv2dGeometry {
    /// Creates and validates a convolution geometry.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadGeometry`] if any dimension is zero,
    /// the kernel exceeds the padded input, or the stride is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        in_h: usize,
        in_w: usize,
    ) -> Result<Self> {
        let g = Conv2dGeometry { in_channels, out_channels, kernel, stride, padding, in_h, in_w };
        if in_channels == 0 || out_channels == 0 || kernel == 0 || in_h == 0 || in_w == 0 {
            return Err(TensorError::BadGeometry(format!("zero-sized convolution: {g:?}")));
        }
        if stride == 0 {
            return Err(TensorError::BadGeometry("stride must be nonzero".into()));
        }
        if kernel > in_h + 2 * padding || kernel > in_w + 2 * padding {
            return Err(TensorError::BadGeometry(format!(
                "kernel {kernel} exceeds padded input {}x{}",
                in_h + 2 * padding,
                in_w + 2 * padding
            )));
        }
        Ok(g)
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Rows of the im2col matrix: `in_channels * kernel²`.
    pub fn col_rows(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Columns of the im2col matrix: `out_h * out_w`.
    pub fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Shape of the weight matrix: `[out_channels, col_rows]`.
    pub fn weight_shape(&self) -> Shape {
        Shape::d2(self.out_channels, self.col_rows())
    }

    /// Shape of one input item `[in_channels, in_h, in_w]`.
    pub fn input_item_shape(&self) -> Shape {
        Shape::d3(self.in_channels, self.in_h, self.in_w)
    }

    /// Shape of one output item `[out_channels, out_h, out_w]`.
    pub fn output_item_shape(&self) -> Shape {
        Shape::d3(self.out_channels, self.out_h(), self.out_w())
    }

    /// Multiply–accumulate count for a dense forward pass of one item.
    ///
    /// Used by the accelerator workload model as the dense-work upper
    /// bound.
    pub fn dense_macs(&self) -> u64 {
        (self.out_channels * self.col_rows() * self.col_cols()) as u64
    }

    /// Per-spike synaptic fan-out: how many output accumulations one
    /// input spike triggers in an event-driven dataflow
    /// (`out_channels * kernel² / stride²`, the average number of
    /// output positions covered by one input pixel).
    pub fn spike_fanout(&self) -> f64 {
        let per_pixel = (self.kernel as f64 / self.stride as f64).powi(2);
        self.out_channels as f64 * per_pixel
    }
}

/// Expands one input item `[C, H, W]` into the im2col matrix
/// `[C*k*k, out_h*out_w]`, writing into `cols`.
///
/// Out-of-bounds (padding) taps contribute zeros.
///
/// # Panics
///
/// Debug-asserts that the buffer lengths match the geometry.
pub fn im2col(g: &Conv2dGeometry, input: &[f32], cols: &mut [f32]) {
    debug_assert_eq!(input.len(), g.in_channels * g.in_h * g.in_w);
    debug_assert_eq!(cols.len(), g.col_rows() * g.col_cols());
    let (oh, ow) = (g.out_h(), g.out_w());
    let n_cols = oh * ow;
    cols.fill(0.0);
    for c in 0..g.in_channels {
        let chan = &input[c * g.in_h * g.in_w..(c + 1) * g.in_h * g.in_w];
        for ky in 0..g.kernel {
            for kx in 0..g.kernel {
                let row = (c * g.kernel + ky) * g.kernel + kx;
                let out_row = &mut cols[row * n_cols..(row + 1) * n_cols];
                for oy in 0..oh {
                    let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                    if iy < 0 || iy >= g.in_h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                        if ix < 0 || ix >= g.in_w as isize {
                            continue;
                        }
                        out_row[oy * ow + ox] = chan[iy * g.in_w + ix as usize];
                    }
                }
            }
        }
    }
}

/// Adjoint of [`im2col`]: scatters a `[C*k*k, out_h*out_w]` gradient
/// matrix back onto a `[C, H, W]` input-gradient buffer (accumulating).
///
/// # Panics
///
/// Debug-asserts that the buffer lengths match the geometry.
pub fn col2im(g: &Conv2dGeometry, cols: &[f32], grad_input: &mut [f32]) {
    debug_assert_eq!(grad_input.len(), g.in_channels * g.in_h * g.in_w);
    debug_assert_eq!(cols.len(), g.col_rows() * g.col_cols());
    let (oh, ow) = (g.out_h(), g.out_w());
    let n_cols = oh * ow;
    for c in 0..g.in_channels {
        let chan = &mut grad_input[c * g.in_h * g.in_w..(c + 1) * g.in_h * g.in_w];
        for ky in 0..g.kernel {
            for kx in 0..g.kernel {
                let row = (c * g.kernel + ky) * g.kernel + kx;
                let col_row = &cols[row * n_cols..(row + 1) * n_cols];
                for oy in 0..oh {
                    let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                    if iy < 0 || iy >= g.in_h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                        if ix < 0 || ix >= g.in_w as isize {
                            continue;
                        }
                        chan[iy * g.in_w + ix as usize] += col_row[oy * ow + ox];
                    }
                }
            }
        }
    }
}

/// Reusable workspace for [`conv2d_forward_with`] and
/// [`conv2d_backward_with`]: per-worker im2col buffers, column
/// gradients, and the spike index of the sparse path.
///
/// A layer that owns one of these allocates its buffers on the first
/// timestep and reuses them for the rest of the sequence (and for
/// every following batch with the same geometry).
#[derive(Debug, Clone, Default)]
pub struct ConvScratch {
    /// One buffer set per worker thread, grown on demand.
    bufs: Vec<ConvBufs>,
    /// Compressed index of the whole input batch; the build scan is
    /// also the dispatcher's density measurement.
    input_spikes: SpikeTensor,
    /// Output positions the most recent event-route forward wrote;
    /// valid only when [`conv2d_forward_routed`] returned
    /// [`ConvRoute::Event`].
    touch: TouchMask,
}

impl ConvScratch {
    /// Empty scratch; buffers are allocated lazily per worker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Touch mask of the most recent [`conv2d_forward_routed`] call.
    ///
    /// Meaningful only when that call returned [`ConvRoute::Event`]:
    /// every output spatial position receiving any synaptic input is
    /// marked, per batch item, so a following masked LIF step can
    /// skip the rest. After a [`ConvRoute::Dense`] forward the mask
    /// is stale.
    pub fn touch(&self) -> &TouchMask {
        &self.touch
    }
}

#[derive(Debug, Clone, Default)]
struct ConvBufs {
    cols: Vec<f32>,
    col_grad: Vec<f32>,
    spikes: linalg::SpikeIndex,
    /// Event-route tap list: `(im2col_row, out_position)` pairs for
    /// one item's active pixels, shared across all output channels.
    taps: Vec<(u32, u32)>,
    /// CSR starts into `pos_rows`, length `plane + 1`: the event
    /// route's taps regrouped by output position.
    pos_ptr: Vec<u32>,
    /// Weight rows feeding each output position, in original (i.e.
    /// ascending-row) tap order.
    pos_rows: Vec<u32>,
    /// Weight tile for the event route: a channel group's rows
    /// interleaved `[row][lane]` so the gather loop loads one
    /// contiguous lane group per weight row.
    wt_quad: Vec<f32>,
}

/// Density bound for routing an im2col matrix through the sparse
/// spike GEMM. The scalar row-gather only beats the dense kernel's
/// vectorized contiguous sweeps once most of the arithmetic is
/// skippable: measured on the `bench_kernels` shapes the crossover
/// sits near 1/8 nonzero (at 1/4 the gather is ~1.7× *slower* than
/// the dense GEMM). The bound is applied to the *measured* batch
/// density from the dispatcher scan (not a per-item guess), so path
/// choice depends only on the data, never on the thread count, and
/// results stay deterministic (the two paths agree bitwise regardless
/// — see [`linalg::gemm_spike_into`]).
fn im2col_sparse_wins(scan: &SpikeScan) -> bool {
    scan.binary && 8 * scan.nnz <= scan.len
}

/// Forward convolution on a `[N, C, H, W]` batch.
///
/// `weight` must have shape [`Conv2dGeometry::weight_shape`]; `bias`
/// is a rank-1 tensor of length `out_channels`.
///
/// Allocates fresh scratch per call; layers evaluating a sequence
/// should hold a [`ConvScratch`] and call [`conv2d_forward_with`].
///
/// # Errors
///
/// Returns a [`TensorError`] if input/weight/bias shapes disagree with
/// the geometry.
pub fn conv2d_forward(
    g: &Conv2dGeometry,
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
) -> Result<Tensor> {
    conv2d_forward_with(g, input, weight, bias, &mut ConvScratch::new())
}

/// [`conv2d_forward`] with caller-owned scratch buffers.
///
/// Delegates to [`conv2d_forward_routed`] and discards the route
/// taken; callers that feed a masked LIF step should use the routed
/// entry point directly.
///
/// # Errors
///
/// Returns a [`TensorError`] if input/weight/bias shapes disagree with
/// the geometry.
pub fn conv2d_forward_with(
    g: &Conv2dGeometry,
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    scratch: &mut ConvScratch,
) -> Result<Tensor> {
    conv2d_forward_routed(g, input, weight, bias, scratch).map(|(out, _)| out)
}

/// Forward convolution with sparsity-adaptive routing.
///
/// One linear scan of the input batch measures its exact density and
/// (when binary and at most the dispatcher threshold nonzero) builds
/// the compressed [`SpikeTensor`] in `scratch`. Dense inputs, or
/// binary inputs above the threshold, take the im2col + GEMM route;
/// sparse binary inputs take the event-driven scatter route, which
/// never materializes im2col and whose work scales with the spike
/// count. Batch items are independent and split across the worker
/// pool on both routes; route choice depends only on the data and
/// the configured threshold, never on the thread count, and both
/// routes agree bitwise (module docs).
///
/// On [`ConvRoute::Event`], [`ConvScratch::touch`] holds the output
/// positions that received any synaptic input.
///
/// # Errors
///
/// Returns a [`TensorError`] if input/weight/bias shapes disagree with
/// the geometry.
pub fn conv2d_forward_routed(
    g: &Conv2dGeometry,
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    scratch: &mut ConvScratch,
) -> Result<(Tensor, ConvRoute)> {
    check_batch_input(g, input)?;
    check_params(g, weight, bias)?;
    let _span = snn_obs::span!("conv2d_fwd");
    let n = input.shape().dim(0);
    let (oh, ow) = (g.out_h(), g.out_w());
    let item_in = g.in_channels * g.in_h * g.in_w;
    let item_out = g.out_channels * oh * ow;
    let col_elems = g.col_rows() * g.col_cols();
    let mut out = Tensor::zeros(Shape::d4(n, g.out_channels, oh, ow));
    if n == 0 || item_out == 0 {
        return Ok((out, ConvRoute::Dense));
    }
    let (iv, wv, bv) = (input.as_slice(), weight.as_slice(), bias.as_slice());
    // Copy bias to a local so the borrow checker lets us write `out`.
    let bias_local: Vec<f32> = bv.to_vec();

    // Dispatch: one scan measures the exact batch density and builds
    // the compressed index when the event route is in play.
    let threshold = dispatch::event_density_threshold();
    let event_enabled = threshold >= 0.0;
    let event_bound = if event_enabled {
        (threshold as f64 * (n * item_in) as f64) as usize
    } else {
        0
    };
    let scan = scratch.input_spikes.build(iv, n, item_in, event_bound);
    CONV_INPUT_DENSITY.set_ratio(scan.density());
    let route = if event_enabled && scan.compressed { ConvRoute::Event } else { ConvRoute::Dense };
    dispatch::record_conv_route(route);

    let ov = out.as_mut_slice();
    if route == ConvRoute::Event {
        // Per-item event work: each spike fans out to at most
        // `spike_fanout` output accumulations.
        let event_macs = (scan.nnz as f64 / n as f64 * g.spike_fanout()) as usize;
        let min_items = par::min_granules_for(2 * event_macs);
        let plane = oh * ow;
        let spikes = &scratch.input_spikes;
        let touched = scratch.touch.reset_bytes(n, plane);
        par::for_each_block2_with(
            ov,
            item_out,
            touched,
            plane,
            min_items,
            &mut scratch.bufs,
            ConvBufs::default,
            |bufs, item0, block, tblock| {
                for (i, out_item) in block.chunks_exact_mut(item_out).enumerate() {
                    conv_event_item(
                        g,
                        spikes.item(item0 + i),
                        wv,
                        out_item,
                        &mut bufs.taps,
                        &mut bufs.pos_ptr,
                        &mut bufs.pos_rows,
                        &mut bufs.wt_quad,
                        &mut tblock[i * plane..(i + 1) * plane],
                    );
                    add_item_bias(&bias_local, out_item, plane);
                }
            },
        );
        return Ok((out, ConvRoute::Event));
    }

    let sparse_gemm = im2col_sparse_wins(&scan);
    let min_items = par::min_granules_for(2 * g.dense_macs() as usize);
    par::for_each_block_with(
        ov,
        item_out,
        min_items,
        &mut scratch.bufs,
        ConvBufs::default,
        |bufs, item0, block| {
            bufs.cols.resize(col_elems, 0.0);
            for (i, out_item) in block.chunks_exact_mut(item_out).enumerate() {
                let item = item0 + i;
                im2col(g, &iv[item * item_in..(item + 1) * item_in], &mut bufs.cols);
                // A binary input stays binary through im2col, so the
                // per-item build below can only fail if the measured
                // decision was computed on different data (it isn't);
                // the else-branch is defensive.
                let sparse = sparse_gemm
                    && bufs.spikes.build(&bufs.cols, g.col_rows(), g.col_cols(), col_elems);
                if sparse {
                    linalg::gemm_spike_into(
                        wv,
                        &bufs.spikes,
                        out_item,
                        g.out_channels,
                        g.col_rows(),
                        g.col_cols(),
                    );
                } else {
                    gemm_into(wv, &bufs.cols, out_item, g.out_channels, g.col_rows(), g.col_cols());
                }
                add_item_bias(&bias_local, out_item, plane_of(g));
            }
        },
    );
    Ok((out, ConvRoute::Dense))
}

fn plane_of(g: &Conv2dGeometry) -> usize {
    g.out_h() * g.out_w()
}

/// Adds the per-channel bias to one output item, exactly as the
/// serial reference does: after all synaptic contributions, skipping
/// exact-zero biases (adding `±0.0` to any value is bitwise inert on
/// the `+0.0`-seeded accumulators both routes produce).
fn add_item_bias(bias: &[f32], out_item: &mut [f32], plane: usize) {
    for (oc, &b) in bias.iter().enumerate() {
        if b != 0.0 {
            for v in &mut out_item[oc * plane..(oc + 1) * plane] {
                *v += b;
            }
        }
    }
}

/// Event-driven convolution of one batch item.
///
/// Phase 1 walks the item's active positions in memory order and
/// materializes the tap list: for each active pixel `(c, iy, ix)`,
/// every kernel offset `(ky, kx)` that lands on a valid output
/// position contributes the pair `(row, out_pos)` with
/// `row = (c·k + ky)·k + kx` (the im2col row whose weight multiplies
/// this pixel) and `out_pos = oy·ow + ox`. The taps are then
/// counting-sorted into per-position row lists (CSR over `out_pos`),
/// and phase 2 gathers: for each touched output position, the active
/// rows' weights are summed into registers and stored once (the
/// `× 1.0` spike factor is elided, exactly). Output channels are
/// processed eight at a time against a `[row][lane]`-interleaved
/// weight tile, so every weight row costs one contiguous 8-lane load
/// and the eight accumulation chains stay independent.
///
/// **Ordering:** for any fixed output element, ascending pixel order
/// maps to ascending `row` order (for fixed `oy`, `ky = iy + pad −
/// oy·stride` grows with `iy`; likewise `kx` with `ix`; the channel
/// is the major key of both orders) — and a `(row, out_pos)` pair is
/// unique, since `row` and `out_pos` together determine the input
/// pixel. The stable counting sort by `out_pos` therefore hands each
/// output element its nonzero terms in exactly the dense GEMM's
/// ascending-`p` accumulation order — the same sequence of f32
/// additions from the same `+0.0` start — and the result is bitwise
/// identical (register vs in-memory accumulation rounds identically).
///
/// `touched` (one byte per output spatial position, zeroed by the
/// caller) is marked at every written position — identical for all
/// output channels, since taps are channel-independent.
#[allow(clippy::too_many_arguments)]
fn conv_event_item(
    g: &Conv2dGeometry,
    active: &[u32],
    wv: &[f32],
    out_item: &mut [f32],
    taps: &mut Vec<(u32, u32)>,
    pos_ptr: &mut Vec<u32>,
    pos_rows: &mut Vec<u32>,
    wt_quad: &mut Vec<f32>,
    touched: &mut [u8],
) {
    let (oh, ow) = (g.out_h(), g.out_w());
    let plane = oh * ow;
    let k = g.kernel;
    let plane_in = g.in_h * g.in_w;
    let col_rows = g.col_rows();
    taps.clear();
    for &p in active {
        let p = p as usize;
        let c = p / plane_in;
        let rem = p % plane_in;
        let iy = rem / g.in_w;
        let ix = rem % g.in_w;
        // oy·stride + ky = iy + padding (and likewise for x), so a
        // kernel offset is valid iff the difference is a non-negative
        // multiple of the stride landing inside the output.
        for ky in 0..k {
            if iy + g.padding < ky {
                break; // larger ky only grows the deficit
            }
            let oy_off = iy + g.padding - ky;
            if !oy_off.is_multiple_of(g.stride) {
                continue;
            }
            let oy = oy_off / g.stride;
            if oy >= oh {
                continue; // too close to the top for this small ky
            }
            for kx in 0..k {
                if ix + g.padding < kx {
                    break;
                }
                let ox_off = ix + g.padding - kx;
                if !ox_off.is_multiple_of(g.stride) {
                    continue;
                }
                let ox = ox_off / g.stride;
                if ox >= ow {
                    continue;
                }
                let row = (c * k + ky) * k + kx;
                let opos = oy * ow + ox;
                taps.push((row as u32, opos as u32));
                touched[opos] = 1;
            }
        }
    }
    // Phase 1.5: counting-sort the taps by output position. The sort
    // is stable, so each position's row list stays in original — i.e.
    // ascending-row — order. After the cursor fill, `pos_ptr[p]` has
    // advanced to the end of position `p`; one backward shift
    // restores the starts.
    pos_ptr.clear();
    pos_ptr.resize(plane + 1, 0);
    for &(_, opos) in taps.iter() {
        pos_ptr[opos as usize + 1] += 1;
    }
    for p in 0..plane {
        pos_ptr[p + 1] += pos_ptr[p];
    }
    pos_rows.clear();
    pos_rows.resize(taps.len(), 0);
    for &(row, opos) in taps.iter() {
        let cursor = &mut pos_ptr[opos as usize];
        pos_rows[*cursor as usize] = row;
        *cursor += 1;
    }
    for p in (1..=plane).rev() {
        pos_ptr[p] = pos_ptr[p - 1];
    }
    pos_ptr[0] = 0;

    // Phase 2: per-position gather, `LANES` output channels per
    // sweep. The group's weight rows are interleaved `[row][lane]` so
    // each active row is one contiguous load, and the accumulators
    // live in registers until the single store. Each lane's sum is a
    // serial dependency chain (the add order is the bitwise
    // contract), so wide groups are what buy instruction-level
    // parallelism: eight independent chains keep the FP adders busy
    // where one would stall on latency.
    const LANES: usize = 8;
    let mut groups = out_item.chunks_exact_mut(LANES * plane);
    let mut oc = 0usize;
    for group in groups.by_ref() {
        wt_quad.clear();
        wt_quad.resize(LANES * col_rows, 0.0);
        for lane in 0..LANES {
            let w = &wv[(oc + lane) * col_rows..(oc + lane + 1) * col_rows];
            for (row, &val) in w.iter().enumerate() {
                wt_quad[row * LANES + lane] = val;
            }
        }
        for p in 0..plane {
            let (s, e) = (pos_ptr[p] as usize, pos_ptr[p + 1] as usize);
            if s == e {
                continue;
            }
            let mut acc = [0.0f32; LANES];
            for &row in &pos_rows[s..e] {
                let w = &wt_quad[row as usize * LANES..row as usize * LANES + LANES];
                for (a, &wl) in acc.iter_mut().zip(w) {
                    *a += wl;
                }
            }
            for (lane, &a) in acc.iter().enumerate() {
                group[lane * plane + p] = a;
            }
        }
        oc += LANES;
    }
    for oplane in groups.into_remainder().chunks_exact_mut(plane) {
        let w0 = &wv[oc * col_rows..(oc + 1) * col_rows];
        for (p, slot) in oplane.iter_mut().enumerate() {
            let (s, e) = (pos_ptr[p] as usize, pos_ptr[p + 1] as usize);
            if s == e {
                continue;
            }
            let mut acc = 0.0f32;
            for &row in &pos_rows[s..e] {
                acc += w0[row as usize];
            }
            *slot = acc;
        }
        oc += 1;
    }
}

/// Gradients of a 2-D convolution.
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient w.r.t. the input batch, same shape as the input.
    pub grad_input: Tensor,
    /// Gradient w.r.t. the weight matrix.
    pub grad_weight: Tensor,
    /// Gradient w.r.t. the bias vector.
    pub grad_bias: Tensor,
}

/// Backward convolution: given upstream `grad_output` `[N, OC, OH,
/// OW]` and the original `input`, produces all three gradients.
///
/// Allocates fresh scratch per call; layers backpropagating a
/// sequence should hold a [`ConvScratch`] and call
/// [`conv2d_backward_with`].
///
/// # Errors
///
/// Returns a [`TensorError`] if any shape disagrees with the geometry.
pub fn conv2d_backward(
    g: &Conv2dGeometry,
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
) -> Result<Conv2dGrads> {
    conv2d_backward_with(g, input, weight, grad_output, &mut ConvScratch::new())
}

/// [`conv2d_backward`] with caller-owned scratch buffers.
///
/// The input gradient is written per item into disjoint slices; the
/// weight and bias gradients are computed as per-item partials in
/// parallel, then folded sequentially in ascending item order —
/// which is exactly the order the serial loop adds them, so the
/// result is bitwise identical for any thread count.
///
/// # Errors
///
/// Returns a [`TensorError`] if any shape disagrees with the geometry.
pub fn conv2d_backward_with(
    g: &Conv2dGeometry,
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    scratch: &mut ConvScratch,
) -> Result<Conv2dGrads> {
    check_batch_input(g, input)?;
    if grad_output.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: grad_output.shape().rank(),
            op: "conv2d_backward grad_output",
        });
    }
    let n = input.shape().dim(0);
    let expect = Shape::d4(n, g.out_channels, g.out_h(), g.out_w());
    if grad_output.shape() != expect {
        return Err(TensorError::ShapeMismatch {
            lhs: grad_output.shape(),
            rhs: expect,
            op: "conv2d_backward grad_output",
        });
    }
    let _span = snn_obs::span!("conv2d_bwd");
    let (oh, ow) = (g.out_h(), g.out_w());
    let n_cols = oh * ow;
    let item_in = g.in_channels * g.in_h * g.in_w;
    let item_out = g.out_channels * n_cols;
    let col_rows = g.col_rows();
    let col_elems = col_rows * n_cols;
    let wlen = g.out_channels * col_rows;

    let mut grad_input = Tensor::zeros(input.shape());
    let mut grad_weight = Tensor::zeros(g.weight_shape());
    let mut grad_bias = Tensor::zeros(Shape::d1(g.out_channels));
    if n == 0 || item_in == 0 {
        return Ok(Conv2dGrads { grad_input, grad_weight, grad_bias });
    }

    let (iv, wv, gov) = (input.as_slice(), weight.as_slice(), grad_output.as_slice());
    // Measured sparse-route decision, same as the forward pass: one
    // scan of the cached forward input (max_nnz = 0: only the
    // measurement is needed, not the index).
    let scan = scratch.input_spikes.build(iv, n, item_in, 0);
    let sparse_gemm = im2col_sparse_wins(&scan);
    // Per-item partials for dW and db: [wlen | out_channels] per
    // item. The serial kernel already computes each item's
    // contribution as a standalone dot product before adding it, so
    // materializing the partials and folding them below in item
    // order reproduces the serial sums bit-for-bit.
    let part_len = wlen + g.out_channels;
    let mut partials = vec![0.0f32; n * part_len];
    let gi = grad_input.as_mut_slice();
    // Three passes per item at roughly `dense_macs` each.
    let min_items = par::min_granules_for(6 * g.dense_macs() as usize);
    par::for_each_block2_with(
        gi,
        item_in,
        &mut partials,
        part_len,
        min_items,
        &mut scratch.bufs,
        ConvBufs::default,
        |bufs, item0, gi_block, part_block| {
            bufs.cols.resize(col_elems, 0.0);
            bufs.col_grad.resize(col_elems, 0.0);
            let items = gi_block.len() / item_in;
            for i in 0..items {
                let item = item0 + i;
                let x = &iv[item * item_in..(item + 1) * item_in];
                let dy = &gov[item * item_out..(item + 1) * item_out];
                im2col(g, x, &mut bufs.cols);
                let sparse = sparse_gemm
                    && bufs.spikes.build(&bufs.cols, col_rows, n_cols, col_elems);
                let (dw_part, db_part) =
                    part_block[i * part_len..(i + 1) * part_len].split_at_mut(wlen);

                // dW[oc, r] = sum_col dy[oc, col] * cols[r, col]
                // (A · Bᵀ). For a binary im2col matrix the products
                // are a gather-sum over the row's spike positions —
                // bitwise identical (see `linalg` on exactness).
                for oc in 0..g.out_channels {
                    let dyrow = &dy[oc * n_cols..(oc + 1) * n_cols];
                    let dwrow = &mut dw_part[oc * col_rows..(oc + 1) * col_rows];
                    for (r, dwval) in dwrow.iter_mut().enumerate() {
                        let mut acc = 0.0f32;
                        if sparse {
                            for &col in bufs.spikes.row(r) {
                                acc += dyrow[col as usize];
                            }
                        } else {
                            let crow = &bufs.cols[r * n_cols..(r + 1) * n_cols];
                            for (&a, &b) in dyrow.iter().zip(crow) {
                                acc += a * b;
                            }
                        }
                        *dwval = acc;
                    }
                }

                // db[oc] = sum over spatial of dy
                for (oc, dbval) in db_part.iter_mut().enumerate() {
                    let dyrow = &dy[oc * n_cols..(oc + 1) * n_cols];
                    *dbval = dyrow.iter().sum::<f32>();
                }

                // col_grad = Wᵀ · dy : [col_rows, n_cols]
                bufs.col_grad.fill(0.0);
                for oc in 0..g.out_channels {
                    let wrow = &wv[oc * col_rows..(oc + 1) * col_rows];
                    let dyrow = &dy[oc * n_cols..(oc + 1) * n_cols];
                    for (r, &wval) in wrow.iter().enumerate() {
                        if wval == 0.0 {
                            continue;
                        }
                        let cg = &mut bufs.col_grad[r * n_cols..(r + 1) * n_cols];
                        for (cgv, &dyv) in cg.iter_mut().zip(dyrow) {
                            *cgv += wval * dyv;
                        }
                    }
                }
                col2im(g, &bufs.col_grad, &mut gi_block[i * item_in..(i + 1) * item_in]);
            }
        },
    );

    // Sequential fold in ascending item order — the same order the
    // serial loop accumulates, hence bitwise identical.
    let gw = grad_weight.as_mut_slice();
    let gb = grad_bias.as_mut_slice();
    for part in partials.chunks_exact(part_len) {
        for (gwval, &p) in gw.iter_mut().zip(&part[..wlen]) {
            *gwval += p;
        }
        for (gbval, &p) in gb.iter_mut().zip(&part[wlen..]) {
            *gbval += p;
        }
    }
    Ok(Conv2dGrads { grad_input, grad_weight, grad_bias })
}

fn check_batch_input(g: &Conv2dGeometry, input: &Tensor) -> Result<()> {
    if input.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input.shape().rank(),
            op: "conv2d input",
        });
    }
    let expect = Shape::d4(input.shape().dim(0), g.in_channels, g.in_h, g.in_w);
    if input.shape() != expect {
        return Err(TensorError::ShapeMismatch {
            lhs: input.shape(),
            rhs: expect,
            op: "conv2d input",
        });
    }
    Ok(())
}

fn check_params(g: &Conv2dGeometry, weight: &Tensor, bias: &Tensor) -> Result<()> {
    if weight.shape() != g.weight_shape() {
        return Err(TensorError::ShapeMismatch {
            lhs: weight.shape(),
            rhs: g.weight_shape(),
            op: "conv2d weight",
        });
    }
    if bias.shape().rank() != 1 || bias.len() != g.out_channels {
        return Err(TensorError::ShapeMismatch {
            lhs: bias.shape(),
            rhs: Shape::d1(g.out_channels),
            op: "conv2d bias",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(c: usize, oc: usize, k: usize, s: usize, p: usize, h: usize, w: usize) -> Conv2dGeometry {
        Conv2dGeometry::new(c, oc, k, s, p, h, w).unwrap()
    }

    /// Direct (reference) convolution for cross-checking im2col+GEMM.
    fn conv_reference(g: &Conv2dGeometry, x: &Tensor, wt: &Tensor, b: &Tensor) -> Tensor {
        let n = x.shape().dim(0);
        let (oh, ow) = (g.out_h(), g.out_w());
        let mut out = Tensor::zeros(Shape::d4(n, g.out_channels, oh, ow));
        for item in 0..n {
            for oc in 0..g.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = b.as_slice()[oc];
                        for c in 0..g.in_channels {
                            for ky in 0..g.kernel {
                                for kx in 0..g.kernel {
                                    let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                                    let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                                    if iy < 0
                                        || ix < 0
                                        || iy >= g.in_h as isize
                                        || ix >= g.in_w as isize
                                    {
                                        continue;
                                    }
                                    let wv = wt.at2(oc, (c * g.kernel + ky) * g.kernel + kx);
                                    acc += wv * x.at4(item, c, iy as usize, ix as usize);
                                }
                            }
                        }
                        out.set4(item, oc, oy, ox, acc);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn geometry_output_dims() {
        let g = geom(3, 32, 3, 1, 1, 32, 32);
        assert_eq!((g.out_h(), g.out_w()), (32, 32));
        let g = geom(3, 8, 3, 1, 0, 16, 16);
        assert_eq!((g.out_h(), g.out_w()), (14, 14));
        let g = geom(1, 1, 2, 2, 0, 8, 8);
        assert_eq!((g.out_h(), g.out_w()), (4, 4));
    }

    #[test]
    fn geometry_rejects_bad() {
        assert!(Conv2dGeometry::new(0, 1, 3, 1, 0, 8, 8).is_err());
        assert!(Conv2dGeometry::new(1, 1, 9, 1, 0, 8, 8).is_err());
        assert!(Conv2dGeometry::new(1, 1, 3, 0, 0, 8, 8).is_err());
        assert!(Conv2dGeometry::new(1, 1, 9, 1, 1, 8, 8).is_ok()); // padded 10 >= 9
    }

    #[test]
    fn forward_matches_reference() {
        let g = geom(2, 3, 3, 1, 1, 5, 6);
        let x = Tensor::from_fn(Shape::d4(2, 2, 5, 6), |i| ((i * 37 % 11) as f32 - 5.0) * 0.1);
        let w = Tensor::from_fn(g.weight_shape(), |i| ((i * 17 % 7) as f32 - 3.0) * 0.05);
        let b = Tensor::from_vec(Shape::d1(3), vec![0.1, -0.2, 0.3]).unwrap();
        let got = conv2d_forward(&g, &x, &w, &b).unwrap();
        let want = conv_reference(&g, &x, &w, &b);
        for (a, e) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((a - e).abs() < 1e-4, "{a} vs {e}");
        }
    }

    #[test]
    fn forward_strided_matches_reference() {
        let g = geom(1, 2, 2, 2, 0, 6, 6);
        let x = Tensor::from_fn(Shape::d4(1, 1, 6, 6), |i| i as f32 * 0.1);
        let w = Tensor::from_fn(g.weight_shape(), |i| (i as f32 - 4.0) * 0.2);
        let b = Tensor::zeros(Shape::d1(2));
        let got = conv2d_forward(&g, &x, &w, &b).unwrap();
        let want = conv_reference(&g, &x, &w, &b);
        for (a, e) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((a - e).abs() < 1e-4);
        }
    }

    #[test]
    fn backward_weight_grad_matches_numeric() {
        let g = geom(1, 2, 2, 1, 0, 4, 4);
        let x = Tensor::from_fn(Shape::d4(1, 1, 4, 4), |i| (i as f32 * 0.13).sin());
        let mut w = Tensor::from_fn(g.weight_shape(), |i| (i as f32 * 0.3).cos() * 0.2);
        let b = Tensor::zeros(Shape::d1(2));
        // Loss = sum(Y); then dL/dY = 1.
        let y = conv2d_forward(&g, &x, &w, &b).unwrap();
        let dy = Tensor::ones(y.shape());
        let grads = conv2d_backward(&g, &x, &w, &dy).unwrap();

        let eps = 1e-3f32;
        for idx in 0..w.len() {
            let orig = w.as_slice()[idx];
            w.as_mut_slice()[idx] = orig + eps;
            let lp = conv2d_forward(&g, &x, &w, &b).unwrap().sum();
            w.as_mut_slice()[idx] = orig - eps;
            let lm = conv2d_forward(&g, &x, &w, &b).unwrap().sum();
            w.as_mut_slice()[idx] = orig;
            let numeric = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let analytic = grads.grad_weight.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn backward_input_grad_matches_numeric() {
        let g = geom(2, 2, 3, 1, 1, 4, 4);
        let mut x = Tensor::from_fn(Shape::d4(1, 2, 4, 4), |i| (i as f32 * 0.07).cos());
        let w = Tensor::from_fn(g.weight_shape(), |i| ((i % 5) as f32 - 2.0) * 0.1);
        let b = Tensor::zeros(Shape::d1(2));
        let y = conv2d_forward(&g, &x, &w, &b).unwrap();
        let dy = Tensor::from_fn(y.shape(), |i| (i % 3) as f32 - 1.0);
        let grads = conv2d_backward(&g, &x, &w, &dy).unwrap();

        let loss = |x: &Tensor| -> f64 {
            let y = conv2d_forward(&g, x, &w, &b).unwrap();
            y.as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(&yv, &dv)| (yv * dv) as f64)
                .sum()
        };
        let eps = 1e-3f32;
        for idx in (0..x.len()).step_by(3) {
            let orig = x.as_slice()[idx];
            x.as_mut_slice()[idx] = orig + eps;
            let lp = loss(&x);
            x.as_mut_slice()[idx] = orig - eps;
            let lm = loss(&x);
            x.as_mut_slice()[idx] = orig;
            let numeric = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let analytic = grads.grad_input.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn backward_bias_is_spatial_sum() {
        let g = geom(1, 3, 3, 1, 1, 4, 4);
        let x = Tensor::ones(Shape::d4(2, 1, 4, 4));
        let w = Tensor::zeros(g.weight_shape());
        let dy = Tensor::ones(Shape::d4(2, 3, 4, 4));
        let grads = conv2d_backward(&g, &x, &w, &dy).unwrap();
        // 2 batch items × 16 spatial positions each.
        assert_eq!(grads.grad_bias.as_slice(), &[32.0, 32.0, 32.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), c> == <x, col2im(c)> for all x, c — the defining
        // property of an adjoint pair, checked on pseudo-random data.
        let g = geom(2, 1, 3, 2, 1, 5, 5);
        let x: Vec<f32> = (0..g.in_channels * g.in_h * g.in_w)
            .map(|i| ((i * 31 % 13) as f32) - 6.0)
            .collect();
        let c: Vec<f32> =
            (0..g.col_rows() * g.col_cols()).map(|i| ((i * 7 % 9) as f32) - 4.0).collect();
        let mut cols = vec![0.0; c.len()];
        im2col(&g, &x, &mut cols);
        let lhs: f64 = cols.iter().zip(&c).map(|(&a, &b)| (a * b) as f64).sum();
        let mut gx = vec![0.0; x.len()];
        col2im(&g, &c, &mut gx);
        let rhs: f64 = x.iter().zip(&gx).map(|(&a, &b)| (a * b) as f64).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn shape_validation_errors() {
        let g = geom(3, 4, 3, 1, 1, 8, 8);
        let bad_x = Tensor::zeros(Shape::d4(1, 2, 8, 8));
        let w = Tensor::zeros(g.weight_shape());
        let b = Tensor::zeros(Shape::d1(4));
        assert!(conv2d_forward(&g, &bad_x, &w, &b).is_err());
        let x = Tensor::zeros(Shape::d4(1, 3, 8, 8));
        let bad_w = Tensor::zeros(Shape::d2(4, 5));
        assert!(conv2d_forward(&g, &x, &bad_w, &b).is_err());
        let bad_b = Tensor::zeros(Shape::d1(3));
        assert!(conv2d_forward(&g, &x, &w, &bad_b).is_err());
        let bad_dy = Tensor::zeros(Shape::d4(1, 4, 7, 7));
        assert!(conv2d_backward(&g, &x, &w, &bad_dy).is_err());
    }

    #[test]
    fn fanout_and_macs() {
        let g = geom(3, 32, 3, 1, 1, 32, 32);
        assert_eq!(g.dense_macs(), (32 * 27 * 32 * 32) as u64);
        assert!((g.spike_fanout() - 32.0 * 9.0).abs() < 1e-9);
    }
}
