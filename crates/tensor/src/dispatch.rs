//! Sparsity-adaptive kernel dispatch.
//!
//! The event-driven kernels ([`crate::conv`]) beat their dense
//! counterparts only below a crossover input density; above it the
//! dense kernels' contiguous sweeps win. This module owns that
//! crossover: a single density threshold, resolved once, that the
//! convolution forward pass compares against the *measured*
//! per-timestep density from its [`crate::spike::SpikeTensor`] scan.
//! The decision depends only on the data and the configured
//! threshold — never on the thread count — so routing is
//! deterministic, and both routes agree bitwise anyway (see the
//! exactness notes in [`crate::linalg`] and [`crate::conv`]).
//!
//! # Threshold
//!
//! The threshold comes from, in priority order:
//! 1. [`set_event_density_threshold`] (explicit in-process
//!    configuration),
//! 2. the `SNN_EVENT_DENSITY` environment variable (read once, at the
//!    first dispatch),
//! 3. [`EVENT_DENSITY_DEFAULT`], picked from the `bench_kernels`
//!    density sweep: on the benchmark shapes the event-driven conv2d
//!    still wins at 25% density and loses by 50%.
//!
//! A negative threshold disables the event route entirely; a
//! threshold ≥ 1.0 takes it whenever the input is binary.
//!
//! # Observability
//!
//! Every routed forward publishes into the global `snn-obs` registry:
//! which route fired (`snn_tensor_conv2d_route_dense_total` /
//! `snn_tensor_conv2d_route_event_total` — the registry has no label
//! support, so the route lives in the metric name) and the active
//! threshold (`snn_tensor_dispatch_event_density_threshold_ratio`),
//! so the crossover behaviour is visible in `/metrics` next to the
//! input-density gauges.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default crossover density for the event-driven convolution route.
///
/// Measured with the `bench_kernels` density sweep on the reference
/// shapes: the event kernel is ~1.6–2× at 25% density and reaches
/// parity with the dense route near 50%.
pub const EVENT_DENSITY_DEFAULT: f32 = 0.25;

/// Sentinel bit pattern meaning "not yet resolved" (a NaN, so no
/// caller-supplied finite threshold collides with it).
const UNSET: u32 = u32::MAX;

/// Configured threshold bits; [`UNSET`] means "resolve from the
/// environment on first use".
static THRESHOLD_BITS: AtomicU32 = AtomicU32::new(UNSET);

/// Which implementation a routed convolution forward used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvRoute {
    /// im2col + GEMM over dense buffers (with the spike-gather GEMM
    /// when the im2col matrix is binary and sparse enough).
    Dense,
    /// Event-driven scatter over the compressed
    /// [`crate::spike::SpikeTensor`]; no im2col is materialized.
    Event,
}

fn resolve_from_env() -> f32 {
    std::env::var("SNN_EVENT_DENSITY")
        .ok()
        .and_then(|s| s.trim().parse::<f32>().ok())
        .filter(|t| t.is_finite())
        .unwrap_or(EVENT_DENSITY_DEFAULT)
}

/// Returns the density threshold at or below which binary inputs take
/// the event-driven route.
pub fn event_density_threshold() -> f32 {
    match THRESHOLD_BITS.load(Ordering::Relaxed) {
        UNSET => {
            let t = resolve_from_env();
            THRESHOLD_BITS.store(t.to_bits(), Ordering::Relaxed);
            t
        }
        bits => f32::from_bits(bits),
    }
}

/// Overrides the event-route density threshold process-wide. Passing
/// a non-finite value resets to automatic resolution (environment,
/// then [`EVENT_DENSITY_DEFAULT`]) on the next
/// [`event_density_threshold`] call.
///
/// Kernel results do not depend on this value — both routes are
/// bitwise identical — only wall-clock time does.
pub fn set_event_density_threshold(t: f32) {
    let bits = if t.is_finite() { t.to_bits() } else { UNSET };
    THRESHOLD_BITS.store(bits, Ordering::Relaxed);
}

/// Runs `f` with the threshold forced to `t`, restoring the previous
/// setting afterwards. Calls are serialized process-wide, so
/// concurrent tests pinning opposite routes don't interleave their
/// overrides.
pub fn with_event_density_threshold<R>(t: f32, f: impl FnOnce() -> R) -> R {
    static GUARD: Mutex<()> = Mutex::new(());
    let _guard = GUARD.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let previous = THRESHOLD_BITS.swap(
        if t.is_finite() { t.to_bits() } else { UNSET },
        Ordering::Relaxed,
    );
    let result = f();
    THRESHOLD_BITS.store(previous, Ordering::Relaxed);
    result
}

/// Publishes one routed-forward decision into the global registry:
/// a counter increment on the route taken and the active threshold
/// gauge. Costs one relaxed atomic add per *forward call*, never per
/// element.
pub(crate) fn record_conv_route(route: ConvRoute) {
    struct RouteObs {
        dense: Arc<snn_obs::Counter>,
        event: Arc<snn_obs::Counter>,
        threshold: Arc<snn_obs::Gauge>,
    }
    static OBS: OnceLock<RouteObs> = OnceLock::new();
    let o = OBS.get_or_init(|| RouteObs {
        dense: snn_obs::global().counter(
            "snn_tensor_conv2d_route_dense_total",
            "conv2d forwards that took the dense im2col route",
        ),
        event: snn_obs::global().counter(
            "snn_tensor_conv2d_route_event_total",
            "conv2d forwards that took the event-driven scatter route",
        ),
        threshold: snn_obs::global().gauge(
            "snn_tensor_dispatch_event_density_threshold_ratio",
            "input density at or below which binary inputs take the event route",
        ),
    });
    o.threshold.set(event_density_threshold() as f64);
    match route {
        ConvRoute::Dense => o.dense.inc(),
        ConvRoute::Event => o.event.inc(),
    }
}

/// [`record_conv_route`] for the quantized (int8) convolution: same
/// threshold gauge, separate `snn_tensor_qconv2d_route_*` counters so
/// `/metrics` distinguishes the f32 and integer datapaths.
pub(crate) fn record_qconv_route(route: ConvRoute) {
    struct RouteObs {
        dense: Arc<snn_obs::Counter>,
        event: Arc<snn_obs::Counter>,
        threshold: Arc<snn_obs::Gauge>,
    }
    static OBS: OnceLock<RouteObs> = OnceLock::new();
    let o = OBS.get_or_init(|| RouteObs {
        dense: snn_obs::global().counter(
            "snn_tensor_qconv2d_route_dense_total",
            "quantized conv2d forwards that took the dense im2col route",
        ),
        event: snn_obs::global().counter(
            "snn_tensor_qconv2d_route_event_total",
            "quantized conv2d forwards that took the event-driven scatter route",
        ),
        threshold: snn_obs::global().gauge(
            "snn_tensor_dispatch_event_density_threshold_ratio",
            "input density at or below which binary inputs take the event route",
        ),
    });
    o.threshold.set(event_density_threshold() as f64);
    match route {
        ConvRoute::Dense => o.dense.inc(),
        ConvRoute::Event => o.event.inc(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not several: the overrides below act on process-wide
    // state, and splitting them into concurrently-running #[test] fns
    // would race on the ambient readback.
    #[test]
    fn threshold_resolves_and_overrides() {
        with_event_density_threshold(0.75, || {
            assert_eq!(event_density_threshold(), 0.75);
        });
        with_event_density_threshold(-1.0, || {
            assert!(event_density_threshold() < 0.0, "negative disables the route");
        });
        with_event_density_threshold(f32::NAN, || {
            let t = event_density_threshold();
            assert!(t.is_finite(), "NaN must reset to automatic resolution, got {t}");
        });
        // No ambient readback outside the guarded scopes: other tests
        // may hold their own overrides concurrently.
    }
}
