//! Error type for tensor operations.

use std::fmt;

use crate::shape::Shape;

/// Error returned by fallible tensor operations.
///
/// Most tensor kernels in this crate have infallible `*_unchecked`-style
/// hot paths used internally after validation, and fallible public
/// entry points returning this type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands were expected to have identical shapes.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        lhs: Shape,
        /// Shape of the right-hand operand.
        rhs: Shape,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A reshape was requested to a shape with a different element count.
    ReshapeCount {
        /// Element count of the source tensor.
        from: usize,
        /// Element count implied by the requested shape.
        to: usize,
    },
    /// An axis index was out of range for the tensor rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor rank.
        rank: usize,
    },
    /// The tensor had an unexpected rank.
    RankMismatch {
        /// Expected rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// Inner dimensions of a matrix product did not agree.
    GemmInnerDim {
        /// Columns of the left matrix.
        lhs_cols: usize,
        /// Rows of the right matrix.
        rhs_rows: usize,
    },
    /// A convolution/pooling geometry was invalid (e.g. kernel larger
    /// than padded input).
    BadGeometry(String),
    /// Raw data length did not match the shape element count.
    DataLength {
        /// Expected number of elements.
        expected: usize,
        /// Provided number of elements.
        actual: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in `{op}`: {lhs} vs {rhs}")
            }
            TensorError::ReshapeCount { from, to } => {
                write!(f, "cannot reshape {from} elements into a shape of {to} elements")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank-{rank} tensor")
            }
            TensorError::RankMismatch { expected, actual, op } => {
                write!(f, "`{op}` expects a rank-{expected} tensor, got rank {actual}")
            }
            TensorError::GemmInnerDim { lhs_cols, rhs_rows } => {
                write!(f, "matrix product inner dimensions disagree: {lhs_cols} vs {rhs_rows}")
            }
            TensorError::BadGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            TensorError::DataLength { expected, actual } => {
                write!(f, "data length {actual} does not match shape element count {expected}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errs: Vec<TensorError> = vec![
            TensorError::ShapeMismatch {
                lhs: Shape::d2(2, 3),
                rhs: Shape::d2(3, 2),
                op: "add",
            },
            TensorError::ReshapeCount { from: 6, to: 8 },
            TensorError::AxisOutOfRange { axis: 4, rank: 2 },
            TensorError::RankMismatch { expected: 4, actual: 2, op: "conv2d" },
            TensorError::GemmInnerDim { lhs_cols: 3, rhs_rows: 4 },
            TensorError::BadGeometry("kernel exceeds input".into()),
            TensorError::DataLength { expected: 4, actual: 5 },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with('`'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
