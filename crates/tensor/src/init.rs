//! Weight initializers and deterministic seed derivation.
//!
//! Every stochastic component in the workspace takes an explicit
//! `u64` seed; [`derive_seed`] produces decorrelated child seeds so a
//! single experiment seed fans out to data generation, weight init,
//! and encoder noise without accidental stream sharing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Weight-initialization schemes.
///
/// `fan_in`/`fan_out` follow the usual convention: for a dense layer
/// `[out, in]` they are `in` and `out`; for a conv layer they are
/// `in_channels * kh * kw` and `out_channels * kh * kw`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Init {
    /// Every element set to the same constant.
    Constant(f32),
    /// Uniform on `[-bound, bound]`.
    Uniform {
        /// Half-width of the interval.
        bound: f32,
    },
    /// Kaiming/He uniform: `U(-sqrt(6/fan_in), +sqrt(6/fan_in))`.
    ///
    /// The default for layers feeding spiking nonlinearities; the LIF
    /// threshold behaves similarly to a ReLU knee, so He scaling keeps
    /// early firing rates in a trainable range.
    #[default]
    KaimingUniform,
    /// Xavier/Glorot uniform: `U(±sqrt(6/(fan_in+fan_out)))`.
    XavierUniform,
    /// Gaussian with the given standard deviation.
    Normal {
        /// Standard deviation of the distribution.
        std: f32,
    },
}

impl Init {
    /// Materializes a tensor of the given shape.
    ///
    /// # Examples
    ///
    /// ```
    /// use snn_tensor::{Init, Shape};
    ///
    /// let w = Init::KaimingUniform.tensor(Shape::d2(16, 64), 64, 16, 42);
    /// assert_eq!(w.len(), 16 * 64);
    /// let bound = (6.0f32 / 64.0).sqrt();
    /// assert!(w.max() <= bound && w.min() >= -bound);
    /// ```
    pub fn tensor(self, shape: impl Into<Shape>, fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
        let shape = shape.into();
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            Init::Constant(v) => Tensor::full(shape, v),
            Init::Uniform { bound } => {
                Tensor::from_fn(shape, |_| rng.gen_range(-bound..=bound))
            }
            Init::KaimingUniform => {
                let bound = (6.0 / fan_in.max(1) as f32).sqrt();
                Tensor::from_fn(shape, |_| rng.gen_range(-bound..=bound))
            }
            Init::XavierUniform => {
                let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                Tensor::from_fn(shape, |_| rng.gen_range(-bound..=bound))
            }
            Init::Normal { std } => {
                // Box–Muller transform; `rand`'s normal distribution
                // lives in rand_distr, which we avoid pulling in.
                Tensor::from_fn(shape, |_| {
                    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                    let u2: f32 = rng.gen_range(0.0..1.0);
                    std * (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
                })
            }
        }
    }
}

/// Derives a decorrelated child seed from a parent seed and a stream
/// label using the SplitMix64 finalizer.
///
/// The same `(parent, label)` pair always yields the same child, and
/// different labels yield (statistically) independent streams.
///
/// # Examples
///
/// ```
/// use snn_tensor::derive_seed;
///
/// let a = derive_seed(7, "weights");
/// let b = derive_seed(7, "data");
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(7, "weights"));
/// ```
pub fn derive_seed(parent: u64, label: &str) -> u64 {
    let mut h = parent ^ 0x9e37_79b9_7f4a_7c15;
    for &b in label.as_bytes() {
        h = h.wrapping_add(b as u64);
        h = splitmix64(h);
    }
    splitmix64(h)
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_fills() {
        let t = Init::Constant(0.5).tensor(Shape::d1(4), 1, 1, 0);
        assert_eq!(t.as_slice(), &[0.5; 4]);
    }

    #[test]
    fn kaiming_bound_respected() {
        let fan_in = 100;
        let t = Init::KaimingUniform.tensor(Shape::d1(10_000), fan_in, 1, 3);
        let bound = (6.0f32 / fan_in as f32).sqrt();
        assert!(t.max() <= bound + 1e-6);
        assert!(t.min() >= -bound - 1e-6);
        // Should actually use the range, not collapse to zero.
        assert!(t.max() > bound * 0.5);
    }

    #[test]
    fn xavier_bound_respected() {
        let t = Init::XavierUniform.tensor(Shape::d1(10_000), 50, 50, 3);
        let bound = (6.0f32 / 100.0).sqrt();
        assert!(t.max() <= bound + 1e-6 && t.min() >= -bound - 1e-6);
    }

    #[test]
    fn normal_moments_roughly_right() {
        let t = Init::Normal { std: 2.0 }.tensor(Shape::d1(50_000), 1, 1, 9);
        let mean = t.mean();
        let var = t.sq_norm() / t.len() as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Init::KaimingUniform.tensor(Shape::d1(32), 8, 8, 11);
        let b = Init::KaimingUniform.tensor(Shape::d1(32), 8, 8, 11);
        assert_eq!(a, b);
        let c = Init::KaimingUniform.tensor(Shape::d1(32), 8, 8, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn derive_seed_distinguishes_labels_and_parents() {
        assert_ne!(derive_seed(1, "a"), derive_seed(1, "b"));
        assert_ne!(derive_seed(1, "a"), derive_seed(2, "a"));
        assert_eq!(derive_seed(5, "enc"), derive_seed(5, "enc"));
    }
}
