//! Crate-private kernel observability helpers.
//!
//! The hot kernels ([`crate::conv`], [`crate::linalg`]) publish
//! spike-sparsity gauges into the global `snn-obs` registry. Density
//! is a last-value gauge and input density drifts slowly across a
//! run, so the nonzero count (linear in the operand, and the only
//! part that rivals the kernels' own arithmetic — measurably so on
//! the sparse GEMM path, whose whole point is to skip most of that
//! arithmetic) is *sampled*: one in [`SAMPLE_EVERY`] calls scans, the
//! rest pay one relaxed fetch-add.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use snn_obs::Gauge;

/// Every `SAMPLE_EVERY`-th call scans its operand; the first call
/// always does, so the gauge is live from the first kernel invocation.
const SAMPLE_EVERY: u64 = 16;

/// A lazily-registered density gauge: records the fraction of nonzero
/// elements in a slice, the crate's operational definition of spike
/// density.
pub(crate) struct DensityGauge {
    name: &'static str,
    help: &'static str,
    calls: AtomicU64,
    cell: OnceLock<Arc<Gauge>>,
}

impl DensityGauge {
    pub(crate) const fn new(name: &'static str, help: &'static str) -> Self {
        DensityGauge { name, help, calls: AtomicU64::new(0), cell: OnceLock::new() }
    }

    /// Sets the gauge to an already-measured density ratio, with no
    /// scan and no sampling. Used by kernels whose dispatch logic
    /// scans the operand anyway (the routed conv2d), where the exact
    /// reading is free.
    pub(crate) fn set_ratio(&self, ratio: f64) {
        let g = self.cell.get_or_init(|| snn_obs::global().gauge(self.name, self.help));
        g.set(ratio);
    }

    /// Sets the gauge to `nnz(data) / len(data)` on sampled calls.
    /// Empty slices leave the gauge untouched.
    pub(crate) fn record(&self, data: &[f32]) {
        if data.is_empty()
            || !self.calls.fetch_add(1, Ordering::Relaxed).is_multiple_of(SAMPLE_EVERY)
        {
            return;
        }
        let g = self.cell.get_or_init(|| snn_obs::global().gauge(self.name, self.help));
        let nnz = data.iter().filter(|&&v| v != 0.0).count();
        g.set(nnz as f64 / data.len() as f64);
    }
}
