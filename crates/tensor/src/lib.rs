//! # snn-tensor
//!
//! Dense `f32` tensors with hand-written forward *and* backward
//! kernels, sized for training small convolutional spiking neural
//! networks on a CPU.
//!
//! This crate is the numeric substrate of the DATE'24 reproduction: it
//! replaces the PyTorch tensor/autograd layer the paper's authors used
//! via snnTorch. There is deliberately no general-purpose autodiff
//! graph — each kernel ([`linalg`], [`conv`], [`pool`]) exposes an
//! explicit backward function, and the BPTT engine in `snn-core`
//! composes them.
//!
//! ## Quick tour
//!
//! ```
//! use snn_tensor::{conv, linalg, Init, Shape, Tensor};
//!
//! // A tiny dense layer: y = x Wᵀ + b, with W stored [out, in].
//! let w = Init::KaimingUniform.tensor(Shape::d2(4, 8), 8, 4, 7);
//! let x = Tensor::ones(Shape::d2(1, 8));
//! let mut y = linalg::matmul_nt(&x, &w)?; // [1, 4]
//! let b = Tensor::zeros(Shape::d1(4));
//! linalg::add_bias_rows(&mut y, &b)?;
//! assert_eq!(y.shape(), Shape::d2(1, 4));
//!
//! // A convolution geometry like the paper's first layer (32C3 on
//! // 32x32 RGB input with padding 1).
//! let g = conv::Conv2dGeometry::new(3, 32, 3, 1, 1, 32, 32)?;
//! assert_eq!(g.output_item_shape().dims(), &[32, 32, 32]);
//! # Ok::<(), snn_tensor::TensorError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod conv;
pub mod dispatch;
mod error;
mod init;
mod kobs;
pub mod linalg;
pub mod par;
pub mod pool;
pub mod qmat;
mod shape;
pub mod spike;
mod stats;
mod tensor;

pub use error::{Result, TensorError};
pub use init::{derive_seed, Init};
pub use shape::Shape;
pub use stats::{histogram, percentile, Summary};
pub use tensor::Tensor;
