//! Dense matrix kernels: GEMM, transposed products, bias broadcast.
//!
//! The kernels here are deliberately plain loop nests with a cached
//! row-major layout — no SIMD intrinsics — so the same code builds on
//! any target. The inner loops are arranged `i → k → j` so the
//! innermost accesses are contiguous in both `B` and `C`, which lets
//! LLVM auto-vectorize them.

use crate::error::{Result, TensorError};
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Computes `C = A · B` for row-major rank-2 tensors.
///
/// `A` is `[m, k]`, `B` is `[k, n]`, result is `[m, n]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not
/// rank 2 and [`TensorError::GemmInnerDim`] if the inner dimensions
/// disagree.
///
/// # Examples
///
/// ```
/// use snn_tensor::{linalg, Shape, Tensor};
///
/// let a = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 2.0, 3.0, 4.0])?;
/// let b = Tensor::from_vec(Shape::d2(2, 1), vec![1.0, 1.0])?;
/// let c = linalg::matmul(&a, &b)?;
/// assert_eq!(c.as_slice(), &[3.0, 7.0]);
/// # Ok::<(), snn_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = dims2(a, "matmul lhs")?;
    let (k2, n) = dims2(b, "matmul rhs")?;
    if k != k2 {
        return Err(TensorError::GemmInnerDim { lhs_cols: k, rhs_rows: k2 });
    }
    let mut c = Tensor::zeros(Shape::d2(m, n));
    gemm_into(a.as_slice(), b.as_slice(), c.as_mut_slice(), m, k, n);
    Ok(c)
}

/// Computes `C = Aᵀ · B` without materializing the transpose.
///
/// `A` is `[k, m]`, `B` is `[k, n]`, result is `[m, n]`. This is the
/// shape that arises for weight gradients (`dW = Xᵀ · dY`).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or
/// [`TensorError::GemmInnerDim`] on malformed operands.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = dims2(a, "matmul_tn lhs")?;
    let (k2, n) = dims2(b, "matmul_tn rhs")?;
    if k != k2 {
        return Err(TensorError::GemmInnerDim { lhs_cols: k, rhs_rows: k2 });
    }
    let mut c = Tensor::zeros(Shape::d2(m, n));
    let (av, bv, cv) = (a.as_slice(), b.as_slice(), c.as_mut_slice());
    // C[i,j] = sum_p A[p,i] * B[p,j]
    for p in 0..k {
        let arow = &av[p * m..(p + 1) * m];
        let brow = &bv[p * n..(p + 1) * n];
        for (i, &aval) in arow.iter().enumerate() {
            if aval == 0.0 {
                continue; // spike matrices are mostly zero; skip the row
            }
            let crow = &mut cv[i * n..(i + 1) * n];
            for (cval, &bval) in crow.iter_mut().zip(brow) {
                *cval += aval * bval;
            }
        }
    }
    Ok(c)
}

/// Computes `C = A · Bᵀ` without materializing the transpose.
///
/// `A` is `[m, k]`, `B` is `[n, k]`, result is `[m, n]`. This is the
/// shape that arises for input gradients (`dX = dY · Wᵀ` with `W`
/// stored `[n, k]` = `[out, in]`).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or
/// [`TensorError::GemmInnerDim`] on malformed operands.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = dims2(a, "matmul_nt lhs")?;
    let (n, k2) = dims2(b, "matmul_nt rhs")?;
    if k != k2 {
        return Err(TensorError::GemmInnerDim { lhs_cols: k, rhs_rows: k2 });
    }
    let mut c = Tensor::zeros(Shape::d2(m, n));
    let (av, bv, cv) = (a.as_slice(), b.as_slice(), c.as_mut_slice());
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        let crow = &mut cv[i * n..(i + 1) * n];
        for (j, cval) in crow.iter_mut().enumerate() {
            let brow = &bv[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            *cval = acc;
        }
    }
    Ok(c)
}

/// Raw GEMM on slices: `C += A · B`, `A` `[m,k]`, `B` `[k,n]`, `C`
/// `[m,n]`, all row-major.
///
/// Exposed for the convolution kernels which operate on scratch
/// buffers.
///
/// # Panics
///
/// Debug-asserts the slice lengths match the given dimensions.
pub fn gemm_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (p, &aval) in arow.iter().enumerate() {
            if aval == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (cval, &bval) in crow.iter_mut().zip(brow) {
                *cval += aval * bval;
            }
        }
    }
}

/// Adds a length-`n` bias row to every row of a `[m, n]` tensor in
/// place.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `bias` is not rank 1 of
/// length `n`.
pub fn add_bias_rows(x: &mut Tensor, bias: &Tensor) -> Result<()> {
    let (m, n) = dims2(x, "add_bias_rows input")?;
    if bias.shape().rank() != 1 || bias.len() != n {
        return Err(TensorError::ShapeMismatch {
            lhs: x.shape(),
            rhs: bias.shape(),
            op: "add_bias_rows",
        });
    }
    let bv = bias.as_slice().to_vec();
    let xv = x.as_mut_slice();
    for i in 0..m {
        for (xval, &bval) in xv[i * n..(i + 1) * n].iter_mut().zip(&bv) {
            *xval += bval;
        }
    }
    Ok(())
}

/// Sums a `[m, n]` tensor over its rows, producing a length-`n`
/// rank-1 tensor. This is the bias-gradient reduction.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if `x` is not rank 2.
pub fn sum_rows(x: &Tensor) -> Result<Tensor> {
    let (m, n) = dims2(x, "sum_rows")?;
    let mut out = Tensor::zeros(Shape::d1(n));
    let (xv, ov) = (x.as_slice(), out.as_mut_slice());
    for i in 0..m {
        for (o, &v) in ov.iter_mut().zip(&xv[i * n..(i + 1) * n]) {
            *o += v;
        }
    }
    Ok(out)
}

/// Returns the transpose of a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if `x` is not rank 2.
pub fn transpose(x: &Tensor) -> Result<Tensor> {
    let (m, n) = dims2(x, "transpose")?;
    let mut out = Tensor::zeros(Shape::d2(n, m));
    let (xv, ov) = (x.as_slice(), out.as_mut_slice());
    for i in 0..m {
        for j in 0..n {
            ov[j * m + i] = xv[i * n + j];
        }
    }
    Ok(out)
}

fn dims2(t: &Tensor, _what: &'static str) -> Result<(usize, usize)> {
    if t.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.shape().rank(),
            op: "matrix kernel",
        });
    }
    Ok((t.shape().dim(0), t.shape().dim(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(r: usize, c: usize, v: Vec<f32>) -> Tensor {
        Tensor::from_vec(Shape::d2(r, c), v).unwrap()
    }

    #[test]
    fn matmul_known_values() {
        let a = t2(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = t2(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = t2(2, 2, vec![1., 2., 3., 4.]);
        let id = t2(2, 2, vec![1., 0., 0., 1.]);
        assert_eq!(matmul(&a, &id).unwrap(), a);
        assert_eq!(matmul(&id, &a).unwrap(), a);
    }

    #[test]
    fn matmul_rejects_bad_dims() {
        let a = t2(2, 3, vec![0.; 6]);
        let b = t2(2, 3, vec![0.; 6]);
        assert!(matches!(matmul(&a, &b), Err(TensorError::GemmInnerDim { .. })));
        let v = Tensor::zeros(Shape::d1(3));
        assert!(matmul(&v, &b).is_err());
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let a = t2(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = t2(3, 4, (0..12).map(|i| i as f32).collect());
        let want = matmul(&transpose(&a).unwrap(), &b).unwrap();
        let got = matmul_tn(&a, &b).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let a = t2(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = t2(4, 3, (0..12).map(|i| i as f32).collect());
        let want = matmul(&a, &transpose(&b).unwrap()).unwrap();
        let got = matmul_nt(&a, &b).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn bias_and_sum_rows_are_adjoint_shapes() {
        let mut x = Tensor::zeros(Shape::d2(3, 2));
        let b = Tensor::from_vec(Shape::d1(2), vec![1., -1.]).unwrap();
        add_bias_rows(&mut x, &b).unwrap();
        assert_eq!(x.as_slice(), &[1., -1., 1., -1., 1., -1.]);
        let s = sum_rows(&x).unwrap();
        assert_eq!(s.as_slice(), &[3., -3.]);
    }

    #[test]
    fn bias_rejects_wrong_len() {
        let mut x = Tensor::zeros(Shape::d2(3, 2));
        let b = Tensor::zeros(Shape::d1(3));
        assert!(add_bias_rows(&mut x, &b).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = t2(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let tt = transpose(&transpose(&a).unwrap()).unwrap();
        assert_eq!(tt, a);
    }

    #[test]
    fn gemm_skips_zero_rows_correctly() {
        // A with a zero entry must produce the same result as the naive
        // triple loop.
        let a = t2(2, 2, vec![0., 1., 2., 0.]);
        let b = t2(2, 2, vec![5., 6., 7., 8.]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[7., 8., 10., 12.]);
    }
}
