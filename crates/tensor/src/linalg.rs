//! Dense matrix kernels: GEMM, transposed products, bias broadcast.
//!
//! The kernels here are deliberately plain loop nests with a cached
//! row-major layout — no SIMD intrinsics — so the same code builds on
//! any target. The inner loops are arranged `i → k → j` so the
//! innermost accesses are contiguous in both `B` and `C`, which lets
//! LLVM auto-vectorize them. The matrix products split their output
//! rows across the scoped-thread pool in [`crate::par`], and binary
//! spike operands take a sparse gather path ([`SpikeIndex`],
//! [`gemm_spike_into`]).
//!
//! # Exactness
//!
//! Every optimization here preserves results bit-for-bit against the
//! plain serial triple loop, for any thread count and block size:
//!
//! * Parallelism and cache blocking only change *which rows/columns
//!   are computed when*; each output element still accumulates its
//!   `k` terms in ascending inner-index order, and no accumulation
//!   crosses a worker boundary.
//! * The sparse paths skip exactly the terms whose spike factor is
//!   `0.0`. Each such product is `±0.0`, and an IEEE-754
//!   accumulation that starts at `+0.0` can never reach `-0.0`
//!   (round-to-nearest returns `+0.0` both for `+0.0 + -0.0` and for
//!   exact cancellation of nonzero terms), so `acc + ±0.0 == acc`
//!   bitwise and dropping the term is a no-op. The kept terms are
//!   `a * 1.0 == a`, exactly.

use crate::error::{Result, TensorError};
use crate::kobs::DensityGauge;
use crate::par;
use crate::shape::Shape;
use crate::tensor::Tensor;

static MATMUL_LHS_DENSITY: DensityGauge = DensityGauge::new(
    "snn_tensor_matmul_lhs_density_ratio",
    "fraction of nonzero elements in the most recent matmul/matmul_nt left operand",
);

/// Computes `C = A · B` for row-major rank-2 tensors.
///
/// `A` is `[m, k]`, `B` is `[k, n]`, result is `[m, n]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not
/// rank 2 and [`TensorError::GemmInnerDim`] if the inner dimensions
/// disagree.
///
/// # Examples
///
/// ```
/// use snn_tensor::{linalg, Shape, Tensor};
///
/// let a = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 2.0, 3.0, 4.0])?;
/// let b = Tensor::from_vec(Shape::d2(2, 1), vec![1.0, 1.0])?;
/// let c = linalg::matmul(&a, &b)?;
/// assert_eq!(c.as_slice(), &[3.0, 7.0]);
/// # Ok::<(), snn_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = dims2(a, "matmul lhs")?;
    let (k2, n) = dims2(b, "matmul rhs")?;
    if k != k2 {
        return Err(TensorError::GemmInnerDim { lhs_cols: k, rhs_rows: k2 });
    }
    let _span = snn_obs::span!("matmul");
    MATMUL_LHS_DENSITY.record(a.as_slice());
    let mut c = Tensor::zeros(Shape::d2(m, n));
    if m == 0 || n == 0 {
        return Ok(c);
    }
    let (av, bv) = (a.as_slice(), b.as_slice());
    let cv = c.as_mut_slice();
    par::for_each_block(cv, n, par::min_granules_for(2 * k * n), |row0, cblock| {
        let rows = cblock.len() / n;
        gemm_into(&av[row0 * k..(row0 + rows) * k], bv, cblock, rows, k, n);
    });
    Ok(c)
}

/// Computes `C = Aᵀ · B` without materializing the transpose.
///
/// `A` is `[k, m]`, `B` is `[k, n]`, result is `[m, n]`. This is the
/// shape that arises for weight gradients (`dW = Xᵀ · dY`).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or
/// [`TensorError::GemmInnerDim`] on malformed operands.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = dims2(a, "matmul_tn lhs")?;
    let (k2, n) = dims2(b, "matmul_tn rhs")?;
    if k != k2 {
        return Err(TensorError::GemmInnerDim { lhs_cols: k, rhs_rows: k2 });
    }
    let _span = snn_obs::span!("matmul_tn");
    let mut c = Tensor::zeros(Shape::d2(m, n));
    if m == 0 || n == 0 {
        return Ok(c);
    }
    let (av, bv) = (a.as_slice(), b.as_slice());
    let cv = c.as_mut_slice();
    par::for_each_block(cv, n, par::min_granules_for(2 * k * n), |row0, cblock| {
        // C[i,j] = sum_p A[p,i] * B[p,j]; `p` stays the outer loop so
        // every element accumulates in the same ascending-`p` order
        // as the serial kernel.
        for p in 0..k {
            let arow = &av[p * m..(p + 1) * m];
            let brow = &bv[p * n..(p + 1) * n];
            for (i, crow) in cblock.chunks_exact_mut(n).enumerate() {
                let aval = arow[row0 + i];
                if aval == 0.0 {
                    continue; // spike matrices are mostly zero; skip the row
                }
                for (cval, &bval) in crow.iter_mut().zip(brow) {
                    *cval += aval * bval;
                }
            }
        }
    });
    Ok(c)
}

/// Computes `C = A · Bᵀ` without materializing the transpose.
///
/// `A` is `[m, k]`, `B` is `[n, k]`, result is `[m, n]`. This is the
/// shape that arises for input gradients (`dX = dY · Wᵀ` with `W`
/// stored `[n, k]` = `[out, in]`).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or
/// [`TensorError::GemmInnerDim`] on malformed operands.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = dims2(a, "matmul_nt lhs")?;
    let (n, k2) = dims2(b, "matmul_nt rhs")?;
    if k != k2 {
        return Err(TensorError::GemmInnerDim { lhs_cols: k, rhs_rows: k2 });
    }
    let _span = snn_obs::span!("matmul_nt");
    MATMUL_LHS_DENSITY.record(a.as_slice());
    let mut c = Tensor::zeros(Shape::d2(m, n));
    if m == 0 || n == 0 {
        return Ok(c);
    }
    let (av, bv) = (a.as_slice(), b.as_slice());
    let cv = c.as_mut_slice();
    let mut scratch: Vec<Vec<u32>> = Vec::new();
    par::for_each_block_with(
        cv,
        n,
        par::min_granules_for(2 * k * n),
        &mut scratch,
        Vec::new,
        |nz, row0, cblock| {
            for (i, crow) in cblock.chunks_exact_mut(n).enumerate() {
                let arow = &av[(row0 + i) * k..(row0 + i + 1) * k];
                if gather_binary_row(arow, nz) {
                    // Spike row: every nonzero of `arow` is exactly
                    // 1.0, so each dot product is a gather-sum over
                    // `B` in ascending-`p` order — bitwise identical
                    // to the dense loop (see the module docs).
                    for (j, cval) in crow.iter_mut().enumerate() {
                        let brow = &bv[j * k..(j + 1) * k];
                        let mut acc = 0.0f32;
                        for &p in nz.iter() {
                            acc += brow[p as usize];
                        }
                        *cval = acc;
                    }
                } else {
                    for (j, cval) in crow.iter_mut().enumerate() {
                        let brow = &bv[j * k..(j + 1) * k];
                        let mut acc = 0.0f32;
                        for (&x, &y) in arow.iter().zip(brow) {
                            acc += x * y;
                        }
                        *cval = acc;
                    }
                }
            }
        },
    );
    Ok(c)
}

/// Collects the nonzero positions of `row` into `nz` if the row is
/// binary (every entry exactly 0.0 or 1.0) and at most half nonzero
/// — the regime where the gather-sum beats the dense dot. Returns
/// `false` (leaving `nz` unspecified) otherwise.
fn gather_binary_row(row: &[f32], nz: &mut Vec<u32>) -> bool {
    nz.clear();
    let max_nnz = row.len() / 2;
    for (p, &v) in row.iter().enumerate() {
        if v == 0.0 {
            continue;
        }
        if v != 1.0 || nz.len() >= max_nnz {
            return false;
        }
        nz.push(p as u32);
    }
    true
}

/// Raw GEMM on slices: `C += A · B`, `A` `[m,k]`, `B` `[k,n]`, `C`
/// `[m,n]`, all row-major.
///
/// Exposed for the convolution kernels which operate on scratch
/// buffers.
///
/// # Panics
///
/// Debug-asserts the slice lengths match the given dimensions.
pub fn gemm_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    // Cache blocking over columns: 512 f32 columns = 2 KiB per `B`
    // row, so the panel of `B` rows a block touches stays resident
    // while every `A` row sweeps it. Blocking only reorders which
    // elements are touched when — each `C` element still accumulates
    // its terms in ascending-`p` order, so results are bitwise
    // identical for any block size.
    const COL_BLOCK: usize = 512;
    let mut j0 = 0;
    while j0 < n {
        let jb = COL_BLOCK.min(n - j0);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let crow = &mut c[i * n + j0..i * n + j0 + jb];
            for (p, &aval) in arow.iter().enumerate() {
                if aval == 0.0 {
                    continue;
                }
                let brow = &b[p * n + j0..p * n + j0 + jb];
                for (cval, &bval) in crow.iter_mut().zip(brow) {
                    *cval += aval * bval;
                }
            }
        }
        j0 += jb;
    }
}

/// Row-compressed index of the nonzero positions of a binary (0/1)
/// matrix — the sparse operand format for spike GEMMs.
///
/// The buffers are reused across [`SpikeIndex::build`] calls, so a
/// per-layer index allocates only on the first timestep of a
/// sequence.
#[derive(Debug, Clone, Default)]
pub struct SpikeIndex {
    /// `ptr[r]..ptr[r + 1]` brackets row `r`'s entries in `idx`.
    ptr: Vec<u32>,
    /// Column indices of the 1.0 entries, row by row, ascending.
    idx: Vec<u32>,
}

impl SpikeIndex {
    /// Empty index; populated by [`SpikeIndex::build`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-indexes `values` (row-major `[rows, cols]`). Returns
    /// `false` — leaving the index unusable — if any entry is not
    /// exactly 0.0 or 1.0, or if more than `max_nnz` entries are
    /// nonzero (callers pass the density bound above which the dense
    /// kernel wins anyway); either way the scan aborts at the first
    /// disqualifying entry.
    pub fn build(&mut self, values: &[f32], rows: usize, cols: usize, max_nnz: usize) -> bool {
        debug_assert_eq!(values.len(), rows * cols);
        self.ptr.clear();
        self.idx.clear();
        self.ptr.reserve(rows + 1);
        self.ptr.push(0);
        for row in values.chunks_exact(cols) {
            for (j, &v) in row.iter().enumerate() {
                if v == 0.0 {
                    continue;
                }
                if v != 1.0 || self.idx.len() >= max_nnz {
                    return false;
                }
                self.idx.push(j as u32);
            }
            self.ptr.push(self.idx.len() as u32);
        }
        true
    }

    /// Nonzero column indices of row `r`, ascending.
    pub fn row(&self, r: usize) -> &[u32] {
        &self.idx[self.ptr[r] as usize..self.ptr[r + 1] as usize]
    }

    /// Total nonzero count.
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }
}

/// Sparse GEMM `C += A · S` where `S` is a binary `[k, n]` matrix
/// given by its [`SpikeIndex`]: `A` is `[m, k]`, `C` is `[m, n]`.
///
/// Instead of multiplying whole rows of a mostly-zero `S`, each
/// nonzero scatters `A[i, p]` into `C` directly (the `× 1.0` is
/// elided). Each `C` element still receives its terms in
/// ascending-`p` order and the skipped terms are exact zeros, so the
/// result is bitwise identical to [`gemm_into`] on the dense operand
/// (see the module docs on exactness).
///
/// # Panics
///
/// Debug-asserts the dimensions; panics on out-of-range indices.
pub fn gemm_spike_into(a: &[f32], s: &SpikeIndex, c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(c.len(), m * n);
    debug_assert_eq!(s.ptr.len(), k + 1);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (p, &aval) in arow.iter().enumerate() {
            if aval == 0.0 {
                continue;
            }
            for &j in s.row(p) {
                crow[j as usize] += aval;
            }
        }
    }
}

/// Adds a length-`n` bias row to every row of a `[m, n]` tensor in
/// place.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `bias` is not rank 1 of
/// length `n`.
pub fn add_bias_rows(x: &mut Tensor, bias: &Tensor) -> Result<()> {
    let (m, n) = dims2(x, "add_bias_rows input")?;
    if bias.shape().rank() != 1 || bias.len() != n {
        return Err(TensorError::ShapeMismatch {
            lhs: x.shape(),
            rhs: bias.shape(),
            op: "add_bias_rows",
        });
    }
    let bv = bias.as_slice().to_vec();
    let xv = x.as_mut_slice();
    for i in 0..m {
        for (xval, &bval) in xv[i * n..(i + 1) * n].iter_mut().zip(&bv) {
            *xval += bval;
        }
    }
    Ok(())
}

/// Sums a `[m, n]` tensor over its rows, producing a length-`n`
/// rank-1 tensor. This is the bias-gradient reduction.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if `x` is not rank 2.
pub fn sum_rows(x: &Tensor) -> Result<Tensor> {
    let (m, n) = dims2(x, "sum_rows")?;
    let mut out = Tensor::zeros(Shape::d1(n));
    let (xv, ov) = (x.as_slice(), out.as_mut_slice());
    for i in 0..m {
        for (o, &v) in ov.iter_mut().zip(&xv[i * n..(i + 1) * n]) {
            *o += v;
        }
    }
    Ok(out)
}

/// Returns the transpose of a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if `x` is not rank 2.
pub fn transpose(x: &Tensor) -> Result<Tensor> {
    let (m, n) = dims2(x, "transpose")?;
    let mut out = Tensor::zeros(Shape::d2(n, m));
    let (xv, ov) = (x.as_slice(), out.as_mut_slice());
    for i in 0..m {
        for j in 0..n {
            ov[j * m + i] = xv[i * n + j];
        }
    }
    Ok(out)
}

fn dims2(t: &Tensor, _what: &'static str) -> Result<(usize, usize)> {
    if t.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.shape().rank(),
            op: "matrix kernel",
        });
    }
    Ok((t.shape().dim(0), t.shape().dim(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(r: usize, c: usize, v: Vec<f32>) -> Tensor {
        Tensor::from_vec(Shape::d2(r, c), v).unwrap()
    }

    #[test]
    fn matmul_known_values() {
        let a = t2(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = t2(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = t2(2, 2, vec![1., 2., 3., 4.]);
        let id = t2(2, 2, vec![1., 0., 0., 1.]);
        assert_eq!(matmul(&a, &id).unwrap(), a);
        assert_eq!(matmul(&id, &a).unwrap(), a);
    }

    #[test]
    fn matmul_rejects_bad_dims() {
        let a = t2(2, 3, vec![0.; 6]);
        let b = t2(2, 3, vec![0.; 6]);
        assert!(matches!(matmul(&a, &b), Err(TensorError::GemmInnerDim { .. })));
        let v = Tensor::zeros(Shape::d1(3));
        assert!(matmul(&v, &b).is_err());
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let a = t2(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = t2(3, 4, (0..12).map(|i| i as f32).collect());
        let want = matmul(&transpose(&a).unwrap(), &b).unwrap();
        let got = matmul_tn(&a, &b).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let a = t2(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = t2(4, 3, (0..12).map(|i| i as f32).collect());
        let want = matmul(&a, &transpose(&b).unwrap()).unwrap();
        let got = matmul_nt(&a, &b).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn bias_and_sum_rows_are_adjoint_shapes() {
        let mut x = Tensor::zeros(Shape::d2(3, 2));
        let b = Tensor::from_vec(Shape::d1(2), vec![1., -1.]).unwrap();
        add_bias_rows(&mut x, &b).unwrap();
        assert_eq!(x.as_slice(), &[1., -1., 1., -1., 1., -1.]);
        let s = sum_rows(&x).unwrap();
        assert_eq!(s.as_slice(), &[3., -3.]);
    }

    #[test]
    fn bias_rejects_wrong_len() {
        let mut x = Tensor::zeros(Shape::d2(3, 2));
        let b = Tensor::zeros(Shape::d1(3));
        assert!(add_bias_rows(&mut x, &b).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = t2(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let tt = transpose(&transpose(&a).unwrap()).unwrap();
        assert_eq!(tt, a);
    }

    #[test]
    fn gemm_skips_zero_rows_correctly() {
        // A with a zero entry must produce the same result as the naive
        // triple loop.
        let a = t2(2, 2, vec![0., 1., 2., 0.]);
        let b = t2(2, 2, vec![5., 6., 7., 8.]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[7., 8., 10., 12.]);
    }

    #[test]
    fn spike_index_accepts_binary_rejects_other() {
        let mut s = SpikeIndex::new();
        let spikes = [0., 1., 0., 0., 1., 1.];
        assert!(s.build(&spikes, 2, 3, 6));
        assert_eq!(s.nnz(), 3);
        assert_eq!(s.row(0), &[1]);
        assert_eq!(s.row(1), &[1, 2]);
        assert!(!s.build(&[0.5, 0.0], 1, 2, 2), "non-binary must be rejected");
        assert!(!s.build(&spikes, 2, 3, 2), "density bound must be enforced");
    }

    #[test]
    fn spike_gemm_matches_dense_bitwise() {
        let a: Vec<f32> = vec![0.3, -1.25, 0.0, 2.5, 0.75, -0.5];
        let spikes = [1., 0., 0., 1., 0., 0., 1., 1., 0., 0., 0., 1.];
        let (m, k, n) = (2, 3, 4);
        let mut dense = vec![0.0f32; m * n];
        gemm_into(&a, &spikes, &mut dense, m, k, n);
        let mut s = SpikeIndex::new();
        assert!(s.build(&spikes, k, n, k * n));
        let mut sparse = vec![0.0f32; m * n];
        gemm_spike_into(&a, &s, &mut sparse, m, k, n);
        let dense_bits: Vec<u32> = dense.iter().map(|v| v.to_bits()).collect();
        let sparse_bits: Vec<u32> = sparse.iter().map(|v| v.to_bits()).collect();
        assert_eq!(dense_bits, sparse_bits);
    }

    #[test]
    fn matmuls_are_thread_count_invariant() {
        // Large enough that the row count clears the per-worker
        // work floor, so threads > 1 genuinely run in parallel.
        let (m, k, n) = (512, 33, 40);
        let a = t2(m, k, (0..m * k).map(|i| (i as f32 * 0.37).sin()).collect());
        let b = t2(k, n, (0..k * n).map(|i| (i as f32 * 0.53).cos()).collect());
        let at = transpose(&a).unwrap();
        let bt = transpose(&b).unwrap();
        let serial = crate::par::with_num_threads(1, || {
            (matmul(&a, &b).unwrap(), matmul_tn(&at, &b).unwrap(), matmul_nt(&a, &bt).unwrap())
        });
        for threads in [2, 3, 8] {
            let parallel = crate::par::with_num_threads(threads, || {
                (matmul(&a, &b).unwrap(), matmul_tn(&at, &b).unwrap(), matmul_nt(&a, &bt).unwrap())
            });
            assert_eq!(serial, parallel);
        }
    }
}
