//! Scoped-thread parallel execution for the compute kernels.
//!
//! This is the workspace's shared "thread pool": a set of helpers
//! that split kernel work into disjoint contiguous blocks and run the
//! blocks on scoped threads (`std::thread::scope`), so no `unsafe`,
//! no `'static` bounds, and no external dependencies are needed.
//!
//! # Thread count
//!
//! The worker count comes from, in priority order:
//! 1. [`set_num_threads`] (explicit in-process configuration),
//! 2. the `SNN_NUM_THREADS` environment variable (read once, at the
//!    first kernel call),
//! 3. [`std::thread::available_parallelism`].
//!
//! # Determinism
//!
//! Every helper partitions work by *granule* (an output row, a batch
//! item, an element range) and each granule's computation is
//! self-contained: no accumulation crosses a granule boundary, and
//! cross-granule reductions are performed sequentially by the caller
//! in a fixed order. Results are therefore bitwise identical for
//! every thread count, including 1 (the serial path runs the same
//! code inline).
//!
//! # When to parallelize
//!
//! Spawning a scoped thread costs on the order of tens of
//! microseconds, so callers pass `min_granules_per_worker` sized so
//! each worker gets enough arithmetic to amortize the spawn; below
//! that the helpers degrade to a plain inline call.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Configured worker count; 0 means "not yet resolved" (resolve from
/// the environment on first use).
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Rough FLOP threshold under which a kernel is not worth a thread
/// spawn. Callers divide by their per-granule cost to derive
/// `min_granules_per_worker`.
pub const MIN_FLOPS_PER_WORKER: usize = 1 << 16;

/// Derives `min_granules_per_worker` for a kernel whose granules cost
/// `flops_per_granule` arithmetic operations each.
pub fn min_granules_for(flops_per_granule: usize) -> usize {
    (MIN_FLOPS_PER_WORKER / flops_per_granule.max(1)).max(1)
}

fn resolve_from_env() -> usize {
    std::env::var("SNN_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        })
}

/// Returns the worker count kernels will use.
///
/// Defaults to `SNN_NUM_THREADS` if set (≥ 1), otherwise
/// [`std::thread::available_parallelism`].
pub fn num_threads() -> usize {
    match NUM_THREADS.load(Ordering::Relaxed) {
        0 => {
            let n = resolve_from_env();
            NUM_THREADS.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Overrides the worker count process-wide. Passing 0 resets to
/// automatic resolution (environment, then hardware) on the next
/// [`num_threads`] call.
///
/// Kernel results do not depend on this value (see the module docs on
/// determinism) — only wall-clock time does.
pub fn set_num_threads(n: usize) {
    NUM_THREADS.store(n, Ordering::Relaxed);
}

/// Runs `f` with the worker count forced to `n`, restoring the
/// previous setting afterwards. Calls are serialized process-wide, so
/// concurrent tests sweeping thread counts don't interleave their
/// overrides.
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    static GUARD: Mutex<()> = Mutex::new(());
    let _guard = GUARD.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let previous = NUM_THREADS.swap(n, Ordering::Relaxed);
    let result = f();
    NUM_THREADS.store(previous, Ordering::Relaxed);
    result
}

/// Splits `data` into per-worker blocks of whole granules (each
/// granule is `granule` consecutive elements) and runs
/// `f(first_granule_index, block)` for each block, in parallel when
/// the granule count justifies it.
///
/// # Panics
///
/// Panics if `granule` is zero or does not divide `data.len()`.
/// Worker panics propagate when the scope joins.
pub fn for_each_block<T, F>(data: &mut [T], granule: usize, min_granules_per_worker: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let mut scratch: Vec<()> = Vec::new();
    for_each_block2_with(
        data,
        granule,
        &mut [],
        0,
        min_granules_per_worker,
        &mut scratch,
        || (),
        |_s: &mut (), start, block, _b: &mut [()]| f(start, block),
    );
}

/// Like [`for_each_block`], but each worker additionally receives an
/// exclusive scratch value from `scratch` (grown with `make_scratch`
/// as needed). Scratch contents persist across calls, so per-sequence
/// buffers (e.g. im2col workspaces) are allocated once.
pub fn for_each_block_with<T, S, M, F>(
    data: &mut [T],
    granule: usize,
    min_granules_per_worker: usize,
    scratch: &mut Vec<S>,
    make_scratch: M,
    f: F,
) where
    T: Send,
    S: Send,
    M: FnMut() -> S,
    F: Fn(&mut S, usize, &mut [T]) + Sync,
{
    for_each_block2_with(
        data,
        granule,
        &mut [],
        0,
        min_granules_per_worker,
        scratch,
        make_scratch,
        |s, start, block, _b: &mut [()]| f(s, start, block),
    );
}

/// Splits two parallel buffers by the same granule count (`a` in
/// granules of `granule_a` elements, `b` of `granule_b`) and runs
/// `f(first_granule_index, block_a, block_b)` per block. Used when a
/// kernel writes two disjoint outputs per granule (e.g. pooling's
/// values + argmax, or per-item gradients + per-item reductions).
///
/// # Panics
///
/// Panics if `granule_a` is zero, or if either buffer's length is not
/// `granules * granule`. Worker panics propagate when the scope
/// joins.
pub fn for_each_block2<A, B, F>(
    a: &mut [A],
    granule_a: usize,
    b: &mut [B],
    granule_b: usize,
    min_granules_per_worker: usize,
    f: F,
) where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    let mut scratch: Vec<()> = Vec::new();
    for_each_block2_with(
        a,
        granule_a,
        b,
        granule_b,
        min_granules_per_worker,
        &mut scratch,
        || (),
        |_s: &mut (), start, block_a, block_b| f(start, block_a, block_b),
    );
}

/// Most general block runner: two parallel output buffers plus
/// per-worker scratch. All other helpers delegate here.
///
/// `granule_b == 0` means "no second buffer" (workers get an empty
/// `block_b`).
///
/// # Panics
///
/// Panics if `granule_a` is zero or the buffer lengths are not whole
/// multiples of their granule sizes with equal granule counts.
/// Worker panics propagate when the scope joins.
#[allow(clippy::too_many_arguments)]
pub fn for_each_block2_with<A, B, S, M, F>(
    a: &mut [A],
    granule_a: usize,
    b: &mut [B],
    granule_b: usize,
    min_granules_per_worker: usize,
    scratch: &mut Vec<S>,
    mut make_scratch: M,
    f: F,
) where
    A: Send,
    B: Send,
    S: Send,
    M: FnMut() -> S,
    F: Fn(&mut S, usize, &mut [A], &mut [B]) + Sync,
{
    assert!(granule_a > 0, "granule_a must be nonzero");
    assert!(
        a.len().is_multiple_of(granule_a),
        "buffer length {} is not a whole number of granules of {granule_a}",
        a.len()
    );
    let granules = a.len() / granule_a;
    if granule_b > 0 {
        assert!(
            b.len() == granules * granule_b,
            "second buffer length {} disagrees with {granules} granules of {granule_b}",
            b.len()
        );
    }
    let min_granules = min_granules_per_worker.max(1);
    let workers = num_threads().min(granules / min_granules).max(1);
    record_dispatch(workers);
    while scratch.len() < workers {
        scratch.push(make_scratch());
    }
    if workers == 1 {
        f(&mut scratch[0], 0, a, b);
        return;
    }
    let base = granules / workers;
    let rem = granules % workers;
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest_a: &mut [A] = a;
        let mut rest_b: &mut [B] = b;
        let mut start = 0usize;
        for (w, s) in scratch.iter_mut().take(workers).enumerate() {
            let count = base + usize::from(w < rem);
            let (block_a, next_a) = std::mem::take(&mut rest_a).split_at_mut(count * granule_a);
            rest_a = next_a;
            let (block_b, next_b) = std::mem::take(&mut rest_b).split_at_mut(count * granule_b);
            rest_b = next_b;
            let first = start;
            scope.spawn(move || f(s, first, block_a, block_b));
            start += count;
        }
    });
}

/// Publishes pool activity into the global `snn-obs` registry: one
/// counter increment per dispatch (split by parallel vs. serial
/// fallback) and a gauge holding the most recent worker count. Costs
/// one relaxed atomic add per *dispatch*, never per granule.
fn record_dispatch(workers: usize) {
    use std::sync::{Arc, OnceLock};
    struct PoolObs {
        parallel: Arc<snn_obs::Counter>,
        serial: Arc<snn_obs::Counter>,
        workers: Arc<snn_obs::Gauge>,
    }
    static OBS: OnceLock<PoolObs> = OnceLock::new();
    let o = OBS.get_or_init(|| PoolObs {
        parallel: snn_obs::global().counter(
            "snn_tensor_par_parallel_dispatch_total",
            "pool dispatches that ran on more than one worker",
        ),
        serial: snn_obs::global().counter(
            "snn_tensor_par_serial_dispatch_total",
            "pool dispatches that ran inline on the calling thread",
        ),
        workers: snn_obs::global()
            .gauge("snn_tensor_par_workers", "worker count of the most recent pool dispatch"),
    });
    if workers > 1 {
        o.parallel.inc();
    } else {
        o.serial.inc();
    }
    o.workers.set(workers as f64);
}

/// Applies `f` to every item on the worker pool and returns results
/// in input order. Items are claimed dynamically (an atomic cursor),
/// so unevenly sized tasks — design-space sweep points, whole
/// training runs — balance across workers.
///
/// # Panics
///
/// Propagates panics from `f` (the scope unwinds on join).
///
/// # Examples
///
/// ```
/// use snn_tensor::par::parallel_map;
///
/// let squares = parallel_map(&[1, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let workers = num_threads().min(items.len());
    record_dispatch(workers.max(1));
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(&items[i]);
                // Each slot is written exactly once, so the lock is
                // uncontended; it exists only to satisfy safe Rust.
                *slots[i].lock().expect("slot lock never poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock never poisoned")
                .expect("every index visited exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_threads_is_positive_and_settable() {
        assert!(num_threads() >= 1);
        with_num_threads(3, || assert_eq!(num_threads(), 3));
        assert!(num_threads() >= 1);
    }

    #[test]
    fn blocks_cover_everything_once() {
        for threads in [1, 2, 3, 5, 8] {
            with_num_threads(threads, || {
                let mut data = vec![0u32; 7 * 4];
                for_each_block(&mut data, 4, 1, |start, block| {
                    for (g, granule) in block.chunks_mut(4).enumerate() {
                        for v in granule.iter_mut() {
                            *v += (start + g + 1) as u32;
                        }
                    }
                });
                let want: Vec<u32> =
                    (0..7).flat_map(|g| std::iter::repeat_n(g + 1, 4)).collect();
                assert_eq!(data, want);
            });
        }
    }

    #[test]
    fn pair_blocks_stay_aligned() {
        with_num_threads(4, || {
            let mut a = vec![0u32; 6 * 3];
            let mut b = vec![0u64; 6 * 2];
            for_each_block2(&mut a, 3, &mut b, 2, 1, |start, ba, bb| {
                for v in ba.iter_mut() {
                    *v = start as u32;
                }
                for v in bb.iter_mut() {
                    *v = start as u64;
                }
            });
            // Every granule pair was written by a worker whose start
            // index is at most the granule's own index.
            for (g, granule) in a.chunks(3).enumerate() {
                assert!(granule.iter().all(|&v| v as usize <= g));
            }
            for (g, granule) in b.chunks(2).enumerate() {
                assert!(granule.iter().all(|&v| v as usize <= g));
            }
        });
    }

    #[test]
    fn scratch_is_reused_across_calls() {
        with_num_threads(2, || {
            let mut scratch: Vec<Vec<f32>> = Vec::new();
            let mut data = vec![0.0f32; 64];
            for _ in 0..3 {
                for_each_block_with(
                    &mut data,
                    1,
                    1,
                    &mut scratch,
                    Vec::new,
                    |buf, _start, block| {
                        buf.resize(16, 0.0);
                        for v in block.iter_mut() {
                            *v += 1.0;
                        }
                    },
                );
            }
            assert_eq!(scratch.len(), 2, "one scratch per worker, reused");
            assert!(data.iter().all(|&v| v == 3.0));
        });
    }

    #[test]
    fn min_granules_forces_serial() {
        with_num_threads(8, || {
            // 4 granules with min 8 per worker -> single inline call.
            let mut data = vec![0u8; 4];
            let calls = AtomicUsize::new(0);
            for_each_block(&mut data, 1, 8, |_start, block| {
                calls.fetch_add(1, Ordering::Relaxed);
                for v in block.iter_mut() {
                    *v = 1;
                }
            });
            assert_eq!(calls.load(Ordering::Relaxed), 1);
            assert_eq!(data, vec![1; 4]);
        });
    }

    #[test]
    fn empty_input_is_a_noop() {
        let mut data: Vec<f32> = Vec::new();
        for_each_block(&mut data, 3, 1, |_start, block| {
            assert!(block.is_empty());
        });
        let out: Vec<u32> = parallel_map(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_preserves_order() {
        for threads in [1, 2, 4, 8] {
            with_num_threads(threads, || {
                let input: Vec<usize> = (0..100).collect();
                let out = parallel_map(&input, |&x| x + 1);
                assert_eq!(out, (1..=100).collect::<Vec<_>>());
            });
        }
    }

    #[test]
    fn parallel_map_handles_uneven_work() {
        with_num_threads(4, || {
            let input: Vec<u64> = (0..32).collect();
            let out = parallel_map(&input, |&x| {
                (0..(x % 7) * 1000).fold(x, |a, b| a.wrapping_add(b))
            });
            let want: Vec<u64> = input
                .iter()
                .map(|&x| (0..(x % 7) * 1000).fold(x, |a, b| a.wrapping_add(b)))
                .collect();
            assert_eq!(out, want);
        });
    }
}
