//! 2-D max pooling with argmax-routed backward pass.

use serde::{Deserialize, Serialize};

use crate::error::{Result, TensorError};
use crate::par;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Static geometry of a 2-D max-pooling operation.
///
/// The paper's network uses `P2`/`MP2`, i.e. kernel = stride = 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pool2dGeometry {
    /// Channel count (pooling is per-channel).
    pub channels: usize,
    /// Square pooling window side.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Input spatial height.
    pub in_h: usize,
    /// Input spatial width.
    pub in_w: usize,
}

impl Pool2dGeometry {
    /// Creates and validates a pooling geometry.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadGeometry`] on zero dimensions or a
    /// window larger than the input.
    pub fn new(channels: usize, kernel: usize, stride: usize, in_h: usize, in_w: usize) -> Result<Self> {
        let g = Pool2dGeometry { channels, kernel, stride, in_h, in_w };
        if channels == 0 || kernel == 0 || in_h == 0 || in_w == 0 {
            return Err(TensorError::BadGeometry(format!("zero-sized pool: {g:?}")));
        }
        if stride == 0 {
            return Err(TensorError::BadGeometry("pool stride must be nonzero".into()));
        }
        if kernel > in_h || kernel > in_w {
            return Err(TensorError::BadGeometry(format!(
                "pool window {kernel} exceeds input {in_h}x{in_w}"
            )));
        }
        Ok(g)
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.in_h - self.kernel) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w - self.kernel) / self.stride + 1
    }

    /// Shape of one output item `[C, out_h, out_w]`.
    pub fn output_item_shape(&self) -> Shape {
        Shape::d3(self.channels, self.out_h(), self.out_w())
    }
}

/// Result of a max-pool forward pass: pooled values plus the linear
/// input offsets of each selected maximum (for gradient routing).
#[derive(Debug, Clone)]
pub struct PoolForward {
    /// Pooled output `[N, C, out_h, out_w]`.
    pub output: Tensor,
    /// For every output element, the linear index into the input
    /// tensor of the element that won the max.
    pub argmax: Vec<u32>,
}

/// Max-pools a `[N, C, H, W]` batch.
///
/// Ties are broken toward the first (row-major earliest) element of
/// the window, matching the usual framework behaviour.
///
/// # Errors
///
/// Returns a [`TensorError`] if the input shape disagrees with the
/// geometry.
pub fn maxpool2d_forward(g: &Pool2dGeometry, input: &Tensor) -> Result<PoolForward> {
    if input.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input.shape().rank(),
            op: "maxpool2d input",
        });
    }
    let n = input.shape().dim(0);
    let expect = Shape::d4(n, g.channels, g.in_h, g.in_w);
    if input.shape() != expect {
        return Err(TensorError::ShapeMismatch { lhs: input.shape(), rhs: expect, op: "maxpool2d" });
    }
    let _span = snn_obs::span!("maxpool");
    let (oh, ow) = (g.out_h(), g.out_w());
    let mut output = Tensor::zeros(Shape::d4(n, g.channels, oh, ow));
    let mut argmax = vec![0u32; output.len()];
    let item_out = g.channels * oh * ow;
    if n == 0 || item_out == 0 {
        return Ok(PoolForward { output, argmax });
    }
    let iv = input.as_slice();
    let ov = output.as_mut_slice();
    let min_items = par::min_granules_for(item_out * g.kernel * g.kernel);
    par::for_each_block2(
        ov,
        item_out,
        &mut argmax,
        item_out,
        min_items,
        |item0, ovblock, amblock| {
            let mut oidx = 0usize;
            for i in 0..ovblock.len() / item_out {
                let item = item0 + i;
                for c in 0..g.channels {
                    let chan_base = (item * g.channels + c) * g.in_h * g.in_w;
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut best = f32::NEG_INFINITY;
                            let mut best_off = chan_base;
                            for ky in 0..g.kernel {
                                let iy = oy * g.stride + ky;
                                for kx in 0..g.kernel {
                                    let ix = ox * g.stride + kx;
                                    let off = chan_base + iy * g.in_w + ix;
                                    let v = iv[off];
                                    if v > best {
                                        best = v;
                                        best_off = off;
                                    }
                                }
                            }
                            ovblock[oidx] = best;
                            amblock[oidx] = best_off as u32;
                            oidx += 1;
                        }
                    }
                }
            }
        },
    );
    Ok(PoolForward { output, argmax })
}

/// Backward max pool: routes each upstream gradient to the input
/// position that won the forward max.
///
/// # Errors
///
/// Returns a [`TensorError`] if `grad_output` length disagrees with
/// `argmax`.
pub fn maxpool2d_backward(
    g: &Pool2dGeometry,
    batch: usize,
    argmax: &[u32],
    grad_output: &Tensor,
) -> Result<Tensor> {
    if grad_output.len() != argmax.len() {
        return Err(TensorError::DataLength {
            expected: argmax.len(),
            actual: grad_output.len(),
        });
    }
    let mut grad_input = Tensor::zeros(Shape::d4(batch, g.channels, g.in_h, g.in_w));
    let item_in = g.channels * g.in_h * g.in_w;
    let item_out = g.channels * g.out_h() * g.out_w();
    if batch == 0 || item_in == 0 || item_out == 0 {
        return Ok(grad_input);
    }
    let go = grad_output.as_slice();
    let gi = grad_input.as_mut_slice();
    if argmax.len() != batch * item_out {
        for (&off, &gv) in argmax.iter().zip(go) {
            gi[off as usize] += gv;
        }
        return Ok(grad_input);
    }
    // Every argmax offset for output item `i` points inside input item
    // `i`, so partitioning by item keeps the scatter worker-local and
    // preserves the serial per-element accumulation order exactly.
    par::for_each_block(gi, item_in, par::min_granules_for(2 * item_out), |item0, block| {
        let base = item0 * item_in;
        let items = block.len() / item_in;
        let lo = item0 * item_out;
        let hi = lo + items * item_out;
        for (&off, &gv) in argmax[lo..hi].iter().zip(&go[lo..hi]) {
            block[off as usize - base] += gv;
        }
    });
    Ok(grad_input)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_dims() {
        let g = Pool2dGeometry::new(3, 2, 2, 8, 8).unwrap();
        assert_eq!((g.out_h(), g.out_w()), (4, 4));
        let g = Pool2dGeometry::new(1, 3, 1, 5, 7).unwrap();
        assert_eq!((g.out_h(), g.out_w()), (3, 5));
    }

    #[test]
    fn geometry_rejects_bad() {
        assert!(Pool2dGeometry::new(0, 2, 2, 4, 4).is_err());
        assert!(Pool2dGeometry::new(1, 5, 2, 4, 4).is_err());
        assert!(Pool2dGeometry::new(1, 2, 0, 4, 4).is_err());
    }

    #[test]
    fn forward_picks_maxima() {
        let g = Pool2dGeometry::new(1, 2, 2, 2, 4).unwrap();
        let x = Tensor::from_vec(
            Shape::d4(1, 1, 2, 4),
            vec![1., 5., 2., 0., 3., 4., 8., 7.],
        )
        .unwrap();
        let f = maxpool2d_forward(&g, &x).unwrap();
        assert_eq!(f.output.as_slice(), &[5.0, 8.0]);
        assert_eq!(f.argmax, vec![1, 6]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let g = Pool2dGeometry::new(1, 2, 2, 2, 4).unwrap();
        let x = Tensor::from_vec(
            Shape::d4(1, 1, 2, 4),
            vec![1., 5., 2., 0., 3., 4., 8., 7.],
        )
        .unwrap();
        let f = maxpool2d_forward(&g, &x).unwrap();
        let dy = Tensor::from_vec(Shape::d4(1, 1, 1, 2), vec![10.0, 20.0]).unwrap();
        let dx = maxpool2d_backward(&g, 1, &f.argmax, &dy).unwrap();
        assert_eq!(dx.as_slice(), &[0., 10., 0., 0., 0., 0., 20., 0.]);
    }

    #[test]
    fn tie_breaks_to_first() {
        let g = Pool2dGeometry::new(1, 2, 2, 2, 2).unwrap();
        let x = Tensor::from_vec(Shape::d4(1, 1, 2, 2), vec![3., 3., 3., 3.]).unwrap();
        let f = maxpool2d_forward(&g, &x).unwrap();
        assert_eq!(f.argmax, vec![0]);
    }

    #[test]
    fn spikes_survive_pooling_as_binary() {
        // Pooling a {0,1} spike map yields a {0,1} map (logical OR over
        // the window) — the property that makes MaxPool SNN-friendly.
        let g = Pool2dGeometry::new(1, 2, 2, 4, 4).unwrap();
        let x = Tensor::from_fn(Shape::d4(1, 1, 4, 4), |i| if i % 3 == 0 { 1.0 } else { 0.0 });
        let f = maxpool2d_forward(&g, &x).unwrap();
        for &v in f.output.as_slice() {
            assert!(v == 0.0 || v == 1.0);
        }
    }

    #[test]
    fn numeric_gradient_check() {
        let g = Pool2dGeometry::new(2, 2, 2, 4, 4).unwrap();
        let mut x = Tensor::from_fn(Shape::d4(1, 2, 4, 4), |i| ((i * 13 % 17) as f32) * 0.1);
        let f = maxpool2d_forward(&g, &x).unwrap();
        let dy = Tensor::from_fn(f.output.shape(), |i| 1.0 + i as f32 * 0.01);
        let dx = maxpool2d_backward(&g, 1, &f.argmax, &dy).unwrap();
        let loss = |x: &Tensor| -> f64 {
            let f = maxpool2d_forward(&g, x).unwrap();
            f.output
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(&a, &b)| (a * b) as f64)
                .sum()
        };
        let eps = 1e-3f32;
        for idx in 0..x.len() {
            let orig = x.as_slice()[idx];
            x.as_mut_slice()[idx] = orig + eps;
            let lp = loss(&x);
            x.as_mut_slice()[idx] = orig - eps;
            let lm = loss(&x);
            x.as_mut_slice()[idx] = orig;
            let numeric = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let analytic = dx.as_slice()[idx];
            // Perturbation can flip an argmax near ties; allow a loose
            // tolerance but require agreement at clear maxima.
            assert!(
                (numeric - analytic).abs() < 0.15,
                "idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        let g = Pool2dGeometry::new(2, 2, 2, 4, 4).unwrap();
        let x = Tensor::zeros(Shape::d4(1, 3, 4, 4));
        assert!(maxpool2d_forward(&g, &x).is_err());
        let dy = Tensor::zeros(Shape::d1(3));
        assert!(maxpool2d_backward(&g, 1, &[0, 1], &dy).is_err());
    }
}
