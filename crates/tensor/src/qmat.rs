//! Integer (quantized) convolution and GEMM kernels.
//!
//! The quantized datapath keeps activations as `u8` (binary spikes,
//! or `0..=255` level-coded inputs on the first layer), weights as
//! symmetric `i8`, and accumulators as `i32`. Every sum is computed
//! with **wrapping** i32 arithmetic: wrapping addition is associative
//! and commutative, so the event route's tap order, the dense route's
//! k-order, and any thread split over batch items produce
//! bit-identical accumulators — exactness holds *unconditionally*,
//! not only in the no-overflow case (quantized artifacts additionally
//! guarantee the exact sums fit, see `snn-quant`). Saturation happens
//! exactly once, downstream, when the consumer narrows the rescaled
//! accumulator — never inside these kernels.
//!
//! Routing mirrors the f32 convolution: the batch is scanned once for
//! density, and binary inputs at or below
//! [`crate::dispatch::event_density_threshold`] take the event route
//! (per-active-pixel scatter of transposed weight columns into i32
//! lanes, no im2col); everything else takes the dense route (u8
//! im2col + the j-blocked GEMM skeleton from [`crate::linalg`]).
//! Every routed forward publishes `snn_tensor_qconv2d_route_*_total`
//! counters.

use crate::conv::Conv2dGeometry;
use crate::dispatch::{self, ConvRoute};
use crate::par;

/// Columns per j-block of [`qgemm_into`]: the `u8` activation row
/// slice stays within 1 KiB and the paired `i32` accumulator slice
/// within 4 KiB, both L1-resident.
const QCOL_BLOCK: usize = 1024;

/// Integer GEMM: `acc += W · X` with `W: [m, k]` i8, `X: [k, n]` u8,
/// `acc: [m, n]` i32.
///
/// Accumulating (callers zero `acc` for a plain product). Same
/// j-blocked skeleton as [`crate::linalg::gemm_into`], including the
/// zero-weight skip; all adds wrap, so the result is independent of
/// blocking and evaluation order.
///
/// # Panics
///
/// Panics if any buffer length disagrees with `m`/`k`/`n`.
pub fn qgemm_into(w: &[i8], x: &[u8], acc: &mut [i32], m: usize, k: usize, n: usize) {
    assert_eq!(w.len(), m * k, "weight length");
    assert_eq!(x.len(), k * n, "activation length");
    assert_eq!(acc.len(), m * n, "accumulator length");
    let mut jb = 0;
    while jb < n {
        let je = (jb + QCOL_BLOCK).min(n);
        for i in 0..m {
            let wrow = &w[i * k..(i + 1) * k];
            let arow = &mut acc[i * n + jb..i * n + je];
            for (kk, &wv) in wrow.iter().enumerate() {
                if wv == 0 {
                    continue;
                }
                let wv = wv as i32;
                let xrow = &x[kk * n + jb..kk * n + je];
                for (a, &xv) in arow.iter_mut().zip(xrow) {
                    *a = a.wrapping_add(wv.wrapping_mul(xv as i32));
                }
            }
        }
        jb = je;
    }
}

/// Expands one `u8` input item `[C, H, W]` into the im2col matrix
/// `[C·k², out_h·out_w]`; padding taps contribute zeros.
///
/// Element-for-element the integer twin of [`crate::conv::im2col`].
///
/// # Panics
///
/// Debug-asserts the buffer lengths match the geometry.
pub fn qim2col(g: &Conv2dGeometry, input: &[u8], cols: &mut [u8]) {
    debug_assert_eq!(input.len(), g.in_channels * g.in_h * g.in_w);
    debug_assert_eq!(cols.len(), g.col_rows() * g.col_cols());
    let (oh, ow) = (g.out_h(), g.out_w());
    let n_cols = oh * ow;
    cols.fill(0);
    for c in 0..g.in_channels {
        let chan = &input[c * g.in_h * g.in_w..(c + 1) * g.in_h * g.in_w];
        for ky in 0..g.kernel {
            for kx in 0..g.kernel {
                let row = (c * g.kernel + ky) * g.kernel + kx;
                let out_row = &mut cols[row * n_cols..(row + 1) * n_cols];
                for oy in 0..oh {
                    let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                    if iy < 0 || iy >= g.in_h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                        if ix < 0 || ix >= g.in_w as isize {
                            continue;
                        }
                        out_row[oy * ow + ox] = chan[iy * g.in_w + ix as usize];
                    }
                }
            }
        }
    }
}

/// Per-worker buffers for [`qconv2d_forward_routed`], grown lazily
/// and reused across timesteps.
#[derive(Debug, Clone, Default)]
pub struct QConvScratch {
    bufs: Vec<QConvBufs>,
}

impl QConvScratch {
    /// Empty scratch; buffers allocate on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

#[derive(Debug, Clone, Default)]
struct QConvBufs {
    /// Dense route: im2col matrix for one item.
    cols: Vec<u8>,
    /// Event route: position-major accumulator `[plane, oc]` so each
    /// tap adds one contiguous i32 lane group.
    acc_t: Vec<i32>,
}

/// Measured properties of a `u8` activation batch: nonzero count and
/// whether every value is 0/1.
fn scan_u8(x: &[u8]) -> (usize, bool) {
    let mut nnz = 0usize;
    let mut binary = true;
    for &v in x {
        nnz += (v != 0) as usize;
        binary &= v <= 1;
    }
    (nnz, binary)
}

/// Density-routed quantized convolution forward over a `[N, C, H, W]`
/// `u8` batch.
///
/// Writes raw i32 accumulator sums (no bias, no rescale) into `acc`
/// laid out `[N, out_channels, out_h·out_w]`, overwriting its
/// contents, and returns the route taken. `w` is the row-major
/// weight matrix `[oc, C·k²]`; `wt` is its transpose `[C·k², oc]`
/// (precomputed once per layer — the event route gathers whole
/// `oc`-lane groups from it).
///
/// Both routes produce bit-identical `acc` for the same input, and
/// results are independent of the worker count: items never share an
/// accumulator.
///
/// # Panics
///
/// Panics if any buffer length disagrees with the geometry.
pub fn qconv2d_forward_routed(
    g: &Conv2dGeometry,
    input: &[u8],
    n: usize,
    w: &[i8],
    wt: &[i8],
    acc: &mut [i32],
    scratch: &mut QConvScratch,
) -> ConvRoute {
    let item_in = g.in_channels * g.in_h * g.in_w;
    let plane = g.out_h() * g.out_w();
    let oc = g.out_channels;
    let rows = g.col_rows();
    let item_out = oc * plane;
    assert_eq!(input.len(), n * item_in, "input length");
    assert_eq!(w.len(), oc * rows, "weight length");
    assert_eq!(wt.len(), rows * oc, "transposed weight length");
    assert_eq!(acc.len(), n * item_out, "accumulator length");
    if n == 0 {
        return ConvRoute::Dense;
    }
    let threshold = dispatch::event_density_threshold();
    let (nnz, binary) = scan_u8(input);
    let density = nnz as f32 / input.len() as f32;
    let event = binary && threshold >= 0.0 && density <= threshold;
    let route = if event { ConvRoute::Event } else { ConvRoute::Dense };
    dispatch::record_qconv_route(route);
    let g = *g;
    par::for_each_block_with(
        acc,
        item_out,
        1,
        &mut scratch.bufs,
        QConvBufs::default,
        |bufs, item0, block| {
            for (slot, out_item) in block.chunks_exact_mut(item_out).enumerate() {
                let item = item0 + slot;
                let x = &input[item * item_in..(item + 1) * item_in];
                if event {
                    qconv_event_item(&g, x, wt, out_item, &mut bufs.acc_t);
                } else {
                    bufs.cols.resize(rows * plane, 0);
                    qim2col(&g, x, &mut bufs.cols);
                    out_item.fill(0);
                    qgemm_into(w, &bufs.cols, out_item, oc, rows, plane);
                }
            }
        },
    );
    route
}

/// Event-route convolution for one binary item: for every active
/// input pixel, enumerate the kernel taps it feeds and add the
/// corresponding transposed weight row (`oc` contiguous i8 lanes)
/// into the position-major i32 accumulator, then transpose to the
/// channel-major output layout.
fn qconv_event_item(
    g: &Conv2dGeometry,
    x: &[u8],
    wt: &[i8],
    out_item: &mut [i32],
    acc_t: &mut Vec<i32>,
) {
    let plane = g.out_h() * g.out_w();
    let oc = g.out_channels;
    let (oh, ow) = (g.out_h(), g.out_w());
    acc_t.resize(plane * oc, 0);
    acc_t.fill(0);
    let hw = g.in_h * g.in_w;
    for (pos, &v) in x.iter().enumerate() {
        if v == 0 {
            continue;
        }
        let c = pos / hw;
        let iy = (pos % hw) / g.in_w;
        let ix = pos % g.in_w;
        let iy_p = iy + g.padding;
        let ix_p = ix + g.padding;
        for ky in 0..g.kernel {
            if iy_p < ky {
                break;
            }
            let oy_off = iy_p - ky;
            if !oy_off.is_multiple_of(g.stride) {
                continue;
            }
            let oy = oy_off / g.stride;
            if oy >= oh {
                continue;
            }
            for kx in 0..g.kernel {
                if ix_p < kx {
                    break;
                }
                let ox_off = ix_p - kx;
                if !ox_off.is_multiple_of(g.stride) {
                    continue;
                }
                let ox = ox_off / g.stride;
                if ox >= ow {
                    continue;
                }
                let row = (c * g.kernel + ky) * g.kernel + kx;
                let opos = oy * ow + ox;
                let lanes = &wt[row * oc..(row + 1) * oc];
                let dst = &mut acc_t[opos * oc..(opos + 1) * oc];
                for (d, &wv) in dst.iter_mut().zip(lanes) {
                    *d = d.wrapping_add(wv as i32);
                }
            }
        }
    }
    for o in 0..oc {
        let out_row = &mut out_item[o * plane..(o + 1) * plane];
        for (p, slot) in out_row.iter_mut().enumerate() {
            *slot = acc_t[p * oc + o];
        }
    }
}

/// Event-driven quantized linear layer: `acc[i][o] = Σ_j x[i][j] ·
/// wt[j][o]` with `x: [items, k]` u8 and `wt: [k, out]` i8
/// (transposed weights, so each active input adds one contiguous
/// lane group).
///
/// Overwrites `acc` (`[items, out]`). Inputs are visited in ascending
/// `j` per item and items never share accumulators, so results are
/// exact integer sums independent of thread count. Binary activations
/// (the common case: spikes) skip the multiply entirely.
///
/// # Panics
///
/// Panics if any buffer length disagrees with `items`/`k`/`out`.
pub fn qlinear_into(x: &[u8], wt: &[i8], acc: &mut [i32], items: usize, k: usize, out: usize) {
    assert_eq!(x.len(), items * k, "activation length");
    assert_eq!(wt.len(), k * out, "transposed weight length");
    assert_eq!(acc.len(), items * out, "accumulator length");
    if items == 0 {
        return;
    }
    par::for_each_block(acc, out, 1, |item0, block| {
        for (slot, arow) in block.chunks_exact_mut(out).enumerate() {
            let item = item0 + slot;
            let xrow = &x[item * k..(item + 1) * k];
            arow.fill(0);
            for (j, &xv) in xrow.iter().enumerate() {
                if xv == 0 {
                    continue;
                }
                let lanes = &wt[j * out..(j + 1) * out];
                if xv == 1 {
                    for (a, &wv) in arow.iter_mut().zip(lanes) {
                        *a = a.wrapping_add(wv as i32);
                    }
                } else {
                    let xi = xv as i32;
                    for (a, &wv) in arow.iter_mut().zip(lanes) {
                        *a = a.wrapping_add(xi.wrapping_mul(wv as i32));
                    }
                }
            }
        }
    });
}

/// Transposes a row-major `[m, k]` i8 matrix into `[k, m]` (layer
/// setup helper for the event-route weight layout).
pub fn transpose_i8(w: &[i8], m: usize, k: usize) -> Vec<i8> {
    assert_eq!(w.len(), m * k, "matrix length");
    let mut wt = vec![0i8; k * m];
    for i in 0..m {
        for j in 0..k {
            wt[j * m + i] = w[i * k + j];
        }
    }
    wt
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::with_event_density_threshold;

    fn geom() -> Conv2dGeometry {
        Conv2dGeometry::new(2, 3, 3, 1, 1, 5, 5).unwrap()
    }

    fn ref_conv(g: &Conv2dGeometry, x: &[u8], w: &[i8]) -> Vec<i32> {
        // Independent O(everything) reference: direct tap enumeration
        // from the output side.
        let (oh, ow) = (g.out_h(), g.out_w());
        let mut out = vec![0i32; g.out_channels * oh * ow];
        for o in 0..g.out_channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut s = 0i64;
                    for c in 0..g.in_channels {
                        for ky in 0..g.kernel {
                            for kx in 0..g.kernel {
                                let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                                let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                                if iy < 0 || ix < 0 || iy >= g.in_h as isize || ix >= g.in_w as isize
                                {
                                    continue;
                                }
                                let xv =
                                    x[(c * g.in_h + iy as usize) * g.in_w + ix as usize] as i64;
                                let wv =
                                    w[(o * g.in_channels + c) * g.kernel * g.kernel
                                        + ky * g.kernel
                                        + kx] as i64;
                                s += xv * wv;
                            }
                        }
                    }
                    out[(o * oh + oy) * ow + ox] = s as i32;
                }
            }
        }
        out
    }

    #[test]
    fn dense_and_event_routes_match_reference() {
        let g = geom();
        let item_in = g.in_channels * g.in_h * g.in_w;
        let n = 3;
        let x: Vec<u8> = (0..n * item_in).map(|i| ((i * 7) % 5 == 0) as u8).collect();
        let w: Vec<i8> = (0..g.out_channels * g.col_rows())
            .map(|i| ((i * 13 % 11) as i32 - 5) as i8)
            .collect();
        let wt = transpose_i8(&w, g.out_channels, g.col_rows());
        let item_out = g.out_channels * g.out_h() * g.out_w();
        let mut want = Vec::new();
        for item in 0..n {
            want.extend(ref_conv(&g, &x[item * item_in..(item + 1) * item_in], &w));
        }
        let mut dense = vec![1i32; n * item_out];
        let mut event = vec![2i32; n * item_out];
        let r1 = with_event_density_threshold(-1.0, || {
            qconv2d_forward_routed(&g, &x, n, &w, &wt, &mut dense, &mut QConvScratch::new())
        });
        let r2 = with_event_density_threshold(1.0, || {
            qconv2d_forward_routed(&g, &x, n, &w, &wt, &mut event, &mut QConvScratch::new())
        });
        assert_eq!(r1, ConvRoute::Dense);
        assert_eq!(r2, ConvRoute::Event);
        assert_eq!(dense, want);
        assert_eq!(event, want);
    }

    #[test]
    fn nonbinary_input_pins_dense_route() {
        let g = geom();
        let item_in = g.in_channels * g.in_h * g.in_w;
        let x: Vec<u8> = (0..item_in).map(|i| (i % 4) as u8 * 80).collect();
        let w = vec![1i8; g.out_channels * g.col_rows()];
        let wt = transpose_i8(&w, g.out_channels, g.col_rows());
        let mut acc = vec![0i32; g.out_channels * g.out_h() * g.out_w()];
        let route = with_event_density_threshold(1.0, || {
            qconv2d_forward_routed(&g, &x, 1, &w, &wt, &mut acc, &mut QConvScratch::new())
        });
        assert_eq!(route, ConvRoute::Dense, "level-coded input must not take the event route");
        assert_eq!(acc, ref_conv(&g, &x, &w));
    }

    #[test]
    fn qgemm_matches_naive_and_wraps() {
        let (m, k, n) = (3, 4, 5);
        let w: Vec<i8> = (0..m * k).map(|i| (i as i32 - 6) as i8).collect();
        let x: Vec<u8> = (0..k * n).map(|i| (i * 29 % 256) as u8).collect();
        let mut acc = vec![0i32; m * n];
        qgemm_into(&w, &x, &mut acc, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0i32;
                for kk in 0..k {
                    s = s.wrapping_add(w[i * k + kk] as i32 * x[kk * n + j] as i32);
                }
                assert_eq!(acc[i * n + j], s);
            }
        }
    }

    #[test]
    fn qlinear_matches_qgemm() {
        let (items, k, out) = (4, 10, 6);
        let x: Vec<u8> = (0..items * k).map(|i| ((i % 3 == 0) as u8) * (1 + (i % 2) as u8)).collect();
        let w: Vec<i8> = (0..out * k).map(|i| ((i * 17 % 9) as i32 - 4) as i8).collect();
        let wt = transpose_i8(&w, out, k);
        let mut got = vec![0i32; items * out];
        qlinear_into(&x, &wt, &mut got, items, k, out);
        // Reference via qgemm on the transposed problem: out[i][o] =
        // (W · X^T)[o][i].
        let xt: Vec<u8> = {
            let mut t = vec![0u8; k * items];
            for i in 0..items {
                for j in 0..k {
                    t[j * items + i] = x[i * k + j];
                }
            }
            t
        };
        let mut byg = vec![0i32; out * items];
        qgemm_into(&w, &xt, &mut byg, out, k, items);
        for i in 0..items {
            for o in 0..out {
                assert_eq!(got[i * out + o], byg[o * items + i]);
            }
        }
    }
}
