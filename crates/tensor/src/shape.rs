//! Tensor shapes and row-major index arithmetic.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The shape of a dense, row-major tensor of rank 1–4.
///
/// Ranks above 4 are not needed anywhere in this workspace (the largest
/// objects are `[N, C, H, W]` activation batches), so the dimensions
/// are stored inline to keep `Shape` `Copy` and allocation-free.
///
/// # Examples
///
/// ```
/// use snn_tensor::Shape;
///
/// let s = Shape::d4(8, 3, 32, 32);
/// assert_eq!(s.len(), 8 * 3 * 32 * 32);
/// assert_eq!(s.rank(), 4);
/// assert_eq!(s.dim(1), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: [usize; 4],
    rank: u8,
}

impl Shape {
    /// Creates a rank-1 shape.
    pub fn d1(n: usize) -> Self {
        Shape { dims: [n, 1, 1, 1], rank: 1 }
    }

    /// Creates a rank-2 shape (`rows`, `cols`).
    pub fn d2(rows: usize, cols: usize) -> Self {
        Shape { dims: [rows, cols, 1, 1], rank: 2 }
    }

    /// Creates a rank-3 shape (`c`, `h`, `w`).
    pub fn d3(c: usize, h: usize, w: usize) -> Self {
        Shape { dims: [c, h, w, 1], rank: 3 }
    }

    /// Creates a rank-4 shape (`n`, `c`, `h`, `w`).
    pub fn d4(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape { dims: [n, c, h, w], rank: 4 }
    }

    /// Creates a shape from a dimension slice.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or has more than 4 entries.
    pub fn from_dims(dims: &[usize]) -> Self {
        assert!(
            !dims.is_empty() && dims.len() <= 4,
            "shape rank must be 1..=4, got {}",
            dims.len()
        );
        let mut d = [1usize; 4];
        d[..dims.len()].copy_from_slice(dims);
        Shape { dims: d, rank: dims.len() as u8 }
    }

    /// Number of dimensions (1–4).
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        assert!(axis < self.rank(), "axis {axis} out of range for rank {}", self.rank());
        self.dims[axis]
    }

    /// The dimensions as a slice of length `rank()`.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank()]
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims().iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides for this shape, one per dimension.
    ///
    /// The last dimension has stride 1.
    pub fn strides(&self) -> [usize; 4] {
        let r = self.rank();
        let mut s = [0usize; 4];
        let mut acc = 1usize;
        for axis in (0..r).rev() {
            s[axis] = acc;
            acc *= self.dims[axis];
        }
        s
    }

    /// Linear (row-major) offset of a rank-2 index.
    #[inline]
    pub fn offset2(&self, i: usize, j: usize) -> usize {
        debug_assert_eq!(self.rank(), 2);
        i * self.dims[1] + j
    }

    /// Linear (row-major) offset of a rank-4 index.
    #[inline]
    pub fn offset4(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert_eq!(self.rank(), 4);
        ((n * self.dims[1] + c) * self.dims[2] + h) * self.dims[3] + w
    }

    /// Returns this shape with the leading (batch) dimension replaced.
    ///
    /// Useful when the same feature geometry is reused across batch
    /// sizes.
    pub fn with_batch(&self, n: usize) -> Shape {
        let mut out = *self;
        out.dims[0] = n;
        out
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<usize> for Shape {
    fn from(n: usize) -> Self {
        Shape::d1(n)
    }
}

impl From<(usize, usize)> for Shape {
    fn from((a, b): (usize, usize)) -> Self {
        Shape::d2(a, b)
    }
}

impl From<(usize, usize, usize)> for Shape {
    fn from((a, b, c): (usize, usize, usize)) -> Self {
        Shape::d3(a, b, c)
    }
}

impl From<(usize, usize, usize, usize)> for Shape {
    fn from((a, b, c, d): (usize, usize, usize, usize)) -> Self {
        Shape::d4(a, b, c, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_rank() {
        assert_eq!(Shape::d1(5).len(), 5);
        assert_eq!(Shape::d2(3, 4).len(), 12);
        assert_eq!(Shape::d3(2, 3, 4).len(), 24);
        assert_eq!(Shape::d4(2, 3, 4, 5).len(), 120);
        assert_eq!(Shape::d4(2, 3, 4, 5).rank(), 4);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::d4(2, 3, 4, 5);
        assert_eq!(s.strides()[..4], [60, 20, 5, 1]);
        let s2 = Shape::d2(3, 7);
        assert_eq!(s2.strides()[..2], [7, 1]);
    }

    #[test]
    fn offsets_match_strides() {
        let s = Shape::d4(2, 3, 4, 5);
        let st = s.strides();
        for n in 0..2 {
            for c in 0..3 {
                for h in 0..4 {
                    for w in 0..5 {
                        let expect = n * st[0] + c * st[1] + h * st[2] + w * st[3];
                        assert_eq!(s.offset4(n, c, h, w), expect);
                    }
                }
            }
        }
    }

    #[test]
    fn from_dims_roundtrip() {
        let s = Shape::from_dims(&[4, 7]);
        assert_eq!(s, Shape::d2(4, 7));
        assert_eq!(s.dims(), &[4, 7]);
    }

    #[test]
    #[should_panic(expected = "shape rank")]
    fn from_dims_rejects_empty() {
        let _ = Shape::from_dims(&[]);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::d3(1, 2, 3).to_string(), "[1, 2, 3]");
    }

    #[test]
    fn with_batch_replaces_leading() {
        let s = Shape::d4(8, 3, 32, 32);
        assert_eq!(s.with_batch(1), Shape::d4(1, 3, 32, 32));
    }

    #[test]
    fn tuple_conversions() {
        let s: Shape = (2, 3).into();
        assert_eq!(s, Shape::d2(2, 3));
        let s: Shape = (2, 3, 4, 5).into();
        assert_eq!(s, Shape::d4(2, 3, 4, 5));
    }
}
