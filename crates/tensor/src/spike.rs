//! Compressed spike representations for the event-driven datapath.
//!
//! A spike train after the first layer is a binary tensor that is
//! mostly zeros, so the forward kernels can be driven by *events* —
//! the positions of the 1.0 entries — instead of sweeping dense
//! buffers. This module holds the two compressed forms the event
//! kernels consume:
//!
//! * [`SpikeTensor`] — a CSR-style index of the active positions of a
//!   `[items, item_len]` batch, built once per timestep with reusable
//!   buffers (the same recycling pattern as
//!   [`crate::linalg::SpikeIndex`], which indexes a single im2col
//!   matrix rather than a whole batch).
//! * [`TouchMask`] — one byte per `(item, spatial position)` marking
//!   which output positions an event-driven convolution actually
//!   wrote, so the following LIF step can restrict its synaptic
//!   accumulation to neurons that received input.
//!
//! Building either structure is a single linear scan of the operand —
//! cheap next to the convolution it gates — and the scan doubles as
//! the *measured density* reading the sparsity-adaptive dispatcher
//! ([`crate::dispatch`]) routes on, so the dense/event decision never
//! relies on a hardcoded guess about the data.

/// Result of a [`SpikeTensor::build`] scan over one batch.
///
/// The scan always runs to the end of the operand, so `nnz` and
/// `binary` are exact even when the index itself was abandoned
/// (`compressed == false`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpikeScan {
    /// Exact nonzero count of the whole batch.
    pub nnz: usize,
    /// Total element count of the batch (`items * item_len`).
    pub len: usize,
    /// Whether every entry was exactly `0.0` or `1.0`.
    pub binary: bool,
    /// Whether the index was fully populated: the operand is binary
    /// and its nonzero count stayed within the caller's bound.
    pub compressed: bool,
}

impl SpikeScan {
    /// Measured fraction of nonzero elements, in `[0, 1]` (0 for an
    /// empty operand).
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.nnz as f64 / self.len as f64
        }
    }
}

/// CSR-style index of the active (1.0) positions of a binary batch.
///
/// Layout: `ptr[i]..ptr[i + 1]` brackets item `i`'s entries in `idx`;
/// each entry is a position within the flattened item
/// (`0..item_len`), ascending. Buffers are reused across
/// [`SpikeTensor::build`] calls, so a layer-owned index allocates
/// only on the first timestep of a sequence.
///
/// # Examples
///
/// ```
/// use snn_tensor::spike::SpikeTensor;
///
/// let batch = [0.0, 1.0, 0.0, 1.0, 0.0, 1.0];
/// let mut spikes = SpikeTensor::new();
/// let scan = spikes.build(&batch, 2, 3, batch.len());
/// assert!(scan.compressed);
/// assert_eq!(scan.nnz, 3);
/// assert_eq!(spikes.item(0), &[1]);
/// assert_eq!(spikes.item(1), &[0, 2]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SpikeTensor {
    ptr: Vec<u32>,
    idx: Vec<u32>,
    items: usize,
    item_len: usize,
}

impl SpikeTensor {
    /// Empty index; populated by [`SpikeTensor::build`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-indexes `values` (row-major `[items, item_len]`).
    ///
    /// The scan always measures the exact nonzero count and whether
    /// the operand is binary. The index itself is kept only while the
    /// operand stays binary and its nonzero count stays at most
    /// `max_nnz` (the density bound above which the caller's dense
    /// kernel wins anyway); past either limit the index is abandoned
    /// but the measurement continues, so the returned [`SpikeScan`]
    /// is always exact.
    ///
    /// # Panics
    ///
    /// Debug-asserts `values.len() == items * item_len`.
    pub fn build(
        &mut self,
        values: &[f32],
        items: usize,
        item_len: usize,
        max_nnz: usize,
    ) -> SpikeScan {
        debug_assert_eq!(values.len(), items * item_len);
        self.ptr.clear();
        self.idx.clear();
        self.ptr.reserve(items + 1);
        self.ptr.push(0);
        self.items = items;
        self.item_len = item_len;
        let mut nnz = 0usize;
        let mut binary = true;
        let mut compressed = true;
        for item in values.chunks_exact(item_len) {
            for (p, &v) in item.iter().enumerate() {
                if v == 0.0 {
                    continue;
                }
                nnz += 1;
                if v != 1.0 {
                    binary = false;
                    compressed = false;
                } else if compressed && self.idx.len() >= max_nnz {
                    compressed = false;
                }
                if compressed {
                    self.idx.push(p as u32);
                }
            }
            self.ptr.push(self.idx.len() as u32);
        }
        if !compressed {
            self.ptr.clear();
            self.idx.clear();
            self.items = 0;
            self.item_len = 0;
        }
        SpikeScan { nnz, len: values.len(), binary, compressed }
    }

    /// Active positions of item `i`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the last build was not
    /// compressed.
    pub fn item(&self, i: usize) -> &[u32] {
        &self.idx[self.ptr[i] as usize..self.ptr[i + 1] as usize]
    }

    /// Item count of the last compressed build (0 otherwise).
    pub fn items(&self) -> usize {
        self.items
    }

    /// Flattened item length of the last compressed build.
    pub fn item_len(&self) -> usize {
        self.item_len
    }

    /// Total active-position count held by the index.
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }
}

/// One byte per `(item, spatial position)` recording which output
/// positions an event-driven kernel wrote.
///
/// The mask is plane-shaped — `[items, plane]` with `plane = out_h *
/// out_w` — because a convolution that touches spatial position `p`
/// touches it in *every* output channel (the kernel taps are shared
/// across filters). A following masked LIF step therefore only needs
/// the spatial mask plus the per-channel bias to know exactly which
/// neurons received nonzero input current.
///
/// The byte buffer is reused across [`TouchMask::reset`] calls.
#[derive(Debug, Clone, Default)]
pub struct TouchMask {
    bytes: Vec<u8>,
    items: usize,
    plane: usize,
}

impl TouchMask {
    /// Empty mask; sized by [`TouchMask::reset`] or
    /// [`TouchMask::build_from_nonzero`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Resizes to `[items, plane]`, clears every byte, and returns
    /// the raw buffer for a kernel to mark.
    pub(crate) fn reset_bytes(&mut self, items: usize, plane: usize) -> &mut [u8] {
        self.items = items;
        self.plane = plane;
        self.bytes.clear();
        self.bytes.resize(items * plane, 0);
        &mut self.bytes
    }

    /// Rebuilds the mask from a dense `[items, channels, plane]`
    /// activation buffer: position `(i, p)` is marked iff any channel
    /// of item `i` is nonzero at `p`. By construction the mask covers
    /// every position a dense kernel would have produced nonzero
    /// current at (channels driven purely by bias aside) — the
    /// invariant the masked LIF step relies on.
    ///
    /// # Panics
    ///
    /// Debug-asserts `values.len() == items * channels * plane`.
    pub fn build_from_nonzero(
        &mut self,
        values: &[f32],
        items: usize,
        channels: usize,
        plane: usize,
    ) {
        debug_assert_eq!(values.len(), items * channels * plane);
        self.reset_bytes(items, plane);
        for i in 0..items {
            let mask = &mut self.bytes[i * plane..(i + 1) * plane];
            for c in 0..channels {
                let chan = &values[(i * channels + c) * plane..(i * channels + c + 1) * plane];
                for (m, &v) in mask.iter_mut().zip(chan) {
                    if v != 0.0 {
                        *m = 1;
                    }
                }
            }
        }
    }

    /// Item count of the current mask.
    pub fn items(&self) -> usize {
        self.items
    }

    /// Spatial positions per item.
    pub fn plane(&self) -> usize {
        self.plane
    }

    /// Touch bytes of item `i` (nonzero = touched).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn item(&self, i: usize) -> &[u8] {
        &self.bytes[i * self.plane..(i + 1) * self.plane]
    }

    /// Total touched position count across all items.
    pub fn count(&self) -> usize {
        self.bytes.iter().filter(|&&b| b != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_indexes_items_independently() {
        let v = [1.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 0.0];
        let mut s = SpikeTensor::new();
        let scan = s.build(&v, 3, 3, v.len());
        assert!(scan.compressed && scan.binary);
        assert_eq!((scan.nnz, scan.len), (3, 9));
        assert_eq!(s.item(0), &[0]);
        assert_eq!(s.item(1), &[1, 2]);
        assert_eq!(s.item(2), &[] as &[u32]);
        assert_eq!(s.nnz(), 3);
        assert!((scan.density() - 3.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn scan_stays_exact_past_the_bound() {
        let v = [1.0, 1.0, 1.0, 1.0];
        let mut s = SpikeTensor::new();
        let scan = s.build(&v, 2, 2, 2);
        assert!(!scan.compressed, "bound of 2 must abandon the index");
        assert!(scan.binary);
        assert_eq!(scan.nnz, 4, "nnz must still be exact");
        assert_eq!(s.nnz(), 0, "abandoned index must be empty");
    }

    #[test]
    fn scan_measures_non_binary_operands() {
        let v = [0.0, 0.5, 1.0, 0.0];
        let mut s = SpikeTensor::new();
        let scan = s.build(&v, 1, 4, v.len());
        assert!(!scan.compressed && !scan.binary);
        assert_eq!(scan.nnz, 2);
    }

    #[test]
    fn empty_batch_is_compressed_and_empty() {
        let mut s = SpikeTensor::new();
        let scan = s.build(&[], 0, 7, 0);
        assert!(scan.compressed);
        assert_eq!((scan.nnz, scan.len), (0, 0));
        assert_eq!(scan.density(), 0.0);
    }

    #[test]
    fn buffers_are_reused_across_builds() {
        let mut s = SpikeTensor::new();
        s.build(&[1.0, 0.0, 1.0, 1.0], 2, 2, 4);
        assert_eq!(s.nnz(), 3);
        let scan = s.build(&[0.0, 1.0, 0.0, 0.0], 2, 2, 4);
        assert!(scan.compressed);
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.item(0), &[1]);
        assert_eq!(s.item(1), &[] as &[u32]);
    }

    #[test]
    fn touch_mask_marks_any_channel() {
        let mut m = TouchMask::new();
        // 1 item, 2 channels, plane 3: channel 0 hits pos 0, channel
        // 1 hits pos 2.
        let v = [5.0, 0.0, 0.0, 0.0, 0.0, -1.0];
        m.build_from_nonzero(&v, 1, 2, 3);
        assert_eq!(m.item(0), &[1, 0, 1]);
        assert_eq!((m.items(), m.plane(), m.count()), (1, 3, 2));
    }

    #[test]
    fn touch_mask_reset_clears_previous_marks() {
        let mut m = TouchMask::new();
        m.build_from_nonzero(&[1.0, 1.0], 1, 1, 2);
        assert_eq!(m.count(), 2);
        m.build_from_nonzero(&[0.0, 1.0], 1, 1, 2);
        assert_eq!(m.item(0), &[0, 1]);
    }
}
