//! Summary statistics over `f64` samples — used by trace analysis
//! and experiment reports.

/// Summary statistics of a sample set.
///
/// # Examples
///
/// ```
/// use snn_tensor::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// assert!((s.std - 1.118).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean (0.0 for an empty sample).
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum (`+inf` for an empty sample).
    pub min: f64,
    /// Maximum (`-inf` for an empty sample).
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a slice.
    pub fn of(xs: &[f64]) -> Summary {
        let count = xs.len();
        if count == 0 {
            return Summary {
                count,
                mean: 0.0,
                std: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            };
        }
        let mean = xs.iter().sum::<f64>() / count as f64;
        let var = xs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
        let (min, max) = xs
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        Summary { count, mean, std: var.sqrt(), min, max }
    }

    /// Coefficient of variation (`std / |mean|`; 0.0 when the mean is
    /// zero). Spike-trace burstiness in one number.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std / self.mean.abs()
        }
    }
}

/// Linear-interpolation percentile (`q` in `[0, 1]`) of an unsorted
/// sample.
///
/// Returns `None` for an empty sample.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any value is NaN.
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Fixed-width histogram over `[lo, hi)` with `bins` buckets;
/// out-of-range samples clamp to the edge buckets.
///
/// # Panics
///
/// Panics if `bins == 0` or `hi <= lo`.
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "need at least one bin");
    assert!(hi > lo, "histogram range must be non-degenerate");
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &x in xs {
        let idx = (((x - lo) / width).floor() as isize).clamp(0, bins as isize - 1) as usize;
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std, 2.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.count, 8);
        assert!((s.cv() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn summary_single() {
        let s = Summary::of(&[3.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std, 0.0);
        assert_eq!((s.min, s.max), (3.0, 3.0));
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 1.0), Some(4.0));
        assert_eq!(percentile(&xs, 0.5), Some(2.5));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn percentile_order_independent() {
        let a = percentile(&[3.0, 1.0, 2.0], 0.5);
        let b = percentile(&[1.0, 2.0, 3.0], 0.5);
        assert_eq!(a, b);
    }

    #[test]
    fn histogram_buckets_and_clamps() {
        let xs = [-1.0, 0.0, 0.5, 0.9, 1.5];
        let h = histogram(&xs, 0.0, 1.0, 2);
        // -1.0 clamps into bucket 0 (joining 0.0); 0.5 and 0.9 land
        // in bucket 1; 1.5 clamps into bucket 1.
        assert_eq!(h, vec![2, 3]);
        assert_eq!(h.iter().sum::<usize>(), xs.len());
    }

    #[test]
    #[should_panic(expected = "non-degenerate")]
    fn histogram_rejects_bad_range() {
        let _ = histogram(&[1.0], 1.0, 1.0, 4);
    }
}
