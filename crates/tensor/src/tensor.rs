//! The dense `f32` tensor type used throughout the workspace.

use std::fmt;
use std::ops::{Add, Mul, Sub};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::{Result, TensorError};
use crate::shape::Shape;

/// A dense, row-major tensor of `f32` values with rank 1–4.
///
/// `Tensor` is the workhorse value type for activations, weights, and
/// gradients. It intentionally stays simple: contiguous storage, eager
/// operations, explicit shapes. All neural-network kernels (GEMM,
/// convolution, pooling) live in sibling modules and operate on
/// `Tensor` values.
///
/// Storage is copy-on-write ([`Arc`]-shared): [`Clone`] and
/// [`Tensor::reshape`] are O(1) pointer copies, and the underlying
/// buffer is duplicated only when a shared tensor is mutated. The
/// BPTT engine caches a spike tensor per layer per timestep *and*
/// hands the same tensor to the next layer, so sharing those buffers
/// removes one full activation copy per step.
///
/// # Examples
///
/// ```
/// use snn_tensor::{Shape, Tensor};
///
/// let a = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 2.0, 3.0, 4.0])?;
/// let b = Tensor::full(Shape::d2(2, 2), 0.5);
/// let c = a.zip(&b, |x, y| x * y)?;
/// assert_eq!(c.as_slice(), &[0.5, 1.0, 1.5, 2.0]);
/// # Ok::<(), snn_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Arc<Vec<f32>>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Tensor { data: Arc::new(vec![0.0; shape.len()]), shape }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        Tensor { data: Arc::new(vec![value; shape.len()]), shape }
    }

    /// Creates a tensor from raw row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] if `data.len()` does not
    /// match the element count of `shape`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self> {
        let shape = shape.into();
        if data.len() != shape.len() {
            return Err(TensorError::DataLength { expected: shape.len(), actual: data.len() });
        }
        Ok(Tensor { shape, data: Arc::new(data) })
    }

    /// Creates a tensor by evaluating `f` at every linear index.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = shape.into();
        let data = (0..shape.len()).map(&mut f).collect();
        Tensor { shape, data: Arc::new(data) }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the raw row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the raw row-major data.
    ///
    /// If the storage is shared with other tensors (via [`Clone`] or
    /// [`Tensor::reshape`]), this first detaches a private copy
    /// (copy-on-write); on uniquely owned tensors it is free.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        let data: &mut Vec<f32> = Arc::make_mut(&mut self.data);
        data
    }

    /// Consumes the tensor, returning its raw storage (copying only
    /// if the storage is shared).
    pub fn into_vec(self) -> Vec<f32> {
        Arc::try_unwrap(self.data).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Value at a rank-2 index.
    #[inline]
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        self.data[self.shape.offset2(i, j)]
    }

    /// Value at a rank-4 index.
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.shape.offset4(n, c, h, w)]
    }

    /// Sets the value at a rank-2 index.
    #[inline]
    pub fn set2(&mut self, i: usize, j: usize, v: f32) {
        let off = self.shape.offset2(i, j);
        Arc::make_mut(&mut self.data)[off] = v;
    }

    /// Sets the value at a rank-4 index.
    #[inline]
    pub fn set4(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        let off = self.shape.offset4(n, c, h, w);
        Arc::make_mut(&mut self.data)[off] = v;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeCount`] if the element counts
    /// differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Tensor> {
        let shape = shape.into();
        if shape.len() != self.len() {
            return Err(TensorError::ReshapeCount { from: self.len(), to: shape.len() });
        }
        Ok(Tensor { shape, data: self.data.clone() })
    }

    /// In-place variant of [`Tensor::reshape`] that avoids cloning.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeCount`] if the element counts
    /// differ.
    pub fn reshape_in_place(&mut self, shape: impl Into<Shape>) -> Result<()> {
        let shape = shape.into();
        if shape.len() != self.len() {
            return Err(TensorError::ReshapeCount { from: self.len(), to: shape.len() });
        }
        self.shape = shape;
        Ok(())
    }

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape, data: Arc::new(self.data.iter().map(|&x| f(x)).collect()) }
    }

    /// Applies `f` elementwise in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in self.as_mut_slice() {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        self.check_same_shape(other, "zip")?;
        let data = self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect();
        Ok(Tensor { shape: self.shape, data: Arc::new(data) })
    }

    /// Elementwise `self += other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        self.check_same_shape(other, "add_assign")?;
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// Elementwise `self += scale * other` (AXPY).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, scale: f32, other: &Tensor) -> Result<()> {
        self.check_same_shape(other, "axpy")?;
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_in_place(&mut self, s: f32) {
        for x in self.as_mut_slice() {
            *x *= s;
        }
    }

    /// Returns a copy scaled by `s`.
    pub fn scaled(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Fills the tensor with `value`.
    pub fn fill(&mut self, value: f32) {
        self.as_mut_slice().fill(value);
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }

    /// Mean of all elements.
    ///
    /// Returns 0.0 for an empty tensor.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Maximum element, or `f32::NEG_INFINITY` for an empty tensor.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element, or `f32::INFINITY` for an empty tensor.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Number of non-zero elements.
    pub fn count_nonzero(&self) -> usize {
        self.data.iter().filter(|&&x| x != 0.0).count()
    }

    /// Fraction of elements equal to zero (1.0 for an empty tensor).
    ///
    /// This is the *sparsity* measure used by the accelerator workload
    /// model: spike tensors are {0, 1}-valued, so `density = 1 -
    /// sparsity` equals the firing rate.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 1.0;
        }
        1.0 - self.count_nonzero() as f64 / self.data.len() as f64
    }

    /// Sum of squares of all elements.
    pub fn sq_norm(&self) -> f64 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum()
    }

    /// Index of the maximum element of a rank-1 tensor or a row of a
    /// rank-2 tensor.
    ///
    /// For rank-2 tensors `row` selects the row; for rank-1 tensors it
    /// must be 0.
    ///
    /// # Panics
    ///
    /// Panics if the tensor rank is not 1 or 2, or `row` is out of
    /// range.
    pub fn argmax_row(&self, row: usize) -> usize {
        let (start, len) = match self.shape.rank() {
            1 => {
                assert_eq!(row, 0, "rank-1 tensor has a single row");
                (0, self.len())
            }
            2 => {
                let cols = self.shape.dim(1);
                assert!(row < self.shape.dim(0), "row {row} out of range");
                (row * cols, cols)
            }
            r => panic!("argmax_row expects rank 1 or 2, got rank {r}"),
        };
        let slice = &self.data[start..start + len];
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in slice.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Extracts one item of the leading (batch) axis as a tensor of
    /// rank `rank-1` (or rank 1 if the source is rank 1... the source
    /// must be rank >= 2).
    ///
    /// # Panics
    ///
    /// Panics if the tensor rank is < 2 or `index` is out of range.
    pub fn batch_item(&self, index: usize) -> Tensor {
        assert!(self.shape.rank() >= 2, "batch_item requires rank >= 2");
        let n = self.shape.dim(0);
        assert!(index < n, "batch index {index} out of range for {n}");
        let item_len = self.len() / n;
        let dims = self.shape.dims();
        let item_shape = Shape::from_dims(&dims[1..]);
        let start = index * item_len;
        Tensor {
            shape: item_shape,
            data: Arc::new(self.data[start..start + item_len].to_vec()),
        }
    }

    /// Stacks rank-R tensors of identical shape into a rank-(R+1)
    /// tensor along a new leading axis.
    ///
    /// # Errors
    ///
    /// Returns an error if `items` is empty, shapes differ, or the
    /// result would exceed rank 4.
    pub fn stack(items: &[Tensor]) -> Result<Tensor> {
        let first = items.first().ok_or_else(|| {
            TensorError::BadGeometry("cannot stack an empty list of tensors".into())
        })?;
        if first.shape.rank() >= 4 {
            return Err(TensorError::BadGeometry(
                "stacking rank-4 tensors would exceed the maximum rank".into(),
            ));
        }
        let mut data = Vec::with_capacity(first.len() * items.len());
        for it in items {
            if it.shape != first.shape {
                return Err(TensorError::ShapeMismatch {
                    lhs: first.shape,
                    rhs: it.shape,
                    op: "stack",
                });
            }
            data.extend_from_slice(&it.data);
        }
        let mut dims = vec![items.len()];
        dims.extend_from_slice(first.shape.dims());
        Ok(Tensor { shape: Shape::from_dims(&dims), data: Arc::new(data) })
    }

    fn check_same_shape(&self, other: &Tensor, op: &'static str) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch { lhs: self.shape, rhs: other.shape, op });
        }
        Ok(())
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const MAX_SHOWN: usize = 16;
        write!(f, "Tensor{} [", self.shape)?;
        for (i, v) in self.data.iter().take(MAX_SHOWN).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.len() > MAX_SHOWN {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;

    /// Elementwise addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Tensor::zip`] for a fallible
    /// variant.
    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a + b).expect("tensor addition shape mismatch")
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;

    /// Elementwise subtraction.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Tensor::zip`] for a fallible
    /// variant.
    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a - b).expect("tensor subtraction shape mismatch")
    }
}

impl Mul<&Tensor> for &Tensor {
    type Output = Tensor;

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Tensor::zip`] for a fallible
    /// variant.
    fn mul(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a * b).expect("tensor multiplication shape mismatch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(Shape::d2(2, 3), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(t.at2(0, 0), 1.0);
        assert_eq!(t.at2(1, 2), 6.0);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        let err = Tensor::from_vec(Shape::d1(3), vec![1.0]).unwrap_err();
        assert_eq!(err, TensorError::DataLength { expected: 3, actual: 1 });
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn(Shape::d1(12), |i| i as f32);
        let r = t.reshape(Shape::d3(2, 2, 3)).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(Shape::d2(5, 5)).is_err());
    }

    #[test]
    fn map_zip_arith() {
        let a = Tensor::from_vec(Shape::d1(3), vec![1., 2., 3.]).unwrap();
        let b = Tensor::from_vec(Shape::d1(3), vec![4., 5., 6.]).unwrap();
        assert_eq!((&a + &b).as_slice(), &[5., 7., 9.]);
        assert_eq!((&b - &a).as_slice(), &[3., 3., 3.]);
        assert_eq!((&a * &b).as_slice(), &[4., 10., 18.]);
        assert_eq!(a.map(|x| x * 2.0).as_slice(), &[2., 4., 6.]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(Shape::d2(2, 2), vec![1., -2., 3., 0.]).unwrap();
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.count_nonzero(), 3);
        assert!((t.sparsity() - 0.25).abs() < 1e-12);
        assert_eq!(t.sq_norm(), 1.0 + 4.0 + 9.0);
    }

    #[test]
    fn argmax_rows() {
        let t = Tensor::from_vec(Shape::d2(2, 3), vec![0., 5., 1., 9., 2., 3.]).unwrap();
        assert_eq!(t.argmax_row(0), 1);
        assert_eq!(t.argmax_row(1), 0);
        let v = Tensor::from_vec(Shape::d1(4), vec![0., 1., 3., 2.]).unwrap();
        assert_eq!(v.argmax_row(0), 2);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::ones(Shape::d1(3));
        let g = Tensor::from_vec(Shape::d1(3), vec![1., 2., 3.]).unwrap();
        a.axpy(-0.5, &g).unwrap();
        assert_eq!(a.as_slice(), &[0.5, 0.0, -0.5]);
        a.scale_in_place(2.0);
        assert_eq!(a.as_slice(), &[1.0, 0.0, -1.0]);
    }

    #[test]
    fn stack_and_batch_item() {
        let a = Tensor::full(Shape::d2(2, 2), 1.0);
        let b = Tensor::full(Shape::d2(2, 2), 2.0);
        let s = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(s.shape(), Shape::d3(2, 2, 2));
        assert_eq!(s.batch_item(0), a);
        assert_eq!(s.batch_item(1), b);
    }

    #[test]
    fn stack_rejects_mismatch_and_empty() {
        let a = Tensor::zeros(Shape::d1(2));
        let b = Tensor::zeros(Shape::d1(3));
        assert!(Tensor::stack(&[a, b]).is_err());
        assert!(Tensor::stack(&[]).is_err());
    }

    #[test]
    fn display_truncates() {
        let t = Tensor::zeros(Shape::d1(100));
        let s = t.to_string();
        assert!(s.contains('…'));
        assert!(s.starts_with("Tensor[100]"));
    }

    #[test]
    fn clone_eq() {
        let t = Tensor::from_fn(Shape::d2(3, 3), |i| i as f32 * 0.5);
        let u = t.clone();
        assert_eq!(t, u);
    }

    #[test]
    fn tensor_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
    }
}
