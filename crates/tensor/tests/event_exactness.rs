//! Bitwise-exactness properties of the event-driven datapath.
//!
//! The contract (see `conv` and `dispatch` module docs): the
//! event-driven convolution produces **bit-for-bit** the same output
//! as the dense im2col route, for every input density (0% through
//! 100%), thread count, and geometry — including the degenerate
//! shapes (empty spike set, all-ones input, 1×1 kernel) — and the
//! dispatcher picks routes from measured density alone, never
//! changing results.
//!
//! Route forcing uses `with_event_density_threshold` (−1 disables the
//! event route, 1.0 takes it whenever the input is binary). The
//! threshold guard is always taken *outside* `with_num_threads`, so
//! the two process-wide locks have a single nesting order.

use proptest::prelude::*;

use snn_tensor::conv::{conv2d_forward_routed, Conv2dGeometry, ConvScratch};
use snn_tensor::dispatch::{with_event_density_threshold, ConvRoute};
use snn_tensor::spike::SpikeTensor;
use snn_tensor::{par, Shape, Tensor};

fn lcg_tensor(shape: Shape, seed: u64, scale: f32) -> Tensor {
    let mut rng = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
    Tensor::from_fn(shape, |_| {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (((rng >> 33) as f32 / u32::MAX as f32) - 0.5) * 2.0 * scale
    })
}

/// Binary {0, 1} tensor with roughly `density_pct`% ones. `0` and
/// `100` produce exactly all-zero / all-one tensors.
fn spike_tensor(shape: Shape, seed: u64, density_pct: u32) -> Tensor {
    let mut rng = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    Tensor::from_fn(shape, |_| {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        f32::from(((rng >> 33) % 100) < density_pct as u64)
    })
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Event-driven conv2d equals the dense route bitwise across
    /// densities {0, 10, 50, 90, 100}%, thread counts {1, 4},
    /// kernels down to 1×1, strides 1–2, and with/without padding —
    /// and the dispatcher actually takes the event route on binary
    /// inputs when forced open.
    #[test]
    fn event_conv_bitwise_equals_dense(
        batch in 1usize..5, cin in 1usize..3, cout in 1usize..4,
        hw in 3usize..8,
        kernel in 1usize..4, stride in 1usize..3, pad in 0usize..2,
        density_idx in 0usize..5,
        seed in 0u64..500,
    ) {
        let density = [0u32, 10, 50, 90, 100][density_idx];
        let g = Conv2dGeometry::new(cin, cout, kernel, stride, pad, hw, hw).unwrap();
        let x = spike_tensor(Shape::d4(batch, cin, hw, hw), seed, density);
        let w = lcg_tensor(g.weight_shape(), seed + 13, 0.3);
        let b = lcg_tensor(Shape::d1(cout), seed + 17, 0.1);

        let mut scratch = ConvScratch::new();
        let (want, route) = with_event_density_threshold(-1.0, || {
            par::with_num_threads(1, || {
                conv2d_forward_routed(&g, &x, &w, &b, &mut scratch).unwrap()
            })
        });
        prop_assert_eq!(route, ConvRoute::Dense, "negative threshold must force dense");
        let want = bits(&want);

        let mut reused = ConvScratch::new();
        for threads in [1usize, 4] {
            let (got, route) = with_event_density_threshold(1.0, || {
                par::with_num_threads(threads, || {
                    conv2d_forward_routed(&g, &x, &w, &b, &mut reused).unwrap()
                })
            });
            prop_assert_eq!(route, ConvRoute::Event,
                "binary input under threshold 1.0 must take the event route");
            prop_assert_eq!(&bits(&got), &want, "threads={} density={}", threads, density);
        }
    }

    /// The event route's touch mask covers every output position that
    /// carries a nonzero value in any channel (bias excluded), so a
    /// masked LIF step downstream cannot miss synaptic input.
    #[test]
    fn touch_mask_covers_nonzero_outputs(
        batch in 1usize..4, cin in 1usize..3, cout in 1usize..4,
        hw in 3usize..8, kernel in 1usize..4, pad in 0usize..2,
        density_idx in 0usize..5,
        seed in 0u64..500,
    ) {
        let density = [0u32, 10, 50, 90, 100][density_idx];
        let g = Conv2dGeometry::new(cin, cout, kernel, 1, pad, hw, hw).unwrap();
        let x = spike_tensor(Shape::d4(batch, cin, hw, hw), seed, density);
        let w = lcg_tensor(g.weight_shape(), seed + 13, 0.3);
        let b = Tensor::zeros(Shape::d1(cout));
        let mut scratch = ConvScratch::new();
        let (out, route) = with_event_density_threshold(1.0, || {
            conv2d_forward_routed(&g, &x, &w, &b, &mut scratch).unwrap()
        });
        prop_assert_eq!(route, ConvRoute::Event);
        let plane = g.out_h() * g.out_w();
        let ov = out.as_slice();
        let touch = scratch.touch();
        prop_assert_eq!((touch.items(), touch.plane()), (batch, plane));
        for item in 0..batch {
            let mask = touch.item(item);
            for pos in 0..plane {
                let any_nonzero = (0..g.out_channels)
                    .any(|oc| ov[(item * g.out_channels + oc) * plane + pos] != 0.0);
                if any_nonzero {
                    prop_assert!(mask[pos] != 0,
                        "item {} pos {} nonzero but unmarked", item, pos);
                }
            }
        }
    }

    /// Dispatch is driven by measured density: under a mid-range
    /// threshold, sparse binary batches take the event route, dense
    /// binary batches fall back, and non-binary inputs always fall
    /// back — with identical bits in every case.
    #[test]
    fn dispatcher_routes_on_measured_density(
        batch in 1usize..4, hw in 4usize..8, seed in 0u64..500,
    ) {
        let g = Conv2dGeometry::new(2, 3, 3, 1, 1, hw, hw).unwrap();
        let w = lcg_tensor(g.weight_shape(), seed + 13, 0.3);
        let b = lcg_tensor(Shape::d1(3), seed + 17, 0.1);
        let mut scratch = ConvScratch::new();

        // ~10% density is far below a 0.3 threshold on any seed; the
        // exact nnz is data-dependent, so assert via the scan itself.
        let sparse_x = spike_tensor(Shape::d4(batch, 2, hw, hw), seed, 10);
        let dense_x = spike_tensor(Shape::d4(batch, 2, hw, hw), seed, 90);
        let analog_x = lcg_tensor(Shape::d4(batch, 2, hw, hw), seed, 1.0);
        let mut probe = SpikeTensor::new();
        let sparse_scan = probe.build(sparse_x.as_slice(), batch, sparse_x.len() / batch, usize::MAX);
        let dense_scan = probe.build(dense_x.as_slice(), batch, dense_x.len() / batch, usize::MAX);
        if sparse_scan.density() > 0.3 || dense_scan.density() <= 0.3 {
            return Ok(()); // improbable draw; skip rather than mis-assert
        }

        with_event_density_threshold(0.3, || {
            let (_, r) = conv2d_forward_routed(&g, &sparse_x, &w, &b, &mut scratch).unwrap();
            prop_assert_eq!(r, ConvRoute::Event, "sparse binary batch must go event");
            let (_, r) = conv2d_forward_routed(&g, &dense_x, &w, &b, &mut scratch).unwrap();
            prop_assert_eq!(r, ConvRoute::Dense, "dense binary batch must fall back");
            let (_, r) = conv2d_forward_routed(&g, &analog_x, &w, &b, &mut scratch).unwrap();
            prop_assert_eq!(r, ConvRoute::Dense, "non-binary input must fall back");
            Ok(())
        })?;
    }
}

/// All-ones input through a 1×1 kernel at stride 1: the event route
/// degenerates to one tap per pixel and must still match dense
/// bitwise (the densest possible event dispatch).
#[test]
fn all_ones_one_by_one_kernel_matches_dense() {
    let g = Conv2dGeometry::new(3, 4, 1, 1, 0, 5, 5).unwrap();
    let x = Tensor::ones(Shape::d4(2, 3, 5, 5));
    let w = lcg_tensor(g.weight_shape(), 7, 0.5);
    let b = lcg_tensor(Shape::d1(4), 11, 0.2);
    let mut scratch = ConvScratch::new();
    let (want, _) = with_event_density_threshold(-1.0, || {
        conv2d_forward_routed(&g, &x, &w, &b, &mut scratch).unwrap()
    });
    let (got, route) = with_event_density_threshold(1.0, || {
        conv2d_forward_routed(&g, &x, &w, &b, &mut scratch).unwrap()
    });
    assert_eq!(route, ConvRoute::Event);
    assert_eq!(bits(&got), bits(&want));
}

/// Empty spike set (all-zero input): the event route does no scatter
/// work at all yet must reproduce the dense result — which is pure
/// bias — and mark nothing touched.
#[test]
fn empty_spike_set_is_pure_bias() {
    let g = Conv2dGeometry::new(2, 3, 3, 1, 1, 6, 6).unwrap();
    let x = Tensor::zeros(Shape::d4(2, 2, 6, 6));
    let w = lcg_tensor(g.weight_shape(), 3, 0.5);
    let b = Tensor::from_vec(Shape::d1(3), vec![0.25, 0.0, -1.5]).unwrap();
    let mut scratch = ConvScratch::new();
    let (want, _) = with_event_density_threshold(-1.0, || {
        conv2d_forward_routed(&g, &x, &w, &b, &mut scratch).unwrap()
    });
    let (got, route) = with_event_density_threshold(1.0, || {
        conv2d_forward_routed(&g, &x, &w, &b, &mut scratch).unwrap()
    });
    assert_eq!(route, ConvRoute::Event);
    assert_eq!(bits(&got), bits(&want));
    assert_eq!(scratch.touch().count(), 0, "no spikes, nothing touched");
    let plane = g.out_h() * g.out_w();
    for (oc, &bias) in b.as_slice().iter().enumerate() {
        for item in 0..2 {
            let base = (item * 3 + oc) * plane;
            assert!(got.as_slice()[base..base + plane].iter().all(|&v| v == bias));
        }
    }
}
