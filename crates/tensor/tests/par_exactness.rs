//! Bitwise-exactness properties of the parallel / sparsity-aware
//! compute backend.
//!
//! The contract (see `linalg` module docs): for every kernel, the
//! result is **bit-for-bit identical** regardless of
//!
//! * the configured thread count (1–8 here),
//! * whether the sparse spike path or the dense path was taken,
//! * whether scratch buffers are fresh or reused.
//!
//! Each property compares full `f32::to_bits` vectors, not approximate
//! values.

use proptest::prelude::*;

use snn_tensor::conv::{
    conv2d_backward_with, conv2d_forward_with, Conv2dGeometry, ConvScratch,
};
use snn_tensor::pool::{maxpool2d_backward, maxpool2d_forward, Pool2dGeometry};
use snn_tensor::{linalg, par, Shape, Tensor};

const THREAD_COUNTS: [usize; 5] = [1, 2, 3, 5, 8];

fn lcg_tensor(shape: Shape, seed: u64, scale: f32) -> Tensor {
    let mut rng = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
    Tensor::from_fn(shape, |_| {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (((rng >> 33) as f32 / u32::MAX as f32) - 0.5) * 2.0 * scale
    })
}

/// Binary {0, 1} tensor with roughly `density_pct`% ones. `0` and
/// `100` produce exactly all-zero / all-one tensors.
fn spike_tensor(shape: Shape, seed: u64, density_pct: u32) -> Tensor {
    let mut rng = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    Tensor::from_fn(shape, |_| {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        f32::from(((rng >> 33) % 100) < density_pct as u64)
    })
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Naive triple-loop GEMM in the canonical accumulation order
/// (ascending `p` per output element) — the serial reference that
/// every optimized path must reproduce bit-for-bit.
fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let n = b.shape().dim(1);
    let (av, bv) = (a.as_slice(), b.as_slice());
    Tensor::from_fn(Shape::d2(m, n), |idx| {
        let (i, j) = (idx / n, idx % n);
        let mut acc = 0.0f32;
        for p in 0..k {
            acc += av[i * k + p] * bv[p * n + j];
        }
        acc
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `matmul` equals the naive reference bitwise, at every thread
    /// count.
    #[test]
    fn matmul_bitwise_invariant(m in 1usize..20, k in 1usize..24, n in 1usize..20, seed in 0u64..500) {
        let a = lcg_tensor(Shape::d2(m, k), seed, 1.0);
        let b = lcg_tensor(Shape::d2(k, n), seed + 1, 1.0);
        let want = bits(&naive_matmul(&a, &b));
        for t in THREAD_COUNTS {
            let got = par::with_num_threads(t, || linalg::matmul(&a, &b).unwrap());
            prop_assert_eq!(&bits(&got), &want, "threads={}", t);
        }
    }

    /// `matmul_nt` (the dense-layer forward kernel) is bitwise
    /// invariant across thread counts and across the sparse/dense path
    /// switch: binary spike operands at any density — including
    /// all-zero and all-one — give the same bits as the naive
    /// reference.
    #[test]
    fn matmul_nt_sparse_and_threads_invariant(
        m in 1usize..16, k in 1usize..24, n in 1usize..16,
        density_idx in 0usize..5,
        seed in 0u64..500,
    ) {
        let density = [0u32, 10, 50, 90, 100][density_idx];
        let a = spike_tensor(Shape::d2(m, k), seed, density);
        let b = lcg_tensor(Shape::d2(n, k), seed + 3, 1.0);
        let bt = linalg::transpose(&b).unwrap();
        let want = bits(&naive_matmul(&a, &bt));
        for t in THREAD_COUNTS {
            let got = par::with_num_threads(t, || linalg::matmul_nt(&a, &b).unwrap());
            prop_assert_eq!(&bits(&got), &want, "threads={} density={}", t, density);
        }
    }

    /// `matmul_tn` (the dense-layer dW kernel) is bitwise invariant
    /// across thread counts.
    #[test]
    fn matmul_tn_thread_invariant(m in 1usize..16, k in 1usize..24, n in 1usize..16, seed in 0u64..500) {
        let a = lcg_tensor(Shape::d2(k, m), seed, 1.0);
        let b = lcg_tensor(Shape::d2(k, n), seed + 5, 1.0);
        let want = par::with_num_threads(1, || linalg::matmul_tn(&a, &b).unwrap());
        let want = bits(&want);
        for t in &THREAD_COUNTS[1..] {
            let got = par::with_num_threads(*t, || linalg::matmul_tn(&a, &b).unwrap());
            prop_assert_eq!(&bits(&got), &want, "threads={}", t);
        }
    }

    /// Conv forward: binary spike inputs at any density (sparse path)
    /// and real-valued inputs (dense path) give identical bits at
    /// every thread count, with fresh or reused scratch.
    #[test]
    fn conv_forward_bitwise_invariant(
        batch in 1usize..5, cin in 1usize..3, cout in 1usize..4,
        hw in 3usize..7, pad in 0usize..2,
        density_idx in 0usize..6,
        seed in 0u64..500,
    ) {
        let density = [0u32, 10, 50, 90, 100, 255][density_idx];
        let g = Conv2dGeometry::new(cin, cout, 3, 1, pad, hw, hw).unwrap();
        // density 255 = non-binary input, forcing the dense GEMM path.
        let x = if density == 255 {
            lcg_tensor(Shape::d4(batch, cin, hw, hw), seed, 1.0)
        } else {
            spike_tensor(Shape::d4(batch, cin, hw, hw), seed, density)
        };
        let w = lcg_tensor(g.weight_shape(), seed + 13, 0.3);
        let b = lcg_tensor(Shape::d1(cout), seed + 17, 0.1);
        let mut fresh = ConvScratch::new();
        let want = par::with_num_threads(1, || {
            conv2d_forward_with(&g, &x, &w, &b, &mut fresh).unwrap()
        });
        let want = bits(&want);
        let mut reused = ConvScratch::new();
        for t in THREAD_COUNTS {
            let got = par::with_num_threads(t, || {
                conv2d_forward_with(&g, &x, &w, &b, &mut reused).unwrap()
            });
            prop_assert_eq!(&bits(&got), &want, "threads={} density={}", t, density);
        }
    }

    /// Conv backward: all three gradients (input, weight, bias) are
    /// bitwise invariant across thread counts and scratch reuse.
    #[test]
    fn conv_backward_bitwise_invariant(
        batch in 1usize..5, cin in 1usize..3, cout in 1usize..4,
        hw in 3usize..7,
        density_idx in 0usize..4,
        seed in 0u64..500,
    ) {
        let density = [0u32, 50, 100, 255][density_idx];
        let g = Conv2dGeometry::new(cin, cout, 3, 1, 1, hw, hw).unwrap();
        let x = if density == 255 {
            lcg_tensor(Shape::d4(batch, cin, hw, hw), seed, 1.0)
        } else {
            spike_tensor(Shape::d4(batch, cin, hw, hw), seed, density)
        };
        let w = lcg_tensor(g.weight_shape(), seed + 13, 0.3);
        let dy = lcg_tensor(Shape::d4(batch, cout, g.out_h(), g.out_w()), seed + 19, 1.0);
        let mut fresh = ConvScratch::new();
        let want = par::with_num_threads(1, || {
            conv2d_backward_with(&g, &x, &w, &dy, &mut fresh).unwrap()
        });
        let (wi, ww, wb) = (bits(&want.grad_input), bits(&want.grad_weight), bits(&want.grad_bias));
        let mut reused = ConvScratch::new();
        for t in THREAD_COUNTS {
            let got = par::with_num_threads(t, || {
                conv2d_backward_with(&g, &x, &w, &dy, &mut reused).unwrap()
            });
            prop_assert_eq!(&bits(&got.grad_input), &wi, "grad_input threads={}", t);
            prop_assert_eq!(&bits(&got.grad_weight), &ww, "grad_weight threads={}", t);
            prop_assert_eq!(&bits(&got.grad_bias), &wb, "grad_bias threads={}", t);
        }
    }

    /// Max-pool forward (values + argmax) and backward are bitwise
    /// invariant across thread counts.
    #[test]
    fn pool_bitwise_invariant(
        batch in 1usize..5, c in 1usize..4, hw in 4usize..10, seed in 0u64..500,
    ) {
        let g = Pool2dGeometry::new(c, 2, 2, hw, hw).unwrap();
        let x = lcg_tensor(Shape::d4(batch, c, hw, hw), seed, 1.0);
        let fwd_ref = par::with_num_threads(1, || maxpool2d_forward(&g, &x).unwrap());
        let dy = lcg_tensor(fwd_ref.output.shape(), seed + 1, 1.0);
        let bwd_ref = par::with_num_threads(1, || {
            maxpool2d_backward(&g, batch, &fwd_ref.argmax, &dy).unwrap()
        });
        let (wo, wb) = (bits(&fwd_ref.output), bits(&bwd_ref));
        for t in &THREAD_COUNTS[1..] {
            let (fwd, bwd) = par::with_num_threads(*t, || {
                let f = maxpool2d_forward(&g, &x).unwrap();
                let b = maxpool2d_backward(&g, batch, &f.argmax, &dy).unwrap();
                (f, b)
            });
            prop_assert_eq!(&fwd.argmax, &fwd_ref.argmax, "argmax threads={}", t);
            prop_assert_eq!(&bits(&fwd.output), &wo, "pool fwd threads={}", t);
            prop_assert_eq!(&bits(&bwd), &wb, "pool bwd threads={}", t);
        }
    }
}
