//! Property-based tests for the tensor kernels.

use proptest::prelude::*;

use snn_tensor::conv::{conv2d_backward, conv2d_forward, Conv2dGeometry};
use snn_tensor::pool::{maxpool2d_backward, maxpool2d_forward, Pool2dGeometry};
use snn_tensor::{linalg, Shape, Tensor};

fn lcg_tensor(shape: Shape, seed: u64, scale: f32) -> Tensor {
    let mut rng = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
    Tensor::from_fn(shape, |_| {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (((rng >> 33) as f32 / u32::MAX as f32) - 0.5) * 2.0 * scale
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Reshape round-trips preserve data for any compatible target.
    #[test]
    fn reshape_roundtrip(n in 1usize..6, c in 1usize..6, h in 1usize..6, w in 1usize..6) {
        let t = lcg_tensor(Shape::d4(n, c, h, w), (n * c * h * w) as u64, 1.0);
        let flat = t.reshape(Shape::d1(t.len())).unwrap();
        let back = flat.reshape(t.shape()).unwrap();
        prop_assert_eq!(back, t);
    }

    /// Matrix multiplication is associative (within float tolerance):
    /// (A·B)·C == A·(B·C).
    #[test]
    fn matmul_associative(m in 1usize..4, k in 1usize..4, n in 1usize..4, p in 1usize..4, seed in 0u64..500) {
        let a = lcg_tensor(Shape::d2(m, k), seed, 1.0);
        let b = lcg_tensor(Shape::d2(k, n), seed + 1, 1.0);
        let c = lcg_tensor(Shape::d2(n, p), seed + 2, 1.0);
        let left = linalg::matmul(&linalg::matmul(&a, &b).unwrap(), &c).unwrap();
        let right = linalg::matmul(&a, &linalg::matmul(&b, &c).unwrap()).unwrap();
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// The transposed-product kernels agree with explicit transpose.
    #[test]
    fn transposed_products_agree(m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..500) {
        let a = lcg_tensor(Shape::d2(k, m), seed, 1.0);
        let b = lcg_tensor(Shape::d2(k, n), seed + 9, 1.0);
        let want = linalg::matmul(&linalg::transpose(&a).unwrap(), &b).unwrap();
        let got = linalg::matmul_tn(&a, &b).unwrap();
        for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        let a2 = lcg_tensor(Shape::d2(m, k), seed + 17, 1.0);
        let b2 = lcg_tensor(Shape::d2(n, k), seed + 23, 1.0);
        let want2 = linalg::matmul(&a2, &linalg::transpose(&b2).unwrap()).unwrap();
        let got2 = linalg::matmul_nt(&a2, &b2).unwrap();
        for (x, y) in got2.as_slice().iter().zip(want2.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Convolution is linear in its input:
    /// conv(x1 + x2) == conv(x1) + conv(x2) (zero bias).
    #[test]
    fn conv_linear_in_input(
        cin in 1usize..3, cout in 1usize..3, hw in 4usize..8,
        pad in 0usize..2, seed in 0u64..500,
    ) {
        let g = Conv2dGeometry::new(cin, cout, 3, 1, pad, hw, hw).unwrap();
        let x1 = lcg_tensor(Shape::d4(1, cin, hw, hw), seed, 1.0);
        let x2 = lcg_tensor(Shape::d4(1, cin, hw, hw), seed + 7, 1.0);
        let w = lcg_tensor(g.weight_shape(), seed + 13, 0.3);
        let b = Tensor::zeros(Shape::d1(cout));
        let sum = x1.zip(&x2, |a, c| a + c).unwrap();
        let y_sum = conv2d_forward(&g, &sum, &w, &b).unwrap();
        let y1 = conv2d_forward(&g, &x1, &w, &b).unwrap();
        let y2 = conv2d_forward(&g, &x2, &w, &b).unwrap();
        let y_sep = y1.zip(&y2, |a, c| a + c).unwrap();
        for (x, y) in y_sum.as_slice().iter().zip(y_sep.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// The conv backward input-gradient is the adjoint of the
    /// forward: <conv(x), dy> == <x, conv_backward(dy)>.
    #[test]
    fn conv_backward_is_adjoint(
        cin in 1usize..3, cout in 1usize..3, hw in 4usize..7,
        stride in 1usize..3, seed in 0u64..500,
    ) {
        let g = match Conv2dGeometry::new(cin, cout, 3, stride, 1, hw, hw) {
            Ok(g) => g,
            Err(_) => return Ok(()),
        };
        let x = lcg_tensor(Shape::d4(1, cin, hw, hw), seed, 1.0);
        let w = lcg_tensor(g.weight_shape(), seed + 3, 0.3);
        let b = Tensor::zeros(Shape::d1(cout));
        let y = conv2d_forward(&g, &x, &w, &b).unwrap();
        let dy = lcg_tensor(y.shape(), seed + 5, 1.0);
        let grads = conv2d_backward(&g, &x, &w, &dy).unwrap();
        let lhs: f64 = y.as_slice().iter().zip(dy.as_slice()).map(|(&a, &c)| (a * c) as f64).sum();
        let rhs: f64 = x
            .as_slice()
            .iter()
            .zip(grads.grad_input.as_slice())
            .map(|(&a, &c)| (a * c) as f64)
            .sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    /// Max-pooling a binary map yields a binary map and never
    /// increases the spike count.
    #[test]
    fn pool_binary_and_contractive(c in 1usize..3, hw in 4usize..9, seed in 0u64..500) {
        let g = Pool2dGeometry::new(c, 2, 2, hw, hw).unwrap();
        let x = lcg_tensor(Shape::d4(1, c, hw, hw), seed, 1.0).map(|v| f32::from(v > 0.0));
        let f = maxpool2d_forward(&g, &x).unwrap();
        for &v in f.output.as_slice() {
            prop_assert!(v == 0.0 || v == 1.0);
        }
        prop_assert!(f.output.sum() <= x.sum());
    }

    /// Pool backward scatters exactly the upstream gradient mass.
    #[test]
    fn pool_backward_conserves_mass(c in 1usize..3, hw in 4usize..9, seed in 0u64..500) {
        let g = Pool2dGeometry::new(c, 2, 2, hw, hw).unwrap();
        let x = lcg_tensor(Shape::d4(1, c, hw, hw), seed, 1.0);
        let f = maxpool2d_forward(&g, &x).unwrap();
        let dy = lcg_tensor(f.output.shape(), seed + 1, 1.0);
        let dx = maxpool2d_backward(&g, 1, &f.argmax, &dy).unwrap();
        prop_assert!((dx.sum() - dy.sum()).abs() < 1e-3);
    }

    /// Sparsity + density always sums to one.
    #[test]
    fn sparsity_complement(len in 1usize..200, seed in 0u64..500) {
        let t = lcg_tensor(Shape::d1(len), seed, 1.0).map(|v| f32::from(v > 0.2));
        let density = t.count_nonzero() as f64 / t.len() as f64;
        prop_assert!((t.sparsity() + density - 1.0).abs() < 1e-12);
    }
}
