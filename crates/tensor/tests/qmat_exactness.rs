//! Bitwise-exactness properties of the quantized (integer) kernels.
//!
//! Contract (see `qmat` module docs): the quantized convolution's
//! event and dense routes produce **identical** i32 accumulators for
//! every binary input, geometry, and thread count — exactness is
//! unconditional because all sums use wrapping i32 arithmetic, which
//! is associative and commutative even at overflow. The adversarial
//! cases here drive accumulators near and past `i32::MAX` on purpose.

use proptest::prelude::*;

use snn_tensor::conv::Conv2dGeometry;
use snn_tensor::dispatch::{with_event_density_threshold, ConvRoute};
use snn_tensor::par;
use snn_tensor::qmat::{
    qconv2d_forward_routed, qgemm_into, qlinear_into, transpose_i8, QConvScratch,
};

fn lcg(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *seed >> 33
}

fn spikes_u8(len: usize, seed: u64, density_pct: u32) -> Vec<u8> {
    let mut s = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
    (0..len).map(|_| (lcg(&mut s) % 100 < density_pct as u64) as u8).collect()
}

fn weights_i8(len: usize, seed: u64, extreme: bool) -> Vec<i8> {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(11);
    (0..len)
        .map(|_| {
            if extreme {
                // Only ±127: drives every accumulator toward its
                // worst case.
                if lcg(&mut s).is_multiple_of(2) { 127 } else { -127 }
            } else {
                ((lcg(&mut s) % 255) as i32 - 127) as i8
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Quantized conv: event route == dense route == thread-count
    /// invariant, for random geometries and densities 0–100%.
    #[test]
    fn qconv_event_equals_dense_across_threads(
        batch in 1usize..5, cin in 1usize..3, cout in 1usize..5,
        hw in 3usize..8, kernel in 1usize..4, stride in 1usize..3, pad in 0usize..2,
        density_idx in 0usize..5, seed in 0u64..500, extreme in any::<bool>(),
    ) {
        let kernel = kernel.min(hw + 2 * pad);
        let g = Conv2dGeometry::new(cin, cout, kernel, stride, pad, hw, hw).unwrap();
        let density = [0u32, 10, 50, 90, 100][density_idx];
        let item_in = cin * hw * hw;
        let x = spikes_u8(batch * item_in, seed, density);
        let w = weights_i8(cout * g.col_rows(), seed ^ 0xABCD, extreme);
        let wt = transpose_i8(&w, cout, g.col_rows());
        let item_out = cout * g.out_h() * g.out_w();
        let mut outputs = Vec::new();
        for &threads in &[1usize, 4] {
            for &thr in &[-1.0f32, 1.0] {
                let mut acc = vec![7i32; batch * item_out];
                let route = with_event_density_threshold(thr, || {
                    par::with_num_threads(threads, || {
                        qconv2d_forward_routed(
                            &g, &x, batch, &w, &wt, &mut acc, &mut QConvScratch::new(),
                        )
                    })
                });
                let expect = if thr < 0.0 { ConvRoute::Dense } else { ConvRoute::Event };
                prop_assert_eq!(route, expect, "threshold {} must force its route", thr);
                outputs.push(acc);
            }
        }
        for other in &outputs[1..] {
            prop_assert_eq!(&outputs[0], other, "all route/thread combinations must agree");
        }
    }

    /// The event-driven linear kernel equals the j-blocked GEMM on
    /// the transposed problem and is thread-count invariant, for
    /// spike and level-coded (0..=255) activations alike.
    #[test]
    fn qlinear_equals_qgemm_across_threads(
        items in 1usize..7, k in 1usize..40, out in 1usize..20,
        seed in 0u64..500, level_coded in any::<bool>(), extreme in any::<bool>(),
    ) {
        let x: Vec<u8> = if level_coded {
            let mut s = seed;
            (0..items * k).map(|_| (lcg(&mut s) % 256) as u8).collect()
        } else {
            spikes_u8(items * k, seed, 30)
        };
        let w = weights_i8(out * k, seed ^ 0x55AA, extreme);
        let wt = transpose_i8(&w, out, k);
        let mut one = vec![0i32; items * out];
        let mut four = vec![0i32; items * out];
        par::with_num_threads(1, || qlinear_into(&x, &wt, &mut one, items, k, out));
        par::with_num_threads(4, || qlinear_into(&x, &wt, &mut four, items, k, out));
        prop_assert_eq!(&one, &four, "thread counts must agree");
        // Reference: acc[i][o] = (W · X^T)[o][i] via the dense GEMM.
        let mut xt = vec![0u8; k * items];
        for i in 0..items {
            for j in 0..k {
                xt[j * items + i] = x[i * k + j];
            }
        }
        let mut byg = vec![0i32; out * items];
        qgemm_into(&w, &xt, &mut byg, out, k, items);
        for i in 0..items {
            for o in 0..out {
                prop_assert_eq!(one[i * out + o], byg[o * items + i]);
            }
        }
    }

    /// Wrapping accumulation: even when exact sums exceed `i32`
    /// (every weight ±127, every activation 255, k large enough that
    /// `k · 127 · 255 > i32::MAX`), the j-blocked GEMM equals the
    /// naive wrapping reference — overflow wraps identically in any
    /// summation order, it never panics and never saturates silently.
    #[test]
    fn qgemm_wraps_deterministically_near_overflow(
        m in 1usize..4, n in 1usize..6, seed in 0u64..100,
    ) {
        let k = 70_000; // 70_000 * 127 * 255 ≈ 2.27e9 > i32::MAX
        let w = weights_i8(m * k, seed, true);
        let x = vec![255u8; k * n];
        let mut acc = vec![0i32; m * n];
        qgemm_into(&w, &x, &mut acc, m, k, n);
        for i in 0..m {
            let mut want = 0i32;
            for kk in 0..k {
                want = want.wrapping_add((w[i * k + kk] as i32).wrapping_mul(255));
            }
            for j in 0..n {
                prop_assert_eq!(acc[i * n + j], want);
            }
        }
    }
}
