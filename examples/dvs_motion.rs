//! Temporal-task demo: classify the motion direction of a bar from
//! DVS-style ON/OFF event streams — a task where the membrane leak β
//! is load-bearing, because no single frame contains the answer.
//!
//! ```text
//! cargo run --release --example dvs_motion
//! ```

use snn_core::{evaluate_temporal, fit_temporal, LifConfig, SpikingNetwork, Surrogate, TrainConfig};
use snn_data::dvs_motion_dataset;
use snn_tensor::Shape;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size = 10;
    let timesteps = 8;
    let ds = dvs_motion_dataset(320, size, timesteps, 0.02, 11);
    let (train, test) = ds.split(0.8);
    println!(
        "DVS motion task: {} train / {} test sequences, {} timesteps, 2 polarity channels",
        train.len(),
        test.len(),
        timesteps
    );

    // Compare a nearly memoryless neuron against a leaky integrator.
    // Note the outcome: on this task each frame's paired ON/OFF edges
    // already encode the motion direction geometrically, so the
    // memoryless network does fine — a concrete demonstration that
    // the optimal beta is a property of the *dataset*, which is
    // exactly why the paper argues beta must be tuned per task.
    for beta in [0.1f32, 0.9] {
        let lif = LifConfig {
            beta,
            theta: 0.5,
            surrogate: Surrogate::FastSigmoid { k: 0.25 },
            ..LifConfig::paper_default()
        };
        let mut net = SpikingNetwork::builder(Shape::d3(2, size, size), 42)
            .conv(8, 3, 1, 1, lif)?
            .maxpool(2)?
            .flatten()?
            .dense(32, lif)?
            .dense(4, lif)?
            .build()?;
        let cfg = TrainConfig {
            epochs: 8,
            batch_size: 16,
            base_lr: 1e-2,
            ..TrainConfig::default()
        };
        let report = fit_temporal(&cfg, &mut net, &train)?;
        let eval = evaluate_temporal(&mut net, &test, 16);
        println!(
            "beta = {beta}: train acc {:.1}% → test acc {:.1}% (firing {:.1}%)",
            report.final_train_accuracy() * 100.0,
            eval.accuracy * 100.0,
            eval.profile.mean_firing_rate() * 100.0
        );
    }
    println!(
        "\nnote: each DVS frame pairs an ON (leading) and OFF (trailing) edge, so\n\
         direction is partly decodable per frame — the best beta is task-dependent,\n\
         which is precisely the paper's case for tuning it."
    );
    Ok(())
}
