//! Input-coding ablation (the paper's introduction motivates input
//! coding as the primary sparsity driver; this extension measures
//! it): train the same topology under rate, direct, and latency
//! coding and compare accuracy, firing, and hardware efficiency.
//!
//! ```text
//! cargo run --release --example encoding_ablation
//! ```

use snn_accel::AcceleratorConfig;
use snn_core::{evaluate, fit, NetworkSnapshot, SpikingNetwork, Surrogate};
use snn_data::SpikeEncoding;
use snn_dse::ExperimentProfile;
use snn_tensor::derive_seed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut profile = ExperimentProfile::quick();
    let (train, test) = profile.datasets();
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>11}",
        "encoding", "accuracy", "firing", "in-dens", "FPS/W"
    );
    for encoding in [
        SpikeEncoding::Rate { gain: 1.0 },
        SpikeEncoding::Direct,
        SpikeEncoding::Latency { threshold: 0.2 },
    ] {
        profile.encoding = encoding;
        let lif = profile.lif(Surrogate::FastSigmoid { k: 0.25 }, 0.5, 1.0);
        let mut net = SpikingNetwork::paper_topology(
            profile.input_shape(),
            train.classes(),
            lif,
            derive_seed(profile.seed, "weights"),
        )?;
        let cfg = profile.train_config();
        fit(&cfg, &mut net, &train)?;
        let eval =
            evaluate(&mut net, &test, encoding, profile.timesteps, profile.batch_size, 0);
        let snapshot = NetworkSnapshot::from_network(&net);
        let accel = AcceleratorConfig::sparsity_aware().map(&snapshot, &eval.profile)?;
        println!(
            "{:<22} {:>8.1}% {:>8.1}% {:>8.1}% {:>11.0}",
            encoding.name(),
            eval.accuracy * 100.0,
            eval.profile.mean_firing_rate() * 100.0,
            eval.profile.input_density * 100.0,
            accel.fps_per_watt()
        );
    }
    println!();
    println!(
        "direct coding maximizes accuracy (clean gradients) at the cost of a dense\n\
         layer-0 workload; latency coding minimizes input events; rate coding sits\n\
         between — the trade the paper's introduction describes."
    );
    Ok(())
}
