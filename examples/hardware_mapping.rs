//! Hardware-mapping deep dive: take one trained model and explore
//! what the accelerator simulator exposes — device choices, dataflow
//! choices, int8 weight quantization, and how firing rates move the
//! bottleneck.
//!
//! ```text
//! cargo run --release --example hardware_mapping
//! ```

use snn_accel::{quantize_snapshot, AcceleratorConfig, FpgaDevice};
use snn_core::{evaluate, fit, NetworkSnapshot, SpikingNetwork, Surrogate};
use snn_dse::ExperimentProfile;
use snn_tensor::derive_seed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = ExperimentProfile::quick();
    let (train, test) = profile.datasets();
    let lif = profile.lif(Surrogate::FastSigmoid { k: 0.25 }, 0.5, 1.5);
    let mut net = SpikingNetwork::paper_topology(
        profile.input_shape(),
        train.classes(),
        lif,
        derive_seed(profile.seed, "weights"),
    )?;
    let cfg = profile.train_config();
    fit(&cfg, &mut net, &train)?;
    let eval = evaluate(&mut net, &test, cfg.encoding, profile.timesteps, profile.batch_size, 0);
    let snapshot = NetworkSnapshot::from_network(&net);
    println!(
        "model trained to {:.1}% accuracy, firing rate {:.1}%\n",
        eval.accuracy * 100.0,
        eval.profile.mean_firing_rate() * 100.0
    );

    // --- Device comparison: the paper's Kintex-class part vs a small
    //     Artix-class part.
    for device in [FpgaDevice::kintex_ultrascale_plus(), FpgaDevice::artix_class()] {
        let cfg = AcceleratorConfig { device, ..AcceleratorConfig::sparsity_aware() };
        match cfg.map(&snapshot, &eval.profile) {
            Ok(r) => {
                println!(
                    "{:<34} {:>8.1} µs  {:>8.0} FPS  {:>6.3} W  {:>8.0} FPS/W",
                    r.device.name,
                    r.latency_us(),
                    r.fps(),
                    r.power_w(),
                    r.fps_per_watt()
                );
            }
            Err(e) => println!("mapping failed: {e}"),
        }
    }

    // --- Dataflow comparison on the Kintex part.
    println!();
    let aware = AcceleratorConfig::sparsity_aware().map(&snapshot, &eval.profile)?;
    let dense = AcceleratorConfig::dense_baseline().map(&snapshot, &eval.profile)?;
    println!(
        "event-driven dataflow: bottleneck `{}` at {} cycles/step",
        aware.timing.bottleneck().0,
        aware.timing.bottleneck().1
    );
    println!(
        "dense dataflow:        bottleneck `{}` at {} cycles/step",
        dense.timing.bottleneck().0,
        dense.timing.bottleneck().1
    );
    println!(
        "sparsity exploitation is worth {:.2}× efficiency on this model",
        aware.fps_per_watt() / dense.fps_per_watt()
    );

    // --- Quantization: what the int8 weight memory assumption costs.
    println!();
    let qsnapshot = quantize_snapshot(&snapshot);
    let mut qnet = qsnapshot.into_network();
    let qeval =
        evaluate(&mut qnet, &test, cfg.encoding, profile.timesteps, profile.batch_size, 0);
    println!(
        "int8-quantized weights: accuracy {:.1}% (fp32: {:.1}%), Δ {:+.2} pts",
        qeval.accuracy * 100.0,
        eval.accuracy * 100.0,
        (qeval.accuracy - eval.accuracy) * 100.0
    );
    Ok(())
}
