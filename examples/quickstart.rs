//! Quickstart: train a small spiking network with surrogate
//! gradients and evaluate it — the five-minute tour of the core API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use snn_core::{evaluate, fit, LifConfig, SpikingNetwork, Surrogate, TrainConfig};
use snn_data::{bars_dataset, SpikeEncoding};
use snn_tensor::Shape;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A tiny 4-class visual task: oriented bars on an 8×8 canvas.
    let dataset = bars_dataset(240, 8, 7);
    let (train, test) = dataset.split(0.8);
    println!("dataset: {} train / {} test, {} classes", train.len(), test.len(), train.classes());

    // 2. Build a spiking conv net. Every spiking layer uses LIF
    //    neurons (paper Eq. 1-2) with the fast-sigmoid surrogate.
    let lif = LifConfig {
        beta: 0.5,
        theta: 0.5,
        surrogate: Surrogate::FastSigmoid { k: 0.25 },
        ..LifConfig::paper_default()
    };
    let mut net = SpikingNetwork::builder(Shape::d3(1, 8, 8), 42)
        .conv(8, 3, 1, 1, lif)?
        .maxpool(2)?
        .flatten()?
        .dense(4, lif)?
        .build()?;
    println!("network: {} parameters", net.param_count());

    // 3. Train with BPTT: rate-coded inputs, Adam, cosine-annealed
    //    learning rate (the paper's scheduler).
    let cfg = TrainConfig { epochs: 8, timesteps: 6, batch_size: 16, ..TrainConfig::default() };
    let report = fit(&cfg, &mut net, &train)?;
    for e in &report.epochs {
        println!(
            "epoch {:>2}: loss {:.3}  train-acc {:.1}%  lr {:.4}",
            e.epoch,
            e.train_loss,
            e.train_accuracy * 100.0,
            e.lr
        );
    }

    // 4. Evaluate: accuracy plus the per-layer firing statistics the
    //    hardware model consumes.
    let eval = evaluate(&mut net, &test, SpikeEncoding::default(), 6, 16, 0);
    println!("\ntest accuracy: {:.1}%", eval.accuracy * 100.0);
    println!("mean firing rate: {:.1}%", eval.profile.mean_firing_rate() * 100.0);
    for layer in &eval.profile.layers {
        if layer.neurons > 0 {
            println!(
                "  {:<8} {:>5} neurons, firing {:>5.1}%",
                layer.name,
                layer.neurons,
                layer.firing_rate() * 100.0
            );
        }
    }
    Ok(())
}
