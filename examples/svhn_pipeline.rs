//! The paper's end-to-end flow on the synthetic SVHN stand-in:
//! train the `32C3-P2-32C3-MP2-256-10` topology, profile its spike
//! sparsity, and map it onto the sparsity-aware FPGA accelerator
//! model and the dense prior-work baseline.
//!
//! ```text
//! cargo run --release --example svhn_pipeline
//! ```

use snn_accel::AcceleratorConfig;
use snn_core::{evaluate, fit, NetworkSnapshot, SpikingNetwork, Surrogate};
use snn_dse::ExperimentProfile;
use snn_tensor::derive_seed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The `quick` profile keeps this example under a minute on one
    // CPU core; swap in `bench` or `full` for stronger accuracy.
    let profile = ExperimentProfile::quick();
    let (train, test) = profile.datasets();
    println!(
        "synthetic SVHN: {}×{}×{} images, {} train / {} test",
        profile.channels,
        profile.image_size,
        profile.image_size,
        train.len(),
        test.len()
    );

    // Paper-default hyperparameters: fast sigmoid k=0.25, β=0.25, θ=1.0.
    let lif = profile.lif(Surrogate::FastSigmoid { k: 0.25 }, 0.25, 1.0);
    let mut net = SpikingNetwork::paper_topology(
        profile.input_shape(),
        train.classes(),
        lif,
        derive_seed(profile.seed, "weights"),
    )?;
    println!("topology 32C3-P2-32C3-MP2-256-10: {} parameters\n", net.param_count());

    let cfg = profile.train_config();
    let report = fit(&cfg, &mut net, &train)?;
    println!(
        "trained {} epochs in {:.1}s (final train acc {:.1}%)",
        report.epochs.len(),
        report.wall_secs,
        report.final_train_accuracy() * 100.0
    );

    let eval = evaluate(&mut net, &test, cfg.encoding, profile.timesteps, profile.batch_size, 0);
    println!(
        "test accuracy {:.1}%, mean firing rate {:.1}%\n",
        eval.accuracy * 100.0,
        eval.profile.mean_firing_rate() * 100.0
    );

    // Map the trained model onto both hardware variants.
    let snapshot = NetworkSnapshot::from_network(&net);
    let ours = AcceleratorConfig::sparsity_aware().map(&snapshot, &eval.profile)?;
    let prior = AcceleratorConfig::dense_baseline().map(&snapshot, &eval.profile)?;
    println!("{ours}");
    println!("{prior}");
    println!(
        "sparsity-aware vs dense: {:.2}× FPS/W, {:.2}× lower latency",
        ours.fps_per_watt() / prior.fps_per_watt(),
        prior.latency_us() / ours.latency_us()
    );
    Ok(())
}
