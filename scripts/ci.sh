#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, and a
# zero-warning clippy pass over every target (benches and vendored
# stand-ins included).
#
# The workspace is fully hermetic — all external crates are vendored
# under vendor/ — so everything here runs with --offline.
#
# Usage: scripts/ci.sh
# Optional follow-up (not part of the gate; writes BENCH_kernels.json
# at the repo root):
#   cargo run --release --offline -p snn-bench --bin bench_kernels

set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo clippy --all-targets --offline -- -D warnings

echo "ci.sh: all gates passed"
