#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, and a
# zero-warning clippy pass over every target (benches and vendored
# stand-ins included).
#
# The workspace is fully hermetic — all external crates are vendored
# under vendor/ — so everything here runs with --offline.
#
# Usage: scripts/ci.sh
# Optional follow-up (not part of the gate; writes BENCH_kernels.json
# at the repo root):
#   cargo run --release --offline -p snn-bench --bin bench_kernels

set -euo pipefail
cd "$(dirname "$0")/.."

# --workspace: the root manifest is also a package, and a bare
# `cargo build` would compile only it — the smoke test below needs the
# release `snn` binary to be current.
cargo build --workspace --release --offline
# Root-package integration suites (tier-1), plus the fast member-crate
# suites for the serving stack. The remaining member suites (tensor,
# data, accel, dse, bench) are much slower — dse's training sweeps
# alone take ~35 min on one core — and are left to
# `cargo test --workspace` outside the gate.
cargo test -q --offline
cargo test -q --offline -p snn-core -p snn-serve -p snn-pool -p snn-cli
cargo clippy --workspace --all-targets --offline -- -D warnings

# Serve smoke test: boot the model server on an ephemeral port, round
# trip /healthz and /infer, and shut it down cleanly. SNN_LOG and
# SNN_SLO are set so the trace smoke test below also covers the
# structured event log and the SLO burn-rate gauges.
serve_log="$(mktemp)"
events_log="$(mktemp)"
SNN_LOG="info:$events_log" SNN_SLO="p99=25ms,avail=99.9" \
  target/release/snn serve --demo 8 --addr 127.0.0.1:0 --timesteps 2 \
  >"$serve_log" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -f "$serve_log" "$events_log"' EXIT

addr=""
for _ in $(seq 50); do
  addr="$(sed -n 's/^listening on //p' "$serve_log")"
  [ -n "$addr" ] && break
  kill -0 "$serve_pid" 2>/dev/null || { cat "$serve_log"; echo "ci.sh: serve exited early" >&2; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { cat "$serve_log"; echo "ci.sh: serve never reported its address" >&2; exit 1; }

health="$(curl -sf --max-time 5 "http://$addr/healthz")" \
  || { cat "$serve_log"; echo "ci.sh: /healthz request failed" >&2; exit 1; }
case "$health" in
  *'"status":"ok"'*) ;;
  *) echo "ci.sh: unexpected /healthz response: $health" >&2; exit 1 ;;
esac

input="$(seq 64 | sed 's/.*/0.5/' | paste -sd,)"
infer="$(curl -sf --max-time 5 -X POST "http://$addr/infer" \
  -H 'Content-Type: application/json' -d "{\"input\":[$input]}")" \
  || { cat "$serve_log"; echo "ci.sh: /infer request failed" >&2; exit 1; }
case "$infer" in
  *'"class":'*'"layers":'*) ;;
  *) echo "ci.sh: unexpected /infer response: $infer" >&2; exit 1 ;;
esac

# Observability smoke test: scrape both metrics endpoints after real
# traffic and validate them structurally — a malformed Prometheus
# exposition or /metrics.json body fails the gate here, not at scrape
# time in production.
metrics_text="$(mktemp)"
metrics_json="$(mktemp)"
curl -sf --max-time 5 "http://$addr/metrics" >"$metrics_text"
curl -sf --max-time 5 "http://$addr/metrics.json" >"$metrics_json"
target/release/snn obs-check --text "$metrics_text" --json "$metrics_json" \
  || { echo "ci.sh: obs-check rejected the metrics endpoints" >&2; exit 1; }
grep -q '^# TYPE snn_serve_request_latency_seconds histogram$' "$metrics_text" \
  || { echo "ci.sh: /metrics lacks the request latency histogram" >&2; exit 1; }
grep -q '^# TYPE snn_slo_burn_rate_availability_5m gauge$' "$metrics_text" \
  || { echo "ci.sh: /metrics lacks the SLO burn-rate gauges" >&2; exit 1; }
rm -f "$metrics_text" "$metrics_json"
echo "ci.sh: observability smoke test passed"

# Request-tracing smoke test: issue one more /infer, follow its
# x-snn-trace-id response header into /debug/traces, and require the
# recorded timeline to show real time in the queue (the lone request
# lingers the batcher's max_wait) and in the forward pass. The
# /debug/traces listing and the structured event log must both pass
# the obs-check validators.
headers="$(mktemp)"
trace_json="$(mktemp)"
traces_list="$(mktemp)"
curl -sf --max-time 5 -D "$headers" -X POST "http://$addr/infer" \
  -H 'Content-Type: application/json' -d "{\"input\":[$input]}" >/dev/null \
  || { cat "$serve_log"; echo "ci.sh: traced /infer request failed" >&2; exit 1; }
trace_id="$(tr -d '\r' <"$headers" | sed -n 's/^x-snn-trace-id: //p')"
[ -n "$trace_id" ] \
  || { cat "$headers"; echo "ci.sh: /infer answered without x-snn-trace-id" >&2; exit 1; }
curl -sf --max-time 5 "http://$addr/debug/traces/$trace_id" >"$trace_json" \
  || { echo "ci.sh: trace $trace_id not found in /debug/traces" >&2; exit 1; }
for stage in queue_wait forward; do
  us="$(sed -n "s/.*\"stage\":\"$stage\",\"micros\":\([0-9]*\).*/\1/p" "$trace_json")"
  [ -n "$us" ] && [ "$us" -gt 0 ] \
    || { cat "$trace_json"
         echo "ci.sh: trace $trace_id shows no time in stage $stage" >&2; exit 1; }
done
curl -sf --max-time 5 "http://$addr/debug/traces" >"$traces_list"
target/release/snn obs-check --traces "$traces_list" --log "$events_log" \
  || { echo "ci.sh: obs-check rejected the trace listing or event log" >&2; exit 1; }
rm -f "$headers" "$trace_json" "$traces_list"
echo "ci.sh: request-tracing smoke test passed ($trace_id)"

kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
trap - EXIT
rm -f "$serve_log" "$events_log"
echo "ci.sh: serve smoke test passed ($addr)"

# Crash-resume smoke test: SIGKILL a checkpointed training run
# mid-epoch, resume it from the run store, and require the resumed
# snapshot to be byte-identical to an uninterrupted run. This is the
# real-process counterpart of the in-process kill tests in
# tests/checkpoint_resume.rs.
store_dir="$(mktemp -d)"
train_log="$(mktemp)"
trap 'rm -rf "$store_dir"; rm -f "$train_log"' EXIT

target/release/snn train --profile micro --epochs 3 \
  --out "$store_dir/ref.json" >/dev/null

target/release/snn train --profile micro --epochs 3 \
  --store "$store_dir/store" --run-id smoke --checkpoint-every 1 \
  --out "$store_dir/crashed.json" >"$train_log" 2>&1 &
train_pid=$!
for _ in $(seq 600); do
  [ -e "$store_dir/store/runs/smoke/ckpt-000001.json" ] && break
  kill -0 "$train_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$train_pid" 2>/dev/null; then
  kill -9 "$train_pid" 2>/dev/null || true
fi
wait "$train_pid" 2>/dev/null || true
[ -e "$store_dir/store/runs/smoke/ckpt-000001.json" ] \
  || { cat "$train_log"; echo "ci.sh: no checkpoint appeared before the kill" >&2; exit 1; }

target/release/snn train --profile micro --epochs 3 \
  --store "$store_dir/store" --run-id smoke --checkpoint-every 1 --resume \
  --out "$store_dir/resumed.json" >/dev/null
cmp -s "$store_dir/ref.json" "$store_dir/resumed.json" \
  || { echo "ci.sh: resumed snapshot differs from the uninterrupted run" >&2; exit 1; }
# grep reads the full stream (no -q): an early-exit grep would close
# the pipe mid-print and, under pipefail, fail the gate on the
# writer's SIGPIPE panic rather than on the actual check.
target/release/snn runs list --store "$store_dir/store" | grep '^smoke ' >/dev/null \
  || { echo "ci.sh: snn runs list does not show the smoke run" >&2; exit 1; }

rm -rf "$store_dir"
rm -f "$train_log"
trap - EXIT
echo "ci.sh: crash-resume smoke test passed"

# Chaos smoke test: run the fault-injection drill — supervised
# training must absorb an injected checkpoint-write failure
# (checkpoint → rollback → resume) and the model server must recover
# from an injected worker panic (typed 503, no hung requests, healthz
# back to ok) — and require both recoveries to be counted.
chaos_log="$(mktemp)"
trap 'rm -f "$chaos_log"' EXIT
target/release/snn chaos --plan io_err@store:0.05,panic@serve.worker:1 --seed 7 \
  >"$chaos_log" 2>&1 \
  || { cat "$chaos_log"; echo "ci.sh: chaos drill failed" >&2; exit 1; }
recoveries="$(sed -n 's/.*snn_recovery_total=\([0-9]*\).*/\1/p' "$chaos_log")"
[ -n "$recoveries" ] && [ "$recoveries" -gt 0 ] \
  || { cat "$chaos_log"; echo "ci.sh: chaos drill recorded no recoveries" >&2; exit 1; }
grep -q 'healthz=ok' "$chaos_log" \
  || { cat "$chaos_log"; echo "ci.sh: chaos drill did not end healthy" >&2; exit 1; }
grep -q 'rolled back to epoch' "$chaos_log" \
  || { cat "$chaos_log"; echo "ci.sh: chaos drill never exercised a training rollback" >&2; exit 1; }
rm -f "$chaos_log"
trap - EXIT
echo "ci.sh: chaos smoke test passed ($recoveries recoveries)"

# Quantized-inference smoke drill: train the micro model into the
# registry, quantize it to INT8 (requiring accuracy within 2 points of
# the f32 source), then serve the published INT8 artifact and require
# /infer to answer from the int8 engine end to end.
quant_dir="$(mktemp -d)"
quant_log="$(mktemp)"
qserve_pid=""
trap 'kill "$qserve_pid" 2>/dev/null || true; rm -rf "$quant_dir"; rm -f "$quant_log"' EXIT

target/release/snn train --profile micro --epochs 3 \
  --store "$quant_dir/store" --publish micro-f32 >/dev/null

target/release/snn quantize --store "$quant_dir/store" --model-name micro-f32 \
  --profile micro --publish micro-int8 >"$quant_log" 2>&1 \
  || { cat "$quant_log"; echo "ci.sh: snn quantize failed" >&2; exit 1; }
acc_line="$(sed -n 's/^accuracy //p' "$quant_log")"
[ -n "$acc_line" ] \
  || { cat "$quant_log"; echo "ci.sh: quantize printed no accuracy line" >&2; exit 1; }
echo "$acc_line" | awk '{
  f = ""; q = ""
  for (i = 1; i <= NF; i++) {
    if ($i ~ /^f32=/)  f = substr($i, 5)
    if ($i ~ /^int8=/) q = substr($i, 6)
  }
  if (f == "" || q == "") exit 1
  d = f - q; if (d < 0) d = -d
  exit !(d <= 0.02)
}' || { cat "$quant_log"
        echo "ci.sh: int8 accuracy strayed more than 2 points from f32 ($acc_line)" >&2
        exit 1; }

: >"$quant_log"
target/release/snn serve --store "$quant_dir/store" --model-name micro-int8 \
  --addr 127.0.0.1:0 --timesteps 2 >"$quant_log" 2>&1 &
qserve_pid=$!
addr=""
for _ in $(seq 50); do
  addr="$(sed -n 's/^listening on //p' "$quant_log")"
  [ -n "$addr" ] && break
  kill -0 "$qserve_pid" 2>/dev/null \
    || { cat "$quant_log"; echo "ci.sh: int8 serve exited early" >&2; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] \
  || { cat "$quant_log"; echo "ci.sh: int8 serve never reported its address" >&2; exit 1; }
grep -q 'serving .*\[int8\]' "$quant_log" \
  || { cat "$quant_log"; echo "ci.sh: serve did not report the int8 dtype" >&2; exit 1; }

input="$(seq 64 | sed 's/.*/0.5/' | paste -sd,)"
infer="$(curl -sf --max-time 5 -X POST "http://$addr/infer" \
  -H 'Content-Type: application/json' -d "{\"input\":[$input]}")" \
  || { cat "$quant_log"; echo "ci.sh: /infer against the int8 artifact failed" >&2; exit 1; }
case "$infer" in
  *'"engine":"int8"'*) ;;
  *) echo "ci.sh: /infer did not run on the int8 engine: $infer" >&2; exit 1 ;;
esac

kill "$qserve_pid"
wait "$qserve_pid" 2>/dev/null || true
qserve_pid=""
rm -rf "$quant_dir"
rm -f "$quant_log"
trap - EXIT
echo "ci.sh: quantized-inference smoke drill passed ($acc_line)"

# Event-datapath bench smoke test: run the kernel benchmark on smoke
# shapes, validate the report structurally (schema version, provenance,
# density-sweep layout), and gate on the event-driven conv2d kernel
# beating the dense route by at least 1.5x at 90% input sparsity
# (serial) and the INT8 GEMM beating the f32 dense GEMM by at least
# 1.2x. The full-size canonical runs show >3x and ~1.5x respectively;
# the smoke gates are the regression alarm, not the headline.
bench_json="$(mktemp)"
trap 'rm -f "$bench_json"' EXIT
target/release/bench_kernels --smoke --out "$bench_json" >/dev/null \
  || { echo "ci.sh: bench_kernels --smoke failed" >&2; exit 1; }
target/release/snn obs-check --bench "$bench_json" \
  --min-conv-event-speedup 1.5 --min-int8-speedup 1.2 \
  || { echo "ci.sh: obs-check rejected the kernel bench report" >&2; exit 1; }
rm -f "$bench_json"
trap - EXIT
echo "ci.sh: event-datapath bench smoke test passed"

# Scale-out serving smoke gate: boot the pooled front end (2 engine
# replicas behind the single-threaded epoll loop), require /healthz to
# report both replica breakers, drive a short open-loop burst at a rate
# far below capacity — zero 5xx and zero transport errors allowed, with
# an intentional bad-request fraction that must land as 400s, not
# errors — then run a capacity mini-sweep whose schema-v7 report
# obs-check must validate.
pool_log="$(mktemp)"
loadgen_json="$(mktemp)"
pool_pid=""
trap 'kill "$pool_pid" 2>/dev/null || true; rm -f "$pool_log" "$loadgen_json"' EXIT
target/release/snn serve --demo 8 --addr 127.0.0.1:0 --timesteps 2 --replicas 2 \
  >"$pool_log" 2>&1 &
pool_pid=$!
addr=""
for _ in $(seq 50); do
  addr="$(sed -n 's/^listening on //p' "$pool_log")"
  [ -n "$addr" ] && break
  kill -0 "$pool_pid" 2>/dev/null \
    || { cat "$pool_log"; echo "ci.sh: pooled serve exited early" >&2; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] \
  || { cat "$pool_log"; echo "ci.sh: pooled serve never reported its address" >&2; exit 1; }
grep -q '^pool: 2 replicas' "$pool_log" \
  || { cat "$pool_log"; echo "ci.sh: serve --replicas 2 did not start the pool front end" >&2; exit 1; }

health="$(curl -sf --max-time 5 "http://$addr/healthz")" \
  || { cat "$pool_log"; echo "ci.sh: pooled /healthz request failed" >&2; exit 1; }
case "$health" in
  *'"status":"ok"'*'"replica":0'*'"replica":1'*) ;;
  *) echo "ci.sh: pooled /healthz lacks per-replica breakers: $health" >&2; exit 1 ;;
esac

burst="$(target/release/snn loadgen --addr "$addr" --rps 40 --duration-ms 1500 \
  --warmup-ms 300 --connections 2 --bad-fraction 0.1)" \
  || { cat "$pool_log"; echo "ci.sh: loadgen burst failed" >&2; exit 1; }
echo "$burst" | grep -q ' 5xx=0 ' \
  || { echo "$burst"; echo "ci.sh: loadgen saw 5xx at sub-capacity load" >&2; exit 1; }
echo "$burst" | grep -q ' transport=0 ' \
  || { echo "$burst"; echo "ci.sh: loadgen saw transport errors at sub-capacity load" >&2; exit 1; }
echo "$burst" | grep -q ' 400s=0 ' \
  && { echo "$burst"; echo "ci.sh: the bad-request mix produced no 400s" >&2; exit 1; }

target/release/snn loadgen --addr "$addr" --sweep 30,60 --duration-ms 800 \
  --warmup-ms 200 --connections 2 --out "$loadgen_json" >/dev/null \
  || { cat "$pool_log"; echo "ci.sh: loadgen capacity sweep failed" >&2; exit 1; }
target/release/snn obs-check --bench "$loadgen_json" \
  || { echo "ci.sh: obs-check rejected the loadgen capacity report" >&2; exit 1; }

pool_metrics="$(curl -sf --max-time 5 "http://$addr/metrics")" \
  || { cat "$pool_log"; echo "ci.sh: pooled /metrics request failed" >&2; exit 1; }
for series in 'snn_pool_replica_queue_depth{replica="0"}' \
              'snn_pool_replica_queue_depth{replica="1"}' \
              'snn_pool_router_p2c_total'; do
  case "$pool_metrics" in
    *"$series"*) ;;
    *) echo "ci.sh: pooled /metrics lacks $series" >&2; exit 1 ;;
  esac
done

kill "$pool_pid"
wait "$pool_pid" 2>/dev/null || true
pool_pid=""
rm -f "$pool_log" "$loadgen_json"
trap - EXIT
echo "ci.sh: scale-out serving smoke gate passed ($addr)"

# Self-healing chaos gate: boot the pool with a hair-trigger breaker
# (one trip quarantines) and an injected worker panic on the third
# replica batch, then drive a sub-capacity burst through it. The
# supervisor must quarantine the poisoned replica, rebuild it from the
# registry, probe it, and re-admit it — all while the burst sees zero
# transport errors and at most a handful of 5xx (the client retry
# budget absorbs the panicked batch). obs-check must find the
# admission and quarantine series in both expositions, and a SIGTERM
# must drain the front end to a clean exit 0.
heal_log="$(mktemp)"
heal_text="$(mktemp)"
heal_json="$(mktemp)"
heal_pid=""
trap 'kill "$heal_pid" 2>/dev/null || true; rm -f "$heal_log" "$heal_text" "$heal_json"' EXIT
SNN_FAULTS="panic@pool.replica:3" \
  target/release/snn serve --demo 8 --addr 127.0.0.1:0 --timesteps 2 --replicas 2 \
  --breaker-threshold 1 --quarantine-trips 1 --drain-ms 3000 >"$heal_log" 2>&1 &
heal_pid=$!
addr=""
for _ in $(seq 50); do
  addr="$(sed -n 's/^listening on //p' "$heal_log")"
  [ -n "$addr" ] && break
  kill -0 "$heal_pid" 2>/dev/null \
    || { cat "$heal_log"; echo "ci.sh: chaos pool exited early" >&2; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] \
  || { cat "$heal_log"; echo "ci.sh: chaos pool never reported its address" >&2; exit 1; }

burst="$(target/release/snn loadgen --addr "$addr" --rps 60 --duration-ms 2000 \
  --warmup-ms 200 --connections 2)" \
  || { cat "$heal_log"; echo "ci.sh: chaos burst failed" >&2; exit 1; }
echo "$burst" | grep -q ' transport=0 ' \
  || { echo "$burst"; echo "ci.sh: chaos burst saw transport errors" >&2; exit 1; }
fives="$(echo "$burst" | sed -n 's/.* 5xx=\([0-9][0-9]*\) .*/\1/p')"
[ -n "$fives" ] && [ "$fives" -le 5 ] \
  || { echo "$burst"; echo "ci.sh: chaos burst saw unbounded 5xx ($fives)" >&2; exit 1; }

# Readmission takes a probe cycle after the breaker cooldown, so poll.
quarantined=""
readmitted=""
for _ in $(seq 100); do
  metrics="$(curl -sf --max-time 5 "http://$addr/metrics")" || metrics=""
  quarantined="$(printf '%s\n' "$metrics" | sed -n 's/^snn_pool_quarantine_total \([0-9][0-9]*\).*/\1/p')"
  readmitted="$(printf '%s\n' "$metrics" | sed -n 's/^snn_pool_quarantine_readmitted_total \([0-9][0-9]*\).*/\1/p')"
  [ -n "$readmitted" ] && [ "$readmitted" -ge 1 ] && break
  sleep 0.1
done
[ -n "$quarantined" ] && [ "$quarantined" -ge 1 ] \
  || { cat "$heal_log"; echo "ci.sh: the poisoned replica was never quarantined" >&2; exit 1; }
[ -n "$readmitted" ] && [ "$readmitted" -ge 1 ] \
  || { cat "$heal_log"; echo "ci.sh: the quarantined replica was never re-admitted" >&2; exit 1; }

curl -sf --max-time 5 "http://$addr/metrics" >"$heal_text"
curl -sf --max-time 5 "http://$addr/metrics.json" >"$heal_json"
target/release/snn obs-check --text "$heal_text" --json "$heal_json" \
  --require snn_serve_admit,snn_pool_quarantine \
  || { echo "ci.sh: obs-check missed the admission/quarantine series" >&2; exit 1; }

kill -TERM "$heal_pid"
drain_rc=0
wait "$heal_pid" || drain_rc=$?
heal_pid=""
[ "$drain_rc" -eq 0 ] \
  || { cat "$heal_log"; echo "ci.sh: SIGTERM drain exited with status $drain_rc" >&2; exit 1; }

rm -f "$heal_log" "$heal_text" "$heal_json"
trap - EXIT
echo "ci.sh: self-healing chaos gate passed (quarantined=$quarantined readmitted=$readmitted 5xx=$fives)"

# Brownout degradation gate: serve the micro f32 model with a
# published INT8 brownout artifact and a 1s hold, seed an SLO
# availability fast burn with expired-deadline requests (504s), and
# require the serving engine to flip to int8 — with /healthz staying
# 200 but reporting degraded_mode=brownout — then flip back to f32
# once successes dilute the burn and the hold elapses.
bo_dir="$(mktemp -d)"
bo_log="$(mktemp)"
bo_pid=""
trap 'kill "$bo_pid" 2>/dev/null || true; rm -rf "$bo_dir"; rm -f "$bo_log"' EXIT
target/release/snn train --profile micro --epochs 3 --out "$bo_dir/f32.json" >/dev/null
target/release/snn quantize --model "$bo_dir/f32.json" --profile micro \
  --out "$bo_dir/int8.json" >/dev/null \
  || { echo "ci.sh: quantize for the brownout artifact failed" >&2; exit 1; }
SNN_SLO="avail=99" SNN_BROWNOUT_HOLD_MS=1000 \
  target/release/snn serve --model "$bo_dir/f32.json" --brownout-model "$bo_dir/int8.json" \
  --addr 127.0.0.1:0 --timesteps 2 >"$bo_log" 2>&1 &
bo_pid=$!
addr=""
for _ in $(seq 50); do
  addr="$(sed -n 's/^listening on //p' "$bo_log")"
  [ -n "$addr" ] && break
  kill -0 "$bo_pid" 2>/dev/null \
    || { cat "$bo_log"; echo "ci.sh: brownout serve exited early" >&2; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] \
  || { cat "$bo_log"; echo "ci.sh: brownout serve never reported its address" >&2; exit 1; }
grep -q '^brownout artifact:' "$bo_log" \
  || { cat "$bo_log"; echo "ci.sh: serve did not report the brownout artifact" >&2; exit 1; }

input="$(seq 64 | sed 's/.*/0.5/' | paste -sd,)"
infer="$(curl -sf --max-time 5 -X POST "http://$addr/infer" \
  -H 'Content-Type: application/json' -d "{\"input\":[$input]}")" \
  || { cat "$bo_log"; echo "ci.sh: healthy /infer failed" >&2; exit 1; }
case "$infer" in
  *'"engine":"f32"'*) ;;
  *) echo "ci.sh: healthy serving not on the f32 engine: $infer" >&2; exit 1 ;;
esac

# Seed the fast burn: expired deadlines land as 504s against avail=99.
for _ in $(seq 15); do
  curl -s --max-time 5 -X POST "http://$addr/infer" \
    -H 'Content-Type: application/json' \
    -d "{\"input\":[$input],\"timeout_ms\":0}" >/dev/null || true
done
engine=""
for _ in $(seq 50); do
  infer="$(curl -sf --max-time 5 -X POST "http://$addr/infer" \
    -H 'Content-Type: application/json' -d "{\"input\":[$input]}")" || infer=""
  case "$infer" in
    *'"engine":"int8"'*) engine=int8; break ;;
  esac
  sleep 0.1
done
[ "$engine" = int8 ] \
  || { cat "$bo_log"; echo "ci.sh: fast burn never flipped serving to int8" >&2; exit 1; }
health="$(curl -sf --max-time 5 "http://$addr/healthz")" \
  || { cat "$bo_log"; echo "ci.sh: /healthz failed during brownout" >&2; exit 1; }
case "$health" in
  *'"degraded_mode":"brownout"'*) ;;
  *) echo "ci.sh: /healthz does not report brownout: $health" >&2; exit 1 ;;
esac

# Dilute the burn with successes, then wait out the 1s hold.
for _ in $(seq 200); do
  curl -sf --max-time 5 -X POST "http://$addr/infer" \
    -H 'Content-Type: application/json' -d "{\"input\":[$input]}" >/dev/null || true
done
engine=""
for _ in $(seq 100); do
  infer="$(curl -sf --max-time 5 -X POST "http://$addr/infer" \
    -H 'Content-Type: application/json' -d "{\"input\":[$input]}")" || infer=""
  case "$infer" in
    *'"engine":"f32"'*) engine=f32; break ;;
  esac
  sleep 0.1
done
[ "$engine" = f32 ] \
  || { cat "$bo_log"; echo "ci.sh: serving never recovered to f32 after the burn cleared" >&2; exit 1; }

kill "$bo_pid" 2>/dev/null || true
wait "$bo_pid" 2>/dev/null || true
bo_pid=""
rm -rf "$bo_dir"
rm -f "$bo_log"
trap - EXIT
echo "ci.sh: brownout degradation gate passed ($addr)"

echo "ci.sh: all gates passed"
