//! Workspace root crate: re-exports the member crates for use by
//! the integration tests and examples in this repository.

pub use snn_accel as accel;
pub use snn_core as core;
pub use snn_data as data;
pub use snn_dse as dse;
pub use snn_tensor as tensor;
