//! Cross-crate durability integration: a training run interrupted
//! mid-flight and resumed from its `snn-store` checkpoint must end
//! bitwise-identical to one that was never interrupted, and the
//! artifact registry must round-trip published snapshots by version.

use std::path::PathBuf;

use snn_core::{NetworkSnapshot, SpikingNetwork, Surrogate, TrainCheckpoint, Trainer};
use snn_dse::ExperimentProfile;
use snn_store::{RunStore, VersionSpec};
use snn_tensor::derive_seed;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("snn_repro_checkpoint_tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Serialized snapshot text: string equality is bitwise weight
/// equality (the vendored serializer emits shortest-roundtrip floats).
fn weights_json(net: &SpikingNetwork) -> String {
    serde_json::to_string(&NetworkSnapshot::from_network(net)).expect("snapshot serializes")
}

#[test]
fn crash_and_resume_matches_uninterrupted() {
    let mut p = ExperimentProfile::micro();
    p.epochs = 3;
    let (train, _) = p.datasets();
    let lif = p.lif(Surrogate::FastSigmoid { k: 0.25 }, 0.5, 1.0);
    let cfg = p.train_config();
    let net_with_seed = |seed: u64| {
        SpikingNetwork::paper_topology(
            p.input_shape(),
            train.classes(),
            lif,
            derive_seed(seed, "weights"),
        )
        .expect("topology builds")
    };

    // Uninterrupted baseline.
    let mut baseline = net_with_seed(p.seed);
    let base_report = Trainer::new(cfg).fit(&mut baseline, &train).expect("baseline trains");

    // Interrupted run: checkpoint every epoch, die right after the
    // first checkpoint lands.
    let root = scratch("crash_resume");
    let store = RunStore::open(&root);
    let mut crashed = net_with_seed(p.seed);
    let err = Trainer::new(cfg)
        .checkpoint_every(1)
        .fit_with(&mut crashed, &train, |ckpt| {
            ckpt.save(&store, "r1").map_err(|e| e.to_string())?;
            if ckpt.next_epoch == 1 {
                Err("simulated crash".into())
            } else {
                Ok(())
            }
        })
        .expect_err("simulated crash aborts the run");
    assert!(err.contains("simulated crash"), "unexpected error: {err}");

    // Resume into a *differently* seeded network — the checkpoint
    // must fully overwrite it.
    let ckpt = TrainCheckpoint::load_latest(&store, "r1")
        .expect("checkpoint loads")
        .expect("checkpoint exists");
    assert_eq!(ckpt.next_epoch, 1);
    let mut resumed = net_with_seed(p.seed ^ 0xdead_beef);
    let resumed_report = Trainer::new(cfg)
        .checkpoint_every(1)
        .resume_from(ckpt)
        .fit_with(&mut resumed, &train, |ckpt| {
            ckpt.save(&store, "r1").map(|_| ()).map_err(|e| e.to_string())
        })
        .expect("resume trains");

    assert_eq!(
        weights_json(&baseline),
        weights_json(&resumed),
        "resumed weights must be bitwise identical to the uninterrupted run"
    );
    assert_eq!(base_report.epochs.len(), resumed_report.epochs.len());
    for (a, b) in base_report.epochs.iter().zip(&resumed_report.epochs) {
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits());
        assert_eq!(a.train_accuracy.to_bits(), b.train_accuracy.to_bits());
        assert_eq!(a.lr.to_bits(), b.lr.to_bits());
    }

    // The store shows the run with per-epoch checkpoints and a
    // complete final checkpoint.
    let runs = store.list_runs().expect("store lists");
    assert_eq!(runs.len(), 1);
    assert_eq!(runs[0].run_id, "r1");
    assert_eq!(runs[0].checkpoints, vec![1, 2, 3]);
    let last = TrainCheckpoint::load_latest(&store, "r1")
        .expect("latest loads")
        .expect("latest exists");
    assert!(last.is_complete());

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn registry_roundtrips_published_snapshots() {
    let p = ExperimentProfile::micro();
    let (train, _) = p.datasets();
    let lif = p.lif(Surrogate::FastSigmoid { k: 0.25 }, 0.5, 1.0);
    let make = |seed: u64| {
        let net = SpikingNetwork::paper_topology(
            p.input_shape(),
            train.classes(),
            lif,
            derive_seed(seed, "weights"),
        )
        .expect("topology builds");
        NetworkSnapshot::from_network(&net)
    };

    let root = scratch("registry_roundtrip");
    let registry = RunStore::open(&root).registry();
    let v1 = make(1);
    let v2 = make(2);
    let e1 = registry
        .publish("svhn-cnn", &v1, vec![("seed".into(), "1".into())])
        .expect("publish v1");
    let e2 = registry
        .publish("svhn-cnn", &v2, vec![("seed".into(), "2".into())])
        .expect("publish v2");
    assert_eq!((e1.version, e2.version), (1, 2));
    assert_ne!(e1.hash, e2.hash, "different weights must hash differently");

    // `latest` resolves to v2 and the payload parses back bit-equal.
    let (entry, payload) =
        registry.load("svhn-cnn", VersionSpec::Latest).expect("load latest");
    assert_eq!(entry.version, 2);
    let back: NetworkSnapshot = serde_json::from_str(&payload).expect("payload parses");
    assert_eq!(back, v2);

    // Deleting v1 orphans its blob; gc removes exactly that blob and
    // v2 stays loadable.
    registry.delete("svhn-cnn", VersionSpec::Exact(1)).expect("delete v1");
    let removed = registry.gc().expect("gc runs");
    assert_eq!(removed, vec![e1.hash]);
    let (entry, _) = registry.load("svhn-cnn", VersionSpec::Latest).expect("v2 survives gc");
    assert_eq!(entry.version, 2);

    let _ = std::fs::remove_dir_all(&root);
}
