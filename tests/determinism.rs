//! Reproducibility guarantees: every stochastic component is seeded,
//! so identical inputs give bit-identical results across the whole
//! stack.

use snn_accel::AcceleratorConfig;
use snn_core::{evaluate, fit, NetworkSnapshot, SpikingNetwork, Surrogate};
use snn_dse::{run_point, ExperimentProfile};
use snn_tensor::derive_seed;

#[test]
fn full_point_bit_identical() {
    let mut p = ExperimentProfile::micro();
    p.epochs = 2;
    let (train, test) = p.datasets();
    let lif = p.lif(Surrogate::FastSigmoid { k: 0.25 }, 0.5, 1.0);
    let a = run_point(&p, lif, &train, &test).expect("point runs");
    let b = run_point(&p, lif, &train, &test).expect("point runs");
    assert_eq!(a.test_accuracy, b.test_accuracy);
    assert_eq!(a.train_accuracy, b.train_accuracy);
    assert_eq!(a.firing_rate, b.firing_rate);
    assert_eq!(a.accel.timing.step_cycles, b.accel.timing.step_cycles);
    assert_eq!(a.snapshot, b.snapshot);
}

#[test]
fn different_seed_changes_results() {
    let p1 = ExperimentProfile::micro();
    let mut p2 = p1;
    p2.seed = 43;
    let (train1, test1) = p1.datasets();
    let (train2, test2) = p2.datasets();
    // Data differs.
    assert_ne!(train1.item(0).0, train2.item(0).0);
    let lif = p1.lif(Surrogate::FastSigmoid { k: 0.25 }, 0.5, 1.0);
    let a = run_point(&p1, lif, &train1, &test1).expect("point runs");
    let b = run_point(&p2, lif, &train2, &test2).expect("point runs");
    // Weight seeds differ → snapshots differ.
    assert_ne!(a.snapshot, b.snapshot);
}

#[test]
fn mapping_is_pure() {
    // The accelerator simulator is a pure function of its inputs.
    let p = ExperimentProfile::micro();
    let (train, test) = p.datasets();
    let lif = p.lif(Surrogate::FastSigmoid { k: 0.25 }, 0.5, 1.0);
    let mut net = SpikingNetwork::paper_topology(
        p.input_shape(),
        train.classes(),
        lif,
        derive_seed(p.seed, "weights"),
    )
    .expect("topology builds");
    let cfg = p.train_config();
    fit(&cfg, &mut net, &train).expect("training succeeds");
    let eval = evaluate(&mut net, &test, cfg.encoding, p.timesteps, p.batch_size, 0);
    let snapshot = NetworkSnapshot::from_network(&net);
    let acfg = AcceleratorConfig::sparsity_aware();
    let r1 = acfg.map(&snapshot, &eval.profile).expect("maps");
    let r2 = acfg.map(&snapshot, &eval.profile).expect("maps");
    assert_eq!(r1, r2);
}

#[test]
fn seed_derivation_is_stable_across_runs() {
    // These constants are load-bearing: changing `derive_seed` would
    // silently invalidate every recorded experiment.
    assert_eq!(derive_seed(42, "train"), derive_seed(42, "train"));
    assert_ne!(derive_seed(42, "train"), derive_seed(42, "test"));
    assert_ne!(derive_seed(42, "train"), derive_seed(43, "train"));
}
