//! Cross-crate integration: the full train → evaluate → profile →
//! map pipeline on the synthetic SVHN task.

use snn_accel::AcceleratorConfig;
use snn_core::{evaluate, fit, NetworkSnapshot, SpikingNetwork, Surrogate};
use snn_dse::ExperimentProfile;
use snn_tensor::derive_seed;

/// Shared fixture: a trained quick-profile model with its eval
/// report. Training once keeps the integration suite fast.
fn trained() -> (SpikingNetwork, snn_core::EvalReport, ExperimentProfile) {
    let profile = ExperimentProfile::quick();
    let (train, test) = profile.datasets();
    let lif = profile.lif(Surrogate::FastSigmoid { k: 0.25 }, 0.25, 1.0);
    let mut net = SpikingNetwork::paper_topology(
        profile.input_shape(),
        train.classes(),
        lif,
        derive_seed(profile.seed, "weights"),
    )
    .expect("paper topology builds on quick profile");
    let cfg = profile.train_config();
    fit(&cfg, &mut net, &train).expect("training succeeds");
    let eval = evaluate(&mut net, &test, cfg.encoding, profile.timesteps, profile.batch_size, 0);
    (net, eval, profile)
}

#[test]
fn pipeline_learns_above_chance_and_maps() {
    let (net, eval, _) = trained();
    // 10 balanced classes → chance 10%. The quick profile must beat
    // it clearly for sweep results to mean anything.
    assert!(
        eval.accuracy > 0.25,
        "quick-profile accuracy {:.3} not above chance",
        eval.accuracy
    );
    assert!(eval.profile.mean_firing_rate() > 0.0);
    assert!(eval.profile.mean_firing_rate() < 0.9);

    let snapshot = NetworkSnapshot::from_network(&net);
    let aware = AcceleratorConfig::sparsity_aware()
        .map(&snapshot, &eval.profile)
        .expect("model fits the Kintex-class device");
    let dense = AcceleratorConfig::dense_baseline()
        .map(&snapshot, &eval.profile)
        .expect("model fits the Kintex-class device");

    // The central hardware premise: event-driven execution of a
    // sparse model is faster and more efficient than dense execution.
    assert!(aware.latency_us() < dense.latency_us());
    assert!(aware.fps_per_watt() > dense.fps_per_watt());
    // Both mappings respect device budgets.
    for r in [&aware, &dense] {
        assert!(r.allocation.dsp_utilization(&r.device) <= 1.0);
        assert!(r.allocation.lut_utilization(&r.device) <= 1.0);
        assert!(r.allocation.mem_utilization(&r.device) <= 1.0);
    }
}

#[test]
fn snapshot_roundtrip_preserves_eval() {
    let (net, eval, profile) = trained();
    let snapshot = NetworkSnapshot::from_network(&net);
    let json = serde_json::to_string(&snapshot).expect("snapshot serializes");
    let restored: NetworkSnapshot = serde_json::from_str(&json).expect("snapshot parses");
    let mut net2 = restored.into_network();
    let (_, test) = profile.datasets();
    let eval2 = evaluate(
        &mut net2,
        &test,
        profile.encoding,
        profile.timesteps,
        profile.batch_size,
        0,
    );
    assert_eq!(eval.accuracy, eval2.accuracy);
    assert_eq!(eval.profile, eval2.profile);
}

#[test]
fn sparsity_profile_feeds_workload_consistently() {
    let (net, eval, _) = trained();
    let snapshot = NetworkSnapshot::from_network(&net);
    let report = AcceleratorConfig::sparsity_aware()
        .map(&snapshot, &eval.profile)
        .expect("mapping succeeds");
    // Stage firing in the workload equals the measured profile.
    for stage in &report.workload.stages {
        let measured = eval
            .profile
            .layer(&stage.name)
            .expect("profile covers stage")
            .firing_rate();
        // out_events before pooling equals rate × neurons; after
        // fused pooling it is the pooled stream, which is ≤ neurons.
        assert!(stage.out_events >= 0.0);
        assert!((0.0..=1.0).contains(&measured));
    }
    // Event work never exceeds dense work by more than the conv
    // padding slack.
    for stage in &report.workload.stages {
        assert!(
            stage.event_macs() <= stage.dense_macs as f64 * 1.2 + 1.0,
            "stage {} does more event work than dense work",
            stage.name
        );
    }
}
