//! Cross-crate validation of the hardware models: the event-driven
//! cycle simulator against the analytical timing model, and the
//! fixed-point datapath against the float reference.

use snn_accel::{
    evaluate_fixed, simulate_trace, AcceleratorConfig, FixedNetwork, FixedSpec,
};
use snn_core::{evaluate, fit, trace_spikes, NetworkSnapshot, SpikingNetwork, Surrogate};
use snn_dse::ExperimentProfile;
use snn_tensor::derive_seed;

struct Fixture {
    net: SpikingNetwork,
    snapshot: NetworkSnapshot,
    profile: ExperimentProfile,
}

fn trained_fixture() -> Fixture {
    let profile = ExperimentProfile::quick();
    let (train, _) = profile.datasets();
    let lif = profile.lif(Surrogate::FastSigmoid { k: 0.25 }, 0.5, 1.0);
    let mut net = SpikingNetwork::paper_topology(
        profile.input_shape(),
        train.classes(),
        lif,
        derive_seed(profile.seed, "weights"),
    )
    .expect("topology builds");
    fit(&profile.train_config(), &mut net, &train).expect("training succeeds");
    let snapshot = NetworkSnapshot::from_network(&net);
    Fixture { net, snapshot, profile }
}

#[test]
fn cycle_sim_agrees_with_analytic_within_burstiness() {
    let Fixture { mut net, snapshot, profile } = trained_fixture();
    let (_, test) = profile.datasets();
    let eval = evaluate(
        &mut net,
        &test,
        profile.encoding,
        profile.timesteps,
        profile.batch_size,
        0,
    );
    let report = AcceleratorConfig::sparsity_aware()
        .map(&snapshot, &eval.profile)
        .expect("fits device");
    let trace = trace_spikes(
        &mut net,
        &test,
        profile.encoding,
        profile.timesteps,
        profile.batch_size,
        0,
    );
    let sim = simulate_trace(
        &report.workload,
        &report.allocation,
        &trace,
        report.timing.sync_overhead_cycles,
        report.timing.latency_cycles(),
    )
    .expect("trace matches workload");
    // The analytical model prices mean traffic; the sim replays the
    // actual trace. They must agree within the burstiness envelope:
    // bounded error, and never wildly divergent.
    let err = sim.analytic_error();
    assert!(
        err > -0.5 && err < 2.0,
        "analytic model error {err} outside the plausible envelope"
    );
    // The simulated schedule accounts every stage's cycles.
    for s in &sim.stages {
        assert!(s.utilization() <= 1.0);
    }
    assert_eq!(sim.step_periods.len(), profile.timesteps + sim.stages.len() - 1);
}

#[test]
fn fixed_point_tracks_float_on_trained_model() {
    let Fixture { mut net, snapshot, profile } = trained_fixture();
    let (_, test) = profile.datasets();
    let fixed = FixedNetwork::from_snapshot(&snapshot, FixedSpec::default())
        .expect("lowering succeeds");
    let subset = test.take(60);
    let r = evaluate_fixed(&fixed, &mut net, &subset, profile.encoding, profile.timesteps, 0);
    let float_eval =
        evaluate(&mut net, &subset, profile.encoding, profile.timesteps, profile.batch_size, 0);
    // The integer datapath must be a faithful deployment: high
    // prediction agreement and accuracy within a few points.
    assert!(
        r.agreement > 0.7,
        "fixed/float agreement {:.3} too low on a trained model",
        r.agreement
    );
    assert!(
        (r.accuracy - float_eval.accuracy).abs() < 0.15,
        "fixed accuracy {:.3} too far from float {:.3}",
        r.accuracy,
        float_eval.accuracy
    );
}

#[test]
fn quantized_snapshot_loses_little_accuracy() {
    let Fixture { mut net, snapshot, profile } = trained_fixture();
    let (_, test) = profile.datasets();
    let float_eval = evaluate(
        &mut net,
        &test,
        profile.encoding,
        profile.timesteps,
        profile.batch_size,
        0,
    );
    let mut qnet = snn_accel::quantize_snapshot(&snapshot).into_network();
    let qeval = evaluate(
        &mut qnet,
        &test,
        profile.encoding,
        profile.timesteps,
        profile.batch_size,
        0,
    );
    assert!(
        (qeval.accuracy - float_eval.accuracy).abs() < 0.1,
        "int8 weight quantization cost too much: {:.3} vs {:.3}",
        qeval.accuracy,
        float_eval.accuracy
    );
}
