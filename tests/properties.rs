//! Cross-crate property-based tests (proptest) on the core numeric
//! invariants.

use proptest::prelude::*;

use snn_core::neuron::{lif_step, LifConfig, LifState};
use snn_core::{Loss, Surrogate};
use snn_data::SpikeEncoding;
use snn_tensor::conv::{col2im, im2col, Conv2dGeometry};
use snn_tensor::{linalg, Shape, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Surrogate derivatives are finite, non-negative, and peak at
    /// the threshold crossing for every family and scale.
    #[test]
    fn surrogate_grad_well_behaved(
        scale in 0.05f32..64.0,
        u in -20.0f32..20.0,
        family in 0usize..4,
    ) {
        let s = match family {
            0 => Surrogate::ArcTan { alpha: scale },
            1 => Surrogate::FastSigmoid { k: scale },
            2 => Surrogate::Sigmoid { slope: scale },
            _ => Surrogate::Triangular { width: scale },
        };
        let g = s.grad(u);
        prop_assert!(g.is_finite());
        prop_assert!(g >= 0.0);
        prop_assert!(g <= s.grad(0.0) + 1e-6);
    }

    /// LIF spikes are binary and the membrane follows Eq. 1 exactly
    /// (soft reset).
    #[test]
    fn lif_step_equation_one(
        beta in 0.0f32..=1.0,
        theta in 0.1f32..3.0,
        u_prev in -2.0f32..4.0,
        s_prev in 0usize..2,
        input in -2.0f32..4.0,
    ) {
        let cfg = LifConfig { beta, theta, ..LifConfig::paper_default() };
        let state = LifState {
            membrane: Tensor::full(Shape::d1(1), u_prev),
            prev_spikes: Tensor::full(Shape::d1(1), s_prev as f32),
        };
        let (u, s) = lif_step(&cfg, &state, &Tensor::full(Shape::d1(1), input));
        let expect_u = beta * u_prev + input - s_prev as f32 * theta;
        prop_assert!((u.as_slice()[0] - expect_u).abs() < 1e-5);
        let spike = s.as_slice()[0];
        prop_assert!(spike == 0.0 || spike == 1.0);
        prop_assert_eq!(spike == 1.0, expect_u > theta);
    }

    /// im2col/col2im form an adjoint pair for random geometries:
    /// <im2col(x), c> == <x, col2im(c)>.
    #[test]
    fn conv_im2col_adjoint(
        c in 1usize..3,
        k in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        hw in 4usize..9,
        seed in 0u64..1000,
    ) {
        let geom = match Conv2dGeometry::new(c, 2, k, stride, pad, hw, hw) {
            Ok(g) => g,
            Err(_) => return Ok(()), // geometry invalid for this draw
        };
        let mut rng = seed;
        let mut next = || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((rng >> 33) as f32 / u32::MAX as f32) * 2.0 - 1.0
        };
        let x: Vec<f32> = (0..c * hw * hw).map(|_| next()).collect();
        let cols_grad: Vec<f32> = (0..geom.col_rows() * geom.col_cols()).map(|_| next()).collect();
        let mut cols = vec![0.0; cols_grad.len()];
        im2col(&geom, &x, &mut cols);
        let lhs: f64 = cols.iter().zip(&cols_grad).map(|(&a, &b)| (a * b) as f64).sum();
        let mut gx = vec![0.0; x.len()];
        col2im(&geom, &cols_grad, &mut gx);
        let rhs: f64 = x.iter().zip(&gx).map(|(&a, &b)| (a * b) as f64).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    /// GEMM distributes over addition: (A+B)·C == A·C + B·C.
    #[test]
    fn gemm_linear(
        m in 1usize..5, k in 1usize..5, n in 1usize..5,
        seed in 0u64..1000,
    ) {
        let gen = |s: u64, len: usize| -> Tensor {
            let mut rng = s;
            Tensor::from_fn(Shape::d1(len), |_| {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((rng >> 33) as f32 / u32::MAX as f32) - 0.5
            })
        };
        let a = gen(seed, m * k).reshape(Shape::d2(m, k)).unwrap();
        let b = gen(seed + 1, m * k).reshape(Shape::d2(m, k)).unwrap();
        let c = gen(seed + 2, k * n).reshape(Shape::d2(k, n)).unwrap();
        let sum_then_mul = linalg::matmul(&a.zip(&b, |x, y| x + y).unwrap(), &c).unwrap();
        let mul_then_sum = linalg::matmul(&a, &c)
            .unwrap()
            .zip(&linalg::matmul(&b, &c).unwrap(), |x, y| x + y)
            .unwrap();
        for (x, y) in sum_then_mul.as_slice().iter().zip(mul_then_sum.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Rate encoding density tracks intensity and stays binary.
    #[test]
    fn rate_encoding_density(p in 0.0f32..=1.0, seed in 0u64..100) {
        let img = Tensor::full(Shape::d1(4096), p);
        let frames = SpikeEncoding::Rate { gain: 1.0 }.encode(&img, 4, seed);
        let mut ones = 0usize;
        for f in &frames {
            for &v in f.as_slice() {
                prop_assert!(v == 0.0 || v == 1.0);
                ones += (v == 1.0) as usize;
            }
        }
        let density = ones as f64 / (4096.0 * 4.0);
        prop_assert!((density - p as f64).abs() < 0.05);
    }

    /// Cross-entropy gradient rows sum to ~0 and loss is non-negative.
    #[test]
    fn ce_loss_invariants(
        c0 in -5.0f32..5.0, c1 in -5.0f32..5.0, c2 in -5.0f32..5.0,
        label in 0usize..3,
    ) {
        let counts = Tensor::from_vec(Shape::d2(1, 3), vec![c0, c1, c2]).unwrap();
        let (loss, grad) = Loss::CountCrossEntropy.forward(&counts, &[label], 4);
        prop_assert!(loss >= 0.0);
        let row_sum: f32 = grad.as_slice().iter().sum();
        prop_assert!(row_sum.abs() < 1e-5);
        // Gradient on the true class is non-positive.
        prop_assert!(grad.as_slice()[label] <= 0.0);
    }

    /// Latency encoding emits at most one spike per pixel.
    #[test]
    fn latency_one_spike(v0 in 0.0f32..=1.0, v1 in 0.0f32..=1.0, t in 2usize..12) {
        let img = Tensor::from_vec(Shape::d1(2), vec![v0, v1]).unwrap();
        let frames = SpikeEncoding::Latency { threshold: 0.2 }.encode(&img, t, 0);
        for pix in 0..2 {
            let total: f32 = frames.iter().map(|f| f.as_slice()[pix]).sum();
            prop_assert!(total <= 1.0);
        }
    }
}
