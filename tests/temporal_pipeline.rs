//! Integration of the temporal (DVS-style) data path: training,
//! evaluation, and hardware mapping of an event-stream task.

use snn_accel::AcceleratorConfig;
use snn_core::{
    evaluate_temporal, fit_temporal, LifConfig, NetworkSnapshot, SpikingNetwork, Surrogate,
    TrainConfig,
};
use snn_data::dvs_motion_dataset;
use snn_tensor::Shape;

fn dvs_net(beta: f32, seed: u64) -> SpikingNetwork {
    let lif = LifConfig {
        beta,
        theta: 0.5,
        surrogate: Surrogate::FastSigmoid { k: 0.25 },
        ..LifConfig::paper_default()
    };
    SpikingNetwork::builder(Shape::d3(2, 8, 8), seed)
        .conv(8, 3, 1, 1, lif)
        .expect("conv fits")
        .maxpool(2)
        .expect("pool fits")
        .flatten()
        .expect("flatten ok")
        .dense(4, lif)
        .expect("head ok")
        .build()
        .expect("network builds")
}

#[test]
fn temporal_model_maps_to_hardware() {
    let ds = dvs_motion_dataset(120, 8, 6, 0.01, 4);
    let (train, test) = ds.split(0.8);
    let mut net = dvs_net(0.8, 3);
    let cfg = TrainConfig { epochs: 4, batch_size: 12, base_lr: 1e-2, ..TrainConfig::default() };
    fit_temporal(&cfg, &mut net, &train).expect("temporal training succeeds");
    let eval = evaluate_temporal(&mut net, &test, 12);
    assert!(eval.accuracy > 0.3, "accuracy {:.3} at chance", eval.accuracy);
    // The same sparsity-profile → accelerator flow works for event
    // streams: the profile carries the 6-timestep workload.
    assert_eq!(eval.profile.timesteps, 6);
    let snapshot = NetworkSnapshot::from_network(&net);
    let report = AcceleratorConfig::sparsity_aware()
        .map(&snapshot, &eval.profile)
        .expect("maps onto device");
    assert!(report.fps_per_watt() > 0.0);
    assert_eq!(report.timing.timesteps, 6);
    // Event-stream input is sparse, so the front end sees far fewer
    // events than pixels.
    assert!(eval.profile.input_density < 0.5);
}

#[test]
fn leaky_integrator_beats_memoryless_on_motion() {
    // The temporal task needs integration across frames: a high-beta
    // network should learn it at least as well as a nearly
    // memoryless one under the identical budget.
    let ds = dvs_motion_dataset(200, 8, 6, 0.01, 9);
    let (train, test) = ds.split(0.8);
    let cfg = TrainConfig { epochs: 6, batch_size: 16, base_lr: 1e-2, ..TrainConfig::default() };
    let acc_for = |beta: f32| -> f64 {
        let mut net = dvs_net(beta, 7);
        fit_temporal(&cfg, &mut net, &train).expect("training succeeds");
        evaluate_temporal(&mut net, &test, 16).accuracy
    };
    let leaky = acc_for(0.85);
    let memoryless = acc_for(0.05);
    assert!(
        leaky + 0.05 >= memoryless,
        "high-beta {leaky:.3} unexpectedly far below low-beta {memoryless:.3}"
    );
}
