//! Hermetic in-tree stand-in for the `criterion` crate.
//!
//! Keeps the bench-definition API this workspace uses —
//! [`Criterion::benchmark_group`], `sample_size`, `measurement_time`,
//! `throughput`, `bench_function`, `bench_with_input`,
//! [`BenchmarkId`], [`Throughput`], [`criterion_group!`],
//! [`criterion_main!`], [`black_box`] — and swaps the statistical
//! machinery for a plain wall-clock sampler that prints mean/min/max
//! per benchmark. Measurement time is capped (3 s per benchmark) so
//! full bench runs stay quick in CI.
//!
//! ```
//! use criterion::{criterion_group, criterion_main, Criterion};
//!
//! fn bench_demo(c: &mut Criterion) {
//!     let mut group = c.benchmark_group("demo");
//!     group.sample_size(10);
//!     group.bench_function("sum", |b| {
//!         b.iter(|| (0..100u64).sum::<u64>())
//!     });
//!     group.finish();
//! }
//!
//! criterion_group!(benches, bench_demo);
//! # fn main() { benches(); }
//! ```

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Cap on per-benchmark sampling time, regardless of the configured
/// `measurement_time` (the stand-in reports indicative numbers, not
/// publication statistics).
const MAX_SAMPLING: Duration = Duration::from_secs(3);

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            throughput: None,
        }
    }
}

/// Work-per-iteration declaration, used to report rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` compound id.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Id naming only the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Sets the sampling time budget per benchmark (capped at 3 s by
    /// this stand-in).
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Declares work-per-iteration for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark defined by a closure over a [`Bencher`].
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { samples: Vec::new() };
        let budget = self.measurement_time.min(MAX_SAMPLING);
        let max_samples = self.sample_size.max(10);
        let started = Instant::now();
        while bencher.samples.len() < max_samples && started.elapsed() < budget {
            routine(&mut bencher);
        }
        self.report(&id.to_string(), &bencher.samples);
        self
    }

    /// Runs one benchmark parameterized by an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group (printing is per-benchmark, so this is a
    /// no-op).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples collected", self.name);
            return;
        }
        let nanos: Vec<f64> = samples.iter().map(|d| d.as_nanos() as f64).collect();
        let mean = nanos.iter().sum::<f64>() / nanos.len() as f64;
        let min = nanos.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = nanos.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  {:.1} Melem/s", n as f64 / mean * 1e3)
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  {:.1} MiB/s", n as f64 / mean * 1e9 / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: mean {} (min {}, max {}, {} samples){rate}",
            self.name,
            format_ns(mean),
            format_ns(min),
            format_ns(max),
            samples.len(),
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Timer handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one sample of `routine` (one call per sample; the
    /// closure's result is passed through [`black_box`]).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        let elapsed = start.elapsed();
        black_box(out);
        self.samples.push(elapsed);
    }
}

/// Bundles benchmark functions into a single runner function, like
/// upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the named benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("vendor_check");
        group.sample_size(5);
        group.measurement_time(Duration::from_millis(50));
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(
            BenchmarkId::new("scaled", 3usize),
            &3usize,
            |b, &n| b.iter(|| (0..n as u64).sum::<u64>()),
        );
        group.finish();
    }

    criterion_group!(benches, quick_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("forward", "beta=0.5").to_string(), "forward/beta=0.5");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
