//! Hermetic in-tree stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property suites use: the
//! [`proptest!`] macro with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! parameters drawn from integer/float ranges (`lo..hi`, `lo..=hi`)
//! or [`any::<bool>()`], and the [`prop_assert!`] /
//! [`prop_assert_eq!`] assertion macros (including early
//! `return Ok(())` rejection of invalid inputs).
//!
//! Differences from upstream: no shrinking (a failing case reports
//! its inputs verbatim), and case generation is seeded
//! deterministically from the test's module path and name, so runs
//! are reproducible by construction.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(16))]
//!     // (an `#[test]` attribute would go here in a test module)
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
//!     }
//! }
//! # addition_commutes();
//! ```

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Everything the test suites import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError, TestRng, TestRunner,
    };
}

/// Number of generated cases per property (no other knobs needed
/// here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Cases generated per property function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A property-test failure (carried by `Err` out of the case body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with a formatted message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic per-test random source (SplitMix64 over a hash of
/// the test path).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary label (the macro passes
    /// `module_path!()::test_name`).
    pub fn from_label(label: &str) -> Self {
        // FNV-1a over the label gives a stable, well-mixed seed.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in label.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = self.state;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// Uniform draw on `[0, 1)` with 53 random bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Drives the generated cases for one property function.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// Builds a runner for the property named by `label`.
    pub fn new(config: ProptestConfig, label: &str) -> Self {
        TestRunner { config, rng: TestRng::from_label(label) }
    }

    /// Number of cases to generate.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The runner's random source.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// A source of generated values (upstream's `Strategy`, minus
/// shrinking).
pub trait Strategy {
    /// Type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let u = rng.unit_f64() as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let u = rng.unit_f64() as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_strategy_float!(f32, f64);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over a type's whole domain; created by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Defines property-test functions. See the crate docs for the
/// supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Recursive item expander behind [`proptest!`] (one property
/// function per step).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..runner.cases() {
                $(let $arg = $crate::Strategy::sample(&($strat), runner.rng());)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "property {} failed at case {}/{} with inputs {:?}:\n{}",
                        stringify!($name),
                        case + 1,
                        runner.cases(),
                        ($(&$arg,)+),
                        err,
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (with location and optional formatted message) instead of
/// panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!(
                    "{} at {}:{}",
                    format!($($fmt)*),
                    file!(),
                    line!(),
                ),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body, failing the case
/// with both values on mismatch.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn int_ranges_in_bounds(a in 1usize..6, b in 0u64..500, c in -3i32..=3) {
            prop_assert!((1..6).contains(&a));
            prop_assert!(b < 500);
            prop_assert!((-3..=3).contains(&c));
        }

        #[test]
        fn float_ranges_in_bounds(x in 0.0f32..=0.95, y in -2.0f64..2.0) {
            prop_assert!((0.0..=0.95).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn any_bool_and_early_return(flag in any::<bool>(), n in 0usize..10) {
            if n < 5 {
                // Rejecting a case must compile and pass.
                return Ok(());
            }
            prop_assert_eq!(flag, flag);
        }
    }

    #[test]
    fn generated_fns_run() {
        int_ranges_in_bounds();
        float_ranges_in_bounds();
        any_bool_and_early_return();
    }

    #[test]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn always_fails(v in 0usize..2) {
                prop_assert!(v > 10, "v was {}", v);
            }
        }
        let result = std::panic::catch_unwind(always_fails);
        let panic = result.expect_err("property must fail");
        let text = panic
            .downcast_ref::<String>()
            .expect("panic carries a String");
        assert!(text.contains("always_fails"), "{text}");
        assert!(text.contains("v was"), "{text}");
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_label("demo");
        let mut b = TestRng::from_label("demo");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
