//! Hermetic in-tree stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no network access and no
//! registry cache, so external crates cannot be resolved. This crate
//! re-implements exactly the API subset the workspace uses —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], and [`Rng::gen_bool`] — on top of a
//! xoshiro256++ generator seeded through SplitMix64.
//!
//! The stream differs from upstream `rand`'s `StdRng` (which is
//! ChaCha-based); everything in this workspace only relies on
//! *determinism per seed*, never on a specific stream, so that is
//! fine.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! assert_eq!(a.gen::<f32>(), b.gen::<f32>());
//! let x = a.gen_range(0..10usize);
//! assert!(x < 10);
//! ```

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a standard-distribution type: `f32`/`f64`
    /// uniform in `[0, 1)`, integers uniform over their full range,
    /// `bool` as a fair coin.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open (`a..b`) or inclusive
    /// (`a..=b`) range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Element types with a uniform sampler over bounded ranges. The
/// [`SampleRange`] impls are blanket impls over this trait (like
/// upstream `rand`), so type inference can unify a range literal's
/// element type with the surrounding expression.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift against 2^64 (bias below
                // 2⁻⁶⁴·span, negligible here).
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + draw as i128) as $t
            }
            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let u: $t = Standard::sample(rng);
                lo + (hi - lo) * u
            }
            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let u: $t = Standard::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Fast, decent equidistribution, fully deterministic
    /// per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(z: &mut u64) -> u64 {
        *z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = *z;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut z = state;
            let s = [
                splitmix64(&mut z),
                splitmix64(&mut z),
                splitmix64(&mut z),
                splitmix64(&mut z),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let a = rng.gen_range(3..17usize);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(0..=5u64);
            assert!(b <= 5);
            let c = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&c));
            let d = rng.gen_range(-3..=3i32);
            assert!((-3..=3).contains(&d));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "bucket fraction {frac}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..50_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 50_000.0;
        assert!((frac - 0.3).abs() < 0.02, "{frac}");
    }
}
