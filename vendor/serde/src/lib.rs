//! Hermetic in-tree stand-in for the `serde` crate.
//!
//! The build container has no network access, so the real `serde`
//! cannot be resolved. This crate provides the subset the workspace
//! uses — `#[derive(Serialize, Deserialize)]` on plain structs and
//! enums, serialized through `serde_json::to_string` /
//! `serde_json::from_str` — with a deliberately simpler design:
//! both traits go through one self-describing [`Value`] tree instead
//! of upstream's visitor machinery.
//!
//! Representation conventions (chosen to match what upstream
//! `serde_json` produces for the same types, so snapshots stay
//! human-readable):
//! - structs -> JSON objects keyed by field name
//! - unit enum variants -> a JSON string of the variant name
//! - struct enum variants -> `{"Variant": {field: value, ...}}`
//! - `Option::None` -> `null`; numbers -> f64 (exact for every `f32`
//!   and for integers up to 2^53, far beyond anything stored here)
//!
//! ```
//! use serde::{Deserialize, Serialize, Value};
//!
//! let v = vec![1.0f32, 2.5];
//! let val = v.to_value();
//! let back = <Vec<f32>>::from_value(&val).unwrap();
//! assert_eq!(back, v);
//! assert!(matches!(val, Value::Array(_)));
//! ```

#![forbid(unsafe_code)]

use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree: the interchange format between
/// [`Serialize`]/[`Deserialize`] impls and the `serde_json`
/// reader/writer.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also carries non-finite floats).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number within f64's exact integer range (or any float).
    Number(f64),
    /// JSON integer outside ±2^53, which `f64` cannot hold exactly
    /// (derived 64-bit RNG seeds in persisted train configs live
    /// here). Integers inside that range always use [`Value::Number`],
    /// so consumers matching on `Number` still see every value the
    /// workspace emitted before this variant existed.
    BigInt(i128),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as an ordered field list (insertion order is
    /// preserved so emitted JSON matches declaration order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries if this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrows the element list if this value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) | Value::BigInt(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization failure: what was expected, what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Builds an error with a fully formatted message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }

    /// Builds a "expected X while decoding Y, found Z" error.
    pub fn expected(what: &str, context: &str, found: &Value) -> Self {
        Error {
            message: format!(
                "expected {what} while decoding {context}, found {}",
                found.kind()
            ),
        }
    }

    /// Builds a missing-field error.
    pub fn missing_field(field: &str, context: &str) -> Self {
        Error { message: format!("missing field `{field}` while decoding {context}") }
    }

    /// Builds an unknown-enum-variant error.
    pub fn unknown_variant(variant: &str, context: &str) -> Self {
        Error { message: format!("unknown variant `{variant}` while decoding {context}") }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Encodes `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Decodes `Self` from a [`Value`], reporting shape mismatches as
    /// [`Error`]s.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Looks up a field in an object's entry list (helper for derived
/// impls).
pub fn field<'a>(
    entries: &'a [(String, Value)],
    name: &str,
    context: &str,
) -> Result<&'a Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::missing_field(name, context))
}

// ---- primitive impls -------------------------------------------------

/// Largest magnitude at which every integer is exactly representable
/// as an `f64` (2^53). Integers beyond it travel as [`Value::BigInt`].
const F64_EXACT_INT: i128 = 1 << 53;

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as i128;
                if (-F64_EXACT_INT..=F64_EXACT_INT).contains(&wide) {
                    Value::Number(wide as f64)
                } else {
                    Value::BigInt(wide)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => Ok(*n as $t),
                    Value::BigInt(i) => Ok(*i as $t),
                    other => Err(Error::expected(
                        "number",
                        stringify!($t),
                        other,
                    )),
                }
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as f64;
                if v.is_finite() { Value::Number(v) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => Ok(*n as $t),
                    Value::BigInt(i) => Ok(*i as $t),
                    // Non-finite floats serialize as null (the JSON
                    // convention upstream serde_json uses as well).
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::expected(
                        "number",
                        stringify!($t),
                        other,
                    )),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", "bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::expected("string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Deserialize for &'static str {
    /// Mirrors upstream serde's zero-copy `&str` support for the one
    /// pattern this workspace uses (`&'static str` name fields in
    /// config structs). The value-centric pipeline owns its strings,
    /// so the decoded string is leaked; callers deserialize a handful
    /// of small profile names per process, making the leak bounded
    /// and harmless.
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::expected("string", "&'static str", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => {
                Ok(s.chars().next().expect("length checked"))
            }
            other => Err(Error::expected("single-char string", "char", other)),
        }
    }
}

// ---- container impls -------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", "Vec", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::expected("array", "fixed-size array", value))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, found length {}",
                items.len()
            )));
        }
        let decoded: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        decoded
            .try_into()
            .map_err(|_| Error::custom("array length changed during decode"))
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::expected("array", "tuple", value))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of length {expected}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

macro_rules! impl_serde_ptr {
    ($($ptr:ident),*) => {$(
        impl<T: Serialize> Serialize for $ptr<T> {
            fn to_value(&self) -> Value {
                (**self).to_value()
            }
        }
        impl<T: Deserialize> Deserialize for $ptr<T> {
            fn from_value(value: &Value) -> Result<Self, Error> {
                T::from_value(value).map($ptr::new)
            }
        }
    )*};
}
impl_serde_ptr!(Box, Arc, Rc);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    /// The identity encoding, so hand-assembled `Value` trees (e.g.
    /// HTTP response bodies with dynamic fields) flow through the same
    /// serialization entry points as derived types.
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert_eq!(u64::from_value(&7u64.to_value()).unwrap(), 7);
        assert_eq!(i8::from_value(&(-3i8).to_value()).unwrap(), -3);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert!(f32::from_value(&f32::NAN.to_value()).unwrap().is_nan());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let arr = [4usize, 5, 6, 7];
        assert_eq!(<[usize; 4]>::from_value(&arr.to_value()).unwrap(), arr);
        let opt: Option<f32> = None;
        assert_eq!(Option::<f32>::from_value(&opt.to_value()).unwrap(), None);
        let pair = (0.25f32, 0.75f32);
        assert_eq!(<(f32, f32)>::from_value(&pair.to_value()).unwrap(), pair);
        let shared = Arc::new(vec![1.0f32, 2.0]);
        assert_eq!(
            Arc::<Vec<f32>>::from_value(&shared.to_value()).unwrap(),
            shared
        );
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(bool::from_value(&Value::Number(1.0)).is_err());
        assert!(<[u8; 2]>::from_value(&vec![1u8].to_value()).is_err());
        let entries = vec![("a".to_string(), Value::Null)];
        assert!(field(&entries, "b", "Demo").is_err());
        assert!(field(&entries, "a", "Demo").is_ok());
    }

    #[test]
    fn u64_beyond_f64_range_is_exact() {
        for x in [u64::MAX, (1u64 << 53) + 1, 0x9e37_79b9_7f4a_7c15] {
            assert!(matches!(x.to_value(), Value::BigInt(_)));
            assert_eq!(u64::from_value(&x.to_value()).unwrap(), x);
        }
        // In-range integers keep the historical Number encoding.
        assert!(matches!(7u64.to_value(), Value::Number(_)));
        assert_eq!(i64::from_value(&i64::MIN.to_value()).unwrap(), i64::MIN);
        // Floats accept a BigInt (a reader may hand either back).
        assert_eq!(f64::from_value(&Value::BigInt(1 << 60)).unwrap(), (1u64 << 60) as f64);
    }

    #[test]
    fn f32_via_f64_is_exact() {
        // Every f32 is exactly representable as f64, so the
        // Number(f64) detour must be lossless.
        for bits in [0x3f80_0001u32, 0x0000_0001, 0x7f7f_ffff, 0xc2c8_0000] {
            let x = f32::from_bits(bits);
            assert_eq!(f32::from_value(&x.to_value()).unwrap().to_bits(), bits);
        }
    }
}
