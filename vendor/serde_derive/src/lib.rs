//! Hermetic in-tree stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]`
//! for the shapes this workspace actually uses: structs with named
//! fields, and enums whose variants are unit or struct-like. The
//! parser walks the raw [`proc_macro::TokenStream`] directly (no
//! `syn`/`quote`, which are unavailable offline) and the generated
//! impls target the workspace's Value-centric `serde` stand-in:
//!
//! - struct  -> `Value::Object([(field, value), ...])`
//! - unit variant   -> `Value::String("Variant")`
//! - struct variant -> `Value::Object([("Variant", {fields...})])`
//!
//! Unsupported shapes (tuple structs, tuple variants, generics)
//! panic at expansion time with a clear message rather than emitting
//! wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of a `#[derive]` input item.
enum Item {
    /// `struct Name { fields }`
    Struct { name: String, fields: Vec<String> },
    /// `enum Name { variants }`
    Enum { name: String, variants: Vec<Variant> },
}

/// One enum variant: unit (`fields` is `None`) or struct-like.
struct Variant {
    name: String,
    fields: Option<Vec<String>>,
}

/// Derives the workspace `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    code.parse().expect("generated Serialize impl must parse")
}

/// Derives the workspace `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    code.parse().expect("generated Deserialize impl must parse")
}

// ---- input parsing ---------------------------------------------------

/// Skips leading attributes (`#[...]`) and a visibility modifier
/// (`pub`, `pub(...)`) starting at `*i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // '#' then the bracketed attribute group.
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => break,
        }
    }
}

/// Reads the next token as an identifier, advancing `*i`.
fn expect_ident(tokens: &[TokenTree], i: &mut usize, what: &str) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde derive: expected {what}, found {other:?}"),
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = expect_ident(&tokens, &mut i, "`struct` or `enum`");
    let name = expect_ident(&tokens, &mut i, "item name");
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive: generic type `{name}` is not supported");
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde derive: `{name}` must have a braced body \
             (tuple/unit items unsupported), found {other:?}"
        ),
    };
    match kind.as_str() {
        "struct" => Item::Struct { name, fields: parse_named_fields(body) },
        "enum" => Item::Enum { name, variants: parse_variants(body) },
        other => panic!("serde derive: cannot derive for `{other} {name}`"),
    }
}

/// Parses `name: Type, ...` field lists, returning the names. Types
/// are skipped with angle-bracket depth tracking so commas inside
/// generics (e.g. `HashMap<K, V>`) don't split fields.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = expect_ident(&tokens, &mut i, "field name");
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!(
                "serde derive: expected `:` after field `{field}` \
                 (tuple fields unsupported), found {other:?}"
            ),
        }
        let mut angle_depth = 0i64;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(field);
    }
    fields
}

/// Parses enum variants: `Name`, `Name { fields }` (tuple variants
/// panic).
fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i, "variant name");
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde derive: tuple variant `{name}` is not supported")
            }
            _ => None,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---- code generation -------------------------------------------------

/// `("name", value_expr)` object-entry expression.
fn entry(key: &str, value_expr: &str) -> String {
    format!("(::std::string::String::from(\"{key}\"), {value_expr})")
}

fn serialize_struct(name: &str, fields: &[String]) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| entry(f, &format!("::serde::Serialize::to_value(&self.{f})")))
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{}])\n\
             }}\n\
         }}",
        entries.join(", ")
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.fields {
                None => format!(
                    "{name}::{vname} => ::serde::Value::String(\
                     ::std::string::String::from(\"{vname}\")),"
                ),
                Some(fields) => {
                    let bindings = fields.join(", ");
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| entry(f, &format!("::serde::Serialize::to_value({f})")))
                        .collect();
                    let inner = entry(
                        vname,
                        &format!("::serde::Value::Object(::std::vec![{}])", entries.join(", ")),
                    );
                    format!(
                        "{name}::{vname} {{ {bindings} }} => \
                         ::serde::Value::Object(::std::vec![{inner}]),"
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{}\n}}\n\
             }}\n\
         }}",
        arms.join("\n")
    )
}

/// `field: Deserialize::from_value(field(entries, "field", ctx)?)?,`
/// initializers for a named-field body.
fn field_initializers(fields: &[String], context: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(\
                 ::serde::field(entries, \"{f}\", \"{context}\")?)?,"
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn deserialize_struct(name: &str, fields: &[String]) -> String {
    let inits = field_initializers(fields, name);
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let entries = match value {{\n\
                     ::serde::Value::Object(entries) => entries,\n\
                     other => return ::std::result::Result::Err(\
                         ::serde::Error::expected(\"object\", \"{name}\", other)),\n\
                 }};\n\
                 ::std::result::Result::Ok({name} {{\n{inits}\n}})\n\
             }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| v.fields.is_none())
        .map(|v| {
            let vname = &v.name;
            format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
        })
        .collect();
    let struct_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| v.fields.as_ref().map(|fields| (&v.name, fields)))
        .map(|(vname, fields)| {
            let context = format!("{name}::{vname}");
            let inits = field_initializers(fields, &context);
            format!(
                "\"{vname}\" => {{\n\
                     let entries = match inner {{\n\
                         ::serde::Value::Object(entries) => entries,\n\
                         other => return ::std::result::Result::Err(\
                             ::serde::Error::expected(\"object\", \"{context}\", other)),\n\
                     }};\n\
                     ::std::result::Result::Ok({name}::{vname} {{\n{inits}\n}})\n\
                 }}"
            )
        })
        .collect();

    let string_arm = format!(
        "::serde::Value::String(tag) => match tag.as_str() {{\n\
             {}\n\
             other => ::std::result::Result::Err(\
                 ::serde::Error::unknown_variant(other, \"{name}\")),\n\
         }},",
        unit_arms.join("\n")
    );
    // Only emit the object arm when struct variants exist, so
    // unit-only enums don't bind an unused `inner`.
    let object_arm = if struct_arms.is_empty() {
        String::new()
    } else {
        format!(
            "::serde::Value::Object(tagged) if tagged.len() == 1 => {{\n\
                 let (tag, inner) = &tagged[0];\n\
                 match tag.as_str() {{\n\
                     {}\n\
                     other => ::std::result::Result::Err(\
                         ::serde::Error::unknown_variant(other, \"{name}\")),\n\
                 }}\n\
             }},",
            struct_arms.join("\n")
        )
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match value {{\n\
                     {string_arm}\n\
                     {object_arm}\n\
                     other => ::std::result::Result::Err(::serde::Error::expected(\
                         \"enum representation\", \"{name}\", other)),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
