//! Hermetic in-tree stand-in for the `serde_json` crate.
//!
//! Provides [`to_string`] and [`from_str`] over the workspace's
//! Value-centric `serde` stand-in. Numbers are written with Rust's
//! shortest-roundtrip float formatting, so every `f32`/`f64` (and
//! every integer below 2^53) survives a serialize/parse cycle
//! bit-for-bit.
//!
//! ```
//! let json = serde_json::to_string(&vec![1.5f32, 2.0]).unwrap();
//! assert_eq!(json, "[1.5,2]");
//! let back: Vec<f32> = serde_json::from_str(&json).unwrap();
//! assert_eq!(back, vec![1.5, 2.0]);
//! ```

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Parses JSON text and decodes it into `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    Ok(T::from_value(&value)?)
}

// ---- writer ----------------------------------------------------------

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::BigInt(i) => out.push_str(&i.to_string()),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(value: &Value, out: &mut String, indent: usize) {
    let pad = |out: &mut String, level: usize| {
        out.push('\n');
        for _ in 0..level {
            out.push_str("  ");
        }
    };
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                write_value_pretty(item, out, indent + 1);
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                write_string(key, out);
                out.push_str(": ");
                write_value_pretty(val, out, indent + 1);
            }
            pad(out, indent);
            out.push('}');
        }
        // Scalars and empty containers render as in compact form.
        other => write_value(other, out),
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; mirror upstream serde_json.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        // Integral values drop the `.0` so integer-typed fields look
        // like integers in the emitted JSON; parsing back through f64
        // is identical either way.
        let buf = format!("{n:?}");
        out.push_str(buf.strip_suffix(".0").unwrap_or(&buf));
    } else {
        // `{:?}` is Rust's shortest representation that roundtrips.
        out.push_str(&format!("{n:?}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {} of JSON input",
                byte as char, self.pos
            )))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at byte {} of JSON input",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!(
                "unexpected character at byte {} of JSON input",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {} of JSON input",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {} of JSON input",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&byte) = rest.first() else {
                return Err(Error::new("unterminated JSON string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| {
                        Error::new("unterminated escape in JSON string")
                    })?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for the
                            // ASCII field names this workspace emits,
                            // but handle the BMP correctly.
                            let c = char::from_u32(code).ok_or_else(|| {
                                Error::new("\\u escape outside the BMP is unsupported")
                            })?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}` in JSON string",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 character (multibyte safe).
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in JSON input"))?;
                    let c = s.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        // Integer literals beyond f64's exact range (±2^53) keep full
        // precision as `BigInt`; everything else — floats, and the
        // integers the workspace has always emitted — stays `Number`
        // so downstream matches on `Value::Number` are unaffected.
        if !text.contains(['.', 'e', 'E']) {
            // `-0` must stay a float so f32/f64 negative zero survives
            // a write/parse cycle bit-for-bit.
            if let Ok(i) = text.parse::<i128>() {
                const F64_EXACT_INT: i128 = 1 << 53;
                if i != 0 || !text.starts_with('-') {
                    if (-F64_EXACT_INT..=F64_EXACT_INT).contains(&i) {
                        return Ok(Value::Number(i as f64));
                    }
                    return Ok(Value::BigInt(i));
                }
            }
        }
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid JSON number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        let x: f64 = from_str(&to_string(&0.1f64).unwrap()).unwrap();
        assert_eq!(x, 0.1);
        let y: f32 = from_str(&to_string(&f32::from_bits(0x3f80_0001)).unwrap()).unwrap();
        assert_eq!(y.to_bits(), 0x3f80_0001);
        let n: i64 = from_str(&to_string(&-123456789i64).unwrap()).unwrap();
        assert_eq!(n, -123456789);
        let b: bool = from_str("true").unwrap();
        assert!(b);
    }

    #[test]
    fn large_integers_roundtrip_exactly() {
        // A derived 64-bit RNG seed is uniform over u64 and rarely
        // fits f64's exact range; persisted train configs depend on
        // it surviving a JSON cycle bit-for-bit.
        for seed in [u64::MAX, (1 << 53) + 1, 0x9e37_79b9_7f4a_7c15] {
            let json = to_string(&seed).unwrap();
            assert_eq!(json, seed.to_string(), "no float notation for {seed}");
            let back: u64 = from_str(&json).unwrap();
            assert_eq!(back, seed);
        }
        let n: i64 = from_str(&to_string(&i64::MIN).unwrap()).unwrap();
        assert_eq!(n, i64::MIN);
        // Small integers still parse as plain numbers…
        assert!(matches!(parse("42").unwrap(), Value::Number(_)));
        // …and negative zero stays a float.
        let z: f32 = from_str(&to_string(&-0.0f32).unwrap()).unwrap();
        assert_eq!(z.to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line1\nline\"2\"\\end\ttab\u{1f600}".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![vec![1.0f32, 2.0], vec![], vec![3.5]];
        let back: Vec<Vec<f32>> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
        let opt: Option<f32> = None;
        let back: Option<f32> = from_str(&to_string(&opt).unwrap()).unwrap();
        assert_eq!(back, None);
    }

    #[test]
    fn whitespace_and_errors() {
        let v: Vec<u32> = from_str(" [ 1 , 2 ,\n3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<bool>("truex").is_err());
        assert!(from_str::<f32>("").is_err());
    }

    #[test]
    fn pretty_output_parses_back_identically() {
        let value = parse(r#"{"name":"h","counts":[1,2],"empty":[],"nested":{"p50":0.5}}"#).unwrap();
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains("{\n  \"name\": \"h\""), "unexpected layout:\n{pretty}");
        assert!(pretty.contains("\"empty\": []"), "empty arrays stay inline:\n{pretty}");
        assert_eq!(parse(&pretty).unwrap(), value);
        // Scalars stay single-line.
        assert_eq!(to_string_pretty(&1.5f64).unwrap(), "1.5");
    }

    #[test]
    fn parse_object_preserves_order() {
        let value = parse(r#"{"b": 1, "a": {"x": [true, null]}}"#).unwrap();
        let Value::Object(entries) = &value else { panic!("not an object") };
        assert_eq!(entries[0].0, "b");
        assert_eq!(entries[1].0, "a");
    }
}
